//! Auction-site search over the XMark-alike ladder: runs the Figure
//! 5(b–d)/6(b–d) workload on all three dataset sizes.
//!
//! ```sh
//! cargo run --release --example xmark_search            # base 150 items
//! cargo run --release --example xmark_search -- 400     # bigger ladder
//! ```

use xks::core::SearchEngine;
use xks::datagen::queries::xmark_workload;
use xks::datagen::{generate_xmark, XmarkConfig, XmarkSize};
use xks::index::Query;

fn main() {
    let base_items: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);

    for size in [XmarkSize::Standard, XmarkSize::Data1, XmarkSize::Data2] {
        eprintln!("generating XMark-alike {size:?} (base {base_items} items/region)…");
        let tree = generate_xmark(&XmarkConfig::sized(size, base_items, 2009));
        eprintln!("  {} nodes", tree.len());
        let engine = SearchEngine::new(tree);

        println!("== {size:?}");
        println!(
            "{:<8} {:>6} {:>12} {:>12} {:>6} {:>7} {:>7}",
            "query", "RTFs", "ValidRTF", "MaxMatch", "CFR", "APR'", "MaxAPR"
        );
        for (abbrev, keywords) in xmark_workload() {
            let query = Query::parse(&keywords).expect("workload query parses");
            let cmp = engine.compare(&query).expect("workload query runs");
            println!(
                "{:<8} {:>6} {:>12} {:>12} {:>6.2} {:>7.3} {:>7.3}",
                abbrev,
                cmp.rtf_count,
                format!("{:?}", cmp.valid_rtf_time),
                format!("{:?}", cmp.max_match_time),
                cmp.effectiveness.cfr,
                cmp.effectiveness.apr_prime,
                cmp.effectiveness.max_apr,
            );
        }
        println!();
    }
}
