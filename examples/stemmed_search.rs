//! Loose (stemmed) matching end to end: reproduces the paper's
//! Lucene-style behaviour where the query keyword "query" matches the
//! title word "Querying" (Example 2), using the opt-in light stemmer.
//!
//! ```sh
//! cargo run --example stemmed_search
//! ```

use xks::core::{get_rtf, prune, Fragment, Policy};
use xks::index::{InvertedIndex, Query};
use xks::lca::elca_stack;
use xks::xmltree::stem::light_stem;

const DOC: &str = r#"
<library>
  <book>
    <title>Efficient Skyline Querying with Variable User Preferences</title>
    <topics>ranking algorithms</topics>
  </book>
  <book>
    <title>Answering Keyword Queries on XML Trees</title>
    <topics>searching indexes</topics>
  </book>
  <book>
    <title>Stream Processing Systems</title>
    <topics>windows operators</topics>
  </book>
</library>
"#;

fn main() {
    let tree = xks::xmltree::parse(DOC).expect("sample parses");

    // Exact matching: "query" finds nothing (the corpus says Querying /
    // Queries).
    let exact = InvertedIndex::build(&tree);
    let q_exact = Query::parse("query xml").unwrap();
    println!(
        "exact matching:   'query' postings = {}, resolves = {}",
        exact.postings("query").len(),
        exact.resolve(&q_exact).is_some()
    );

    // Stemmed matching: normalize both sides with the same stemmer.
    let stemmed = InvertedIndex::build_with(&tree, light_stem);
    let q_stemmed = Query::from_words(["query", "xml"].iter().map(|w| light_stem(w))).unwrap();
    println!(
        "stemmed matching: 'query' postings = {}",
        stemmed.postings("query").len()
    );

    let sets = stemmed.resolve(&q_stemmed).expect("stemmed query resolves");
    let anchors = elca_stack(sets.sets());
    let fragments: Vec<Fragment> = get_rtf(&anchors, &sets)
        .iter()
        .map(|r| prune(&Fragment::construct(&tree, r), Policy::ValidContributor))
        .collect();

    println!(
        "\n{} meaningful fragment(s) for {:?}:",
        fragments.len(),
        q_stemmed.to_string()
    );
    for frag in &fragments {
        println!("# anchor {}", frag.anchor);
        print!("{}", frag.render(&tree));
    }
}
