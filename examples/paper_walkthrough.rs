//! Walk through the paper's Examples 1–7 on the reconstructed Figure
//! 1(a)/(b) fixtures, printing each fragment next to the figure it
//! reproduces.
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```

use xks::core::spec::{enumerate_ect, spec_rtfs};
use xks::core::{AlgorithmKind, SearchEngine, SearchRequest};
use xks::index::Query;
use xks::xmltree::fixtures::{publications, team, PAPER_QUERIES};

fn q(s: &str) -> Query {
    Query::parse(s).unwrap()
}

fn show(engine: &SearchEngine, query: &Query, kind: AlgorithmKind, caption: &str) {
    let request = SearchRequest::from_query(query.clone()).algorithm(kind);
    let out = engine.execute(&request).expect("tree backend cannot fail");
    println!("--- {caption}");
    for frag in out.fragments() {
        println!("fragment @ {}:", frag.anchor);
        print!("{}", frag.render(engine.tree()));
    }
    println!();
}

fn main() {
    let pubs = SearchEngine::new(publications());
    let club = SearchEngine::new(team());

    println!("=== The Figure 1(a) Publications instance ===");
    println!("{}", pubs.tree());
    println!("=== The Figure 1(b) team segment ===");
    println!("{}", club.tree());

    println!(
        "=== Example 1: SLCA vs LCA (Q2 = {:?}) ===",
        PAPER_QUERIES[1]
    );
    let q2 = q(PAPER_QUERIES[1]);
    show(
        &pubs,
        &q2,
        AlgorithmKind::MaxMatchSlca,
        "SLCA only — Figure 2(a)",
    );
    show(
        &pubs,
        &q2,
        AlgorithmKind::ValidRtf,
        "all interesting LCAs — Figures 2(a)+2(b)",
    );

    println!("=== Example 1 cont.: Q3 = {:?} ===", PAPER_QUERIES[2]);
    let q3 = q(PAPER_QUERIES[2]);
    show(
        &pubs,
        &q3,
        AlgorithmKind::ValidRtf,
        "meaningful RTF — Figure 2(d)",
    );

    println!(
        "=== Example 2: false positive problem (Q1 = {:?}) ===",
        PAPER_QUERIES[0]
    );
    let q1 = q(PAPER_QUERIES[0]);
    show(
        &pubs,
        &q1,
        AlgorithmKind::MaxMatchRtf,
        "MaxMatch drops the title — Figure 3(c)",
    );
    show(
        &pubs,
        &q1,
        AlgorithmKind::ValidRtf,
        "ValidRTF keeps it — Figure 3(b)",
    );

    println!(
        "=== Example 2: redundancy problem (Q4 = {:?}) ===",
        PAPER_QUERIES[3]
    );
    let q4 = q(PAPER_QUERIES[3]);
    show(
        &club,
        &q4,
        AlgorithmKind::MaxMatchRtf,
        "MaxMatch keeps both forwards — Figure 3(d)",
    );
    show(&club, &q4, AlgorithmKind::ValidRtf, "ValidRTF deduplicates");

    println!(
        "=== Example 2: positive example (Q5 = {:?}) ===",
        PAPER_QUERIES[4]
    );
    let q5 = q(PAPER_QUERIES[4]);
    show(
        &club,
        &q5,
        AlgorithmKind::ValidRtf,
        "only Gassol survives — Figure 3(a)",
    );

    println!("=== Figure 4(c): the node data structure for Q3 ===");
    let raw = {
        use xks::core::Fragment;
        use xks::lca::elca_stack;
        let sets = pubs.index().resolve(&q3).unwrap();
        let anchors = elca_stack(sets.sets());
        let rtfs = xks::core::get_rtf(&anchors, &sets);
        Fragment::construct(pubs.tree(), &rtfs[0])
    };
    for node in ["0", "0.2"] {
        let dewey = node.parse().unwrap();
        print!(
            "node {node}:\n{}",
            raw.render_node_info(pubs.tree(), &dewey, 5).unwrap()
        );
    }
    println!();

    println!("=== Examples 3–4: the ECT_Q enumeration for Q2 ===");
    let sets = pubs.index().resolve(&q2).unwrap();
    let ect = enumerate_ect(sets.sets()).unwrap();
    println!("|ECT_Q| = {} (the paper counts 11)", ect.len());
    let rtfs = spec_rtfs(sets.sets()).unwrap();
    println!("RTFs per Definition 2:");
    for r in &rtfs {
        let nodes: Vec<String> = r.nodes.iter().map(ToString::to_string).collect();
        println!("  anchor {} <- {{{}}}", r.anchor, nodes.join(", "));
    }
}
