//! Bibliography search over the DBLP-alike corpus: runs the paper's
//! Figure 5(a)/6(a) workload at a configurable scale and prints the
//! per-query comparison (time, RTF count, CFR/APR ratios).
//!
//! ```sh
//! cargo run --release --example dblp_search            # 20k records
//! cargo run --release --example dblp_search -- 100000  # bigger corpus
//! ```

use xks::core::SearchEngine;
use xks::datagen::queries::dblp_workload;
use xks::datagen::{generate_dblp, DblpConfig};
use xks::index::Query;

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);

    eprintln!("generating DBLP-alike corpus with {records} records…");
    let tree = generate_dblp(&DblpConfig::with_records(records, 2009));
    eprintln!("  {} nodes", tree.len());
    let engine = SearchEngine::new(tree);

    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>6} {:>7} {:>7}",
        "query", "RTFs", "ValidRTF", "MaxMatch", "CFR", "APR'", "MaxAPR"
    );
    for (abbrev, keywords) in dblp_workload() {
        let query = Query::parse(&keywords).expect("workload query parses");
        let cmp = engine.compare(&query).expect("workload query runs");
        println!(
            "{:<10} {:>6} {:>12} {:>12} {:>6.2} {:>7.3} {:>7.3}",
            abbrev,
            cmp.rtf_count,
            format!("{:?}", cmp.valid_rtf_time),
            format!("{:?}", cmp.max_match_time),
            cmp.effectiveness.cfr,
            cmp.effectiveness.apr_prime,
            cmp.effectiveness.max_apr,
        );
    }
}
