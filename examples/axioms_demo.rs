//! Demonstrates the four axiomatic XKS properties on a live document:
//! insert data and extend queries, watching result counts and contents
//! obey monotonicity and consistency.
//!
//! ```sh
//! cargo run --example axioms_demo
//! ```

use xks::core::axioms::{
    check_data_consistency, check_data_monotonicity, check_query_consistency,
    check_query_monotonicity, Algorithm,
};
use xks::core::{valid_rtf, SearchEngine, SearchRequest};
use xks::index::Query;
use xks::xmltree::fixtures::publications;

fn main() {
    let before = publications();
    let engine = SearchEngine::new(before.clone());
    let query = Query::parse("xml keyword").unwrap();

    let base = engine
        .execute(&SearchRequest::from_query(query.clone()))
        .expect("tree backend cannot fail");
    println!(
        "query {:?} on the Figure 1(a) instance: {} result(s)",
        query.to_string(),
        base.hits.len()
    );

    // Perturbation 1: insert a new article containing both keywords.
    let mut after = before.clone();
    let articles = after.node_by_dewey(&"0.2".parse().unwrap()).unwrap();
    let art = after.insert_subtree(articles, "article", None);
    let title = after.insert_subtree(art, "title", Some("XML keyword search revisited"));
    let inserted = after.dewey(title).clone();

    let engine2 = SearchEngine::new(after.clone());
    let grown = engine2
        .execute(&SearchRequest::from_query(query.clone()))
        .expect("tree backend cannot fail");
    println!(
        "after inserting {} (a new matching article): {} result(s)",
        inserted,
        grown.hits.len()
    );

    let algo = valid_rtf as Algorithm;
    println!(
        "  data monotonicity: {:?}",
        check_data_monotonicity(algo, &before, &after, &query)
    );
    println!(
        "  data consistency : {:?}",
        check_data_consistency(algo, &before, &after, &inserted, &query)
    );

    // Perturbation 2: extend the query.
    let extended = query.with_keyword("liu").unwrap();
    let narrowed = engine
        .execute(&SearchRequest::from_query(extended.clone()))
        .expect("tree backend cannot fail");
    println!(
        "extending the query to {:?}: {} result(s)",
        extended.to_string(),
        narrowed.hits.len()
    );
    println!(
        "  query monotonicity: {:?}",
        check_query_monotonicity(algo, &before, &query, &extended)
    );
    println!(
        "  query consistency : {:?}",
        check_query_consistency(algo, &before, &extended, "liu")
    );
}
