//! Quickstart: parse an XML document, run a keyword query, print the
//! meaningful fragments.
//!
//! ```sh
//! cargo run --example quickstart
//! cargo run --example quickstart -- "skyline query"
//! ```

use xks::core::{AlgorithmKind, SearchEngine, SearchRequest};
use xks::xmltree::parse;

const SAMPLE: &str = r#"
<Publications>
  <title>VLDB</title>
  <year>2008</year>
  <Articles>
    <article>
      <authors><author><name>Liu</name></author></authors>
      <title>Relevant keyword match search in XML</title>
      <abstract>An effective approach to keyword search in XML data</abstract>
      <references>
        <ref>Liu and Chen: Reasoning about relevant matches for XML keyword search</ref>
      </references>
    </article>
    <article>
      <authors>
        <author><name>Wong</name></author>
        <author><name>Fu</name></author>
      </authors>
      <title>Efficient Skyline Query with Variable User Preferences</title>
      <abstract>We propose dynamic skyline query processing</abstract>
    </article>
  </Articles>
</Publications>
"#;

fn main() {
    let query_text = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "xml keyword search".to_owned());

    let tree = parse(SAMPLE).expect("sample document parses");
    println!("Document ({} nodes):\n{tree}", tree.len());

    let engine = SearchEngine::new(tree);
    // The operator grammar understands "quoted phrases", -exclusions,
    // and label:word filters alongside plain keywords.
    let request = match SearchRequest::parse(&query_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    println!("Query: {}\n", request.spec());
    for (name, kind) in [
        ("ValidRTF", AlgorithmKind::ValidRtf),
        ("MaxMatch (revised)", AlgorithmKind::MaxMatchRtf),
    ] {
        let response = engine
            .execute(&request.clone().algorithm(kind))
            .expect("in-memory backend cannot fail");
        println!(
            "== {name}: {} meaningful fragment(s) in {:?}",
            response.hits.len(),
            response.timings.total()
        );
        for hit in &response.hits {
            println!("-- fragment anchored at {}:", hit.fragment.anchor);
            print!("{}", hit.fragment.render(engine.tree()));
        }
        println!();
    }
}
