//! Quickstart: parse an XML document, run a keyword query, print the
//! meaningful fragments.
//!
//! ```sh
//! cargo run --example quickstart
//! cargo run --example quickstart -- "skyline query"
//! ```

use xks::core::{AlgorithmKind, SearchEngine};
use xks::index::Query;
use xks::xmltree::parse;

const SAMPLE: &str = r#"
<Publications>
  <title>VLDB</title>
  <year>2008</year>
  <Articles>
    <article>
      <authors><author><name>Liu</name></author></authors>
      <title>Relevant keyword match search in XML</title>
      <abstract>An effective approach to keyword search in XML data</abstract>
      <references>
        <ref>Liu and Chen: Reasoning about relevant matches for XML keyword search</ref>
      </references>
    </article>
    <article>
      <authors>
        <author><name>Wong</name></author>
        <author><name>Fu</name></author>
      </authors>
      <title>Efficient Skyline Query with Variable User Preferences</title>
      <abstract>We propose dynamic skyline query processing</abstract>
    </article>
  </Articles>
</Publications>
"#;

fn main() {
    let query_text = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "xml keyword search".to_owned());

    let tree = parse(SAMPLE).expect("sample document parses");
    println!("Document ({} nodes):\n{tree}", tree.len());

    let engine = SearchEngine::new(tree);
    let query = match Query::parse(&query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("bad query: {e}");
            std::process::exit(1);
        }
    };

    println!("Query: {query}\n");
    for (name, kind) in [
        ("ValidRTF", AlgorithmKind::ValidRtf),
        ("MaxMatch (revised)", AlgorithmKind::MaxMatchRtf),
    ] {
        let result = engine.search(&query, kind);
        println!(
            "== {name}: {} meaningful fragment(s) in {:?}",
            result.fragments.len(),
            result.timings.total()
        );
        for frag in &result.fragments {
            println!("-- fragment anchored at {}:", frag.anchor);
            print!("{}", frag.render(engine.tree()));
        }
        println!();
    }
}
