//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate
//! provides the subset of criterion's API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`], [`criterion_main!`] — backed by a simple
//! warm-up + timed-sampling loop that prints mean/min/max per benchmark.
//!
//! Under `cargo test` (which runs bench targets with `--test`) every
//! benchmark executes exactly one iteration, matching criterion's
//! smoke-test behavior.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's historical export.
pub use std::hint::black_box;

/// Measurement throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timer handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke_test: bool,
}

impl Bencher {
    /// Times `routine`, collecting samples until the measurement budget
    /// or the sample count is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up: run untimed iterations until the warm-up budget is
        // spent (at least one).
        let warm_up = Instant::now();
        loop {
            black_box(routine());
            if warm_up.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget = Instant::now();
        while self.samples.len() < self.sample_size
            && (budget.elapsed() < self.measurement_time || self.samples.is_empty())
        {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration (accepted for API compatibility; the
    /// harness warms up with a fixed iteration count).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates throughput (printed alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            smoke_test: self.criterion.smoke_test,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if self.criterion.smoke_test {
            println!("bench {}/{id}: ok (smoke test, 1 iteration)", self.name);
            return;
        }
        if samples.is_empty() {
            println!("bench {}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        let throughput = match self.throughput {
            Some(Throughput::Bytes(b)) if !mean.is_zero() => {
                let mbps = b as f64 / mean.as_secs_f64() / 1_000_000.0;
                format!("  {mbps:.1} MB/s")
            }
            Some(Throughput::Elements(e)) if !mean.is_zero() => {
                let eps = e as f64 / mean.as_secs_f64();
                format!("  {eps:.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){throughput}",
            self.name,
            samples.len(),
        );
    }
}

/// The bench harness entry object.
#[derive(Debug)]
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with `--test`; real criterion
        // then runs each benchmark once, and so do we.
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { smoke_test }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("ungrouped").bench_function(id, f);
        self
    }
}

/// Declares a bench group function list, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion { smoke_test: false };
        sample_bench(&mut c);
    }

    #[test]
    fn smoke_test_single_iteration() {
        let mut c = Criterion { smoke_test: true };
        let mut runs = 0u32;
        c.benchmark_group("g")
            .sample_size(50)
            .bench_function("once", |b| b.iter(|| runs += 1));
        // 1 smoke iteration, no warm-up.
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }
}
