//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest's API that the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (`#![proptest_config(..)]`, `#[test]` fns
//!   with `name in strategy` bindings);
//! * [`Strategy`] implementations for integer ranges, `any::<T>()`,
//!   `prop::collection::vec`, `prop::sample::select`, and simple
//!   `".{a,b}"` regex string literals;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed, failing cases are **not shrunk** (the
//! panic message reports the case number so a failure is reproducible),
//! and rejected cases ([`prop_assume!`]) simply skip to the next case.

#![deny(missing_docs)]
#![warn(clippy::all)]

use rand::rngs::StdRng;

/// Test-runner configuration (`cases` is the only knob the workspace
/// uses).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Marker returned by a case body that hit [`crate::prop_assume!`].
    #[derive(Debug)]
    pub struct Rejected;
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

fn uniform_usize(rng: &mut StdRng, lo: usize, hi_exclusive: usize) -> usize {
    use rand::Rng as _;
    assert!(lo < hi_exclusive, "empty strategy range");
    rng.gen_range(lo..hi_exclusive)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values constructible "from anywhere" via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore as _;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::RngCore as _;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `any::<T>()` strategy: unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies from `&'static str` regex literals.
///
/// Supports the `".{lo,hi}"` shape the workspace uses (arbitrary chars,
/// length in `[lo, hi]`); any other pattern falls back to a short
/// arbitrary string.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = uniform_usize(rng, lo, hi + 1);
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn arbitrary_char(rng: &mut StdRng) -> char {
    use rand::Rng as _;
    // Mix of ASCII (most likely to stress parsers) and wider planes.
    match rng.gen_range(0u32..10) {
        0..=6 => char::from(rng.gen_range(0x20u8..0x7F)),
        7 => char::from(rng.gen_range(0u8..0x20)),
        8 => char::from_u32(rng.gen_range(0x80u32..0x800)).unwrap_or('\u{FFFD}'),
        _ => {
            let c = rng.gen_range(0x800u32..0x1_0000);
            char::from_u32(c).unwrap_or('\u{FFFD}')
        }
    }
}

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{uniform_usize, Strategy};
        use rand::rngs::StdRng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi_exclusive: usize,
        }

        /// `vec(element, lo..hi)` — vectors of `element` samples.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy {
                element,
                lo: len.start,
                hi_exclusive: len.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = uniform_usize(rng, self.lo, self.hi_exclusive);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{uniform_usize, Strategy};
        use rand::rngs::StdRng;

        /// Strategy choosing uniformly from a fixed set.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        /// `select(options)` — one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty options");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut StdRng) -> T {
                self.0[uniform_usize(rng, 0, self.0.len())].clone()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, prop, Strategy};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Builds the runner's generator from a case seed (used by the
/// [`proptest!`] expansion; consumers don't depend on `rand` directly).
#[must_use]
pub fn rng_from_seed(seed: u64) -> StdRng {
    use rand::SeedableRng as _;
    StdRng::seed_from_u64(seed)
}

/// Deterministic per-test seed: FNV-1a of the test path, mixed with the
/// case index by the runner.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns [$cfg] $($rest)*);
    };
    (@fns [$cfg:expr]) => {};
    (@fns [$cfg:expr]
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let case_seed = base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = $crate::rng_from_seed(case_seed);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::test_runner::Rejected> {
                            { $body }
                            ::core::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    // Pass, or rejected by prop_assume! — move on.
                    ::core::result::Result::Ok(_) => {}
                    ::core::result::Result::Err(payload) => {
                        // Identify the failing case so it is
                        // reproducible (the rng seed is derived from
                        // the test path and case index alone).
                        eprintln!(
                            "proptest {}: case {} of {} failed (case seed {:#x})",
                            concat!(module_path!(), "::", stringify!($name)),
                            case + 1,
                            config.cases,
                            case_seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::proptest!(@fns [$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns [$crate::test_runner::Config::default()] $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn select_picks_member(s in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn regex_shape_string(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }

        #[test]
        fn assume_skips_cases(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn run_generated_tests() {
        ranges_respect_bounds();
        vec_strategy_length();
        select_picks_member();
        regex_shape_string();
        assume_skips_cases();
        default_config_works();
    }

    #[test]
    fn seed_is_stable_and_name_dependent() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
