//! Background vocabulary for generated text.
//!
//! Planted query keywords must sit inside "ordinary" text, so the
//! generators draw filler words from a fixed background vocabulary that
//! is disjoint from every §5.1 query keyword (otherwise planting counts
//! would drift).

use rand::rngs::StdRng;
use rand::Rng;

/// Filler words (computing-flavoured, none of them a §5.1 keyword).
pub const BACKGROUND: &[&str] = &[
    "adaptive",
    "analysis",
    "approach",
    "architecture",
    "attributes",
    "balanced",
    "bitmap",
    "buffer",
    "cache",
    "calculus",
    "client",
    "cluster",
    "compression",
    "concurrent",
    "consistency",
    "cost",
    "declarative",
    "dependency",
    "design",
    "digital",
    "distributed",
    "document",
    "engine",
    "evaluation",
    "execution",
    "expressive",
    "federated",
    "filter",
    "formal",
    "framework",
    "functional",
    "graph",
    "hash",
    "heuristic",
    "hybrid",
    "incremental",
    "indexing",
    "integration",
    "interactive",
    "interface",
    "join",
    "language",
    "lattice",
    "learning",
    "locking",
    "logic",
    "maintenance",
    "management",
    "mediator",
    "memory",
    "mining",
    "model",
    "network",
    "normalization",
    "optimization",
    "parallel",
    "parser",
    "partition",
    "performance",
    "persistent",
    "physical",
    "pipeline",
    "planner",
    "predicate",
    "processing",
    "protocol",
    "ranking",
    "recovery",
    "relational",
    "replication",
    "robust",
    "sampling",
    "scalable",
    "schema",
    "secure",
    "semantic",
    "server",
    "spatial",
    "storage",
    "stream",
    "structure",
    "summarization",
    "symbolic",
    "synthesis",
    "temporal",
    "topology",
    "transaction",
    "transformation",
    "traversal",
    "tuning",
    "update",
    "validation",
    "vector",
    "view",
    "virtual",
    "visualization",
    "warehouse",
    "wavelet",
    "workload",
    "wrapper",
];

/// Author-style surnames for bibliography records (again disjoint from
/// the query keywords — note the paper's `henry` keyword *is* a person
/// name, which is why it is planted rather than listed here).
pub const SURNAMES: &[&str] = &[
    "abiteboul",
    "bernstein",
    "ceri",
    "dewitt",
    "fagin",
    "garcia",
    "halevy",
    "ioannidis",
    "jagadish",
    "kossmann",
    "lenzerini",
    "maier",
    "naughton",
    "ooi",
    "papadias",
    "ramakrishnan",
    "stonebraker",
    "tanaka",
    "ullman",
    "vianu",
    "widom",
    "yu",
    "zaniolo",
    "zhang",
];

/// Very-high-frequency filler words, chosen at the alphabetic extremes
/// of the vocabulary. Natural-language corpora are Zipf-distributed: a
/// handful of words appear in a large share of text blocks, which makes
/// the `(min, max)` content features of distinct blocks collide often —
/// the collision rate drives how much work Definition 4's rule 2(b)
/// (content deduplication) gets to do on XMark-like data, so the
/// generator reproduces it explicitly.
pub const COMMON_FIRST: &str = "antique";
/// See [`COMMON_FIRST`].
pub const COMMON_LAST: &str = "zenith";

/// Picks one background word.
pub fn background_word(rng: &mut StdRng) -> &'static str {
    BACKGROUND[rng.gen_range(0..BACKGROUND.len())]
}

/// Builds a Zipf-flavoured text block: `len` background words, plus the
/// two high-frequency words with probability `common_p` each.
pub fn zipf_text_block(rng: &mut StdRng, len: usize, common_p: f64) -> Vec<String> {
    let mut block = text_block(rng, len);
    if rng.gen_bool(common_p) {
        block.push(COMMON_FIRST.to_owned());
    }
    if rng.gen_bool(common_p) {
        block.push(COMMON_LAST.to_owned());
    }
    block
}

/// Picks one surname.
pub fn surname(rng: &mut StdRng) -> &'static str {
    SURNAMES[rng.gen_range(0..SURNAMES.len())]
}

/// Builds a text block of `len` background words.
pub fn text_block(rng: &mut StdRng, len: usize) -> Vec<String> {
    (0..len).map(|_| background_word(rng).to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::{PAPER_DBLP_FREQS, PAPER_XMARK_FREQS};
    use rand::SeedableRng;

    #[test]
    fn background_disjoint_from_query_keywords() {
        for (kw, _) in PAPER_DBLP_FREQS {
            assert!(!BACKGROUND.contains(kw), "{kw} must not be background");
            assert!(!SURNAMES.contains(kw), "{kw} must not be a surname");
        }
        for (kw, _) in PAPER_XMARK_FREQS {
            assert!(!BACKGROUND.contains(kw), "{kw} must not be background");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(text_block(&mut a, 20), text_block(&mut b, 20));
    }

    #[test]
    fn words_are_lowercase_single_tokens() {
        for w in BACKGROUND.iter().chain(SURNAMES) {
            assert_eq!(*w, w.to_lowercase());
            assert!(w.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }
}
