//! The workload matrix: seeded scenario generation across scale, tree
//! shape, vocabulary skew, and tenancy axes.
//!
//! ROADMAP item 5: the 43-query / 2k-record seed workload proves speed
//! but not generality. A [`ScenarioSpec`] names one cell of a matrix —
//! `scale × shape × skew × tenancy` — and [`ScenarioSpec::generate`]
//! deterministically expands it into a corpus tree plus a query set
//! that covers the full operator grammar (plain keywords, `"phrase"`
//! co-occurrence, `-exclusion`, `label:filter`, and adversarial
//! high-document-frequency pairs). The `matrix` bench sweeps
//! [`ScenarioSpec::matrix`] on every backend and scores result quality
//! per cell; CI runs the [`ScenarioSpec::smoke`] subset.
//!
//! Everything is deterministic in [`ScenarioSpec::seed`]: the same spec
//! always yields a byte-identical tree and query set (pinned by
//! `tests/matrix_determinism.rs`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xks_xmltree::{TreeBuilder, XmlTree};

use crate::freq::{sample_hubs, zipf_counts, TextCorpus};
use crate::vocab::zipf_text_block;

/// Default seed shared by every committed matrix cell. Part of the
/// golden-digest contract: changing it invalidates
/// `tests/golden/matrix_digest.txt`.
pub const MATRIX_SEED: u64 = 0x2009_EDB7;

/// Records in a scale-1 corpus. Scale multiplies this, so scale 100 is
/// a 6000-record corpus — big enough to exercise shard scatter-gather
/// and posting-list skew, small enough to generate in-process.
pub const BASE_RECORDS: usize = 60;

/// Background words per text block.
const BLOCK_WORDS: usize = 6;

/// Planted vocabulary ranks per tenant.
const VOCAB_RANKS: usize = 40;

/// Fan-out of a [`Shape::Wide`] record (leaf children besides the
/// title).
const WIDE_FANOUT: usize = 12;

/// Tree shape of each record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `rec → (title, body)` — the flat bibliography profile.
    Flat,
    /// `rec → (title, sec → sec → … → p)` — a nesting chain whose depth
    /// cycles over 3..=7, stressing Dewey prefix work and ancestor
    /// walks.
    Deep,
    /// `rec → (title, f × 12)` — broad sibling lists, stressing the
    /// child-merge in the anchor pass and contributor pruning.
    Wide,
}

impl Shape {
    /// Lowercase axis token used in scenario names.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Shape::Flat => "flat",
            Shape::Deep => "deep",
            Shape::Wide => "wide",
        }
    }

    /// Text blocks each record consumes (title + content blocks).
    fn blocks_per_record(self) -> usize {
        match self {
            Shape::Flat | Shape::Deep => 2,
            Shape::Wide => 1 + WIDE_FANOUT,
        }
    }
}

/// Planted-vocabulary frequency profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every planted word gets the same count — all posting lists equal,
    /// keeping the planner on the merge path.
    Uniform,
    /// Zipf exponent 1.2 — head ranks become stop-word-like, the regime
    /// the galloping intersection and shard skipping target.
    Zipf,
}

impl Skew {
    /// Lowercase axis token used in scenario names.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Zipf => "zipf",
        }
    }

    fn exponent(self) -> f64 {
        match self {
            Skew::Uniform => 0.0,
            Skew::Zipf => 1.2,
        }
    }
}

/// Corpus tenancy mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tenancy {
    /// One corpus: records are root children (the shard partition
    /// unit), vocabulary shared.
    Single,
    /// `n` tenants, each a `tenant` subtree under the root with a
    /// disjoint planted vocabulary — many small corpora served from one
    /// (sharded) store. Queries never cross tenants.
    Multi(usize),
}

impl Tenancy {
    /// Number of tenants.
    #[must_use]
    pub fn tenants(self) -> usize {
        match self {
            Tenancy::Single => 1,
            Tenancy::Multi(n) => n.max(1),
        }
    }

    /// Lowercase axis token used in scenario names.
    #[must_use]
    pub fn token(self) -> String {
        match self {
            Tenancy::Single => "single".to_owned(),
            Tenancy::Multi(n) => format!("multi{n}"),
        }
    }
}

/// Grammar class of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Plain conjunctive keywords.
    Plain,
    /// `"a b"` — both words must co-occur in one keyword node.
    Phrase,
    /// `a -b` — fragments containing `b` are filtered out.
    Exclusion,
    /// `title:a` — the keyword must be matched by a `title` node.
    Label,
    /// Head-rank (stop-word-like) terms paired with tail-rank terms:
    /// the posting-count ratios that separate merge from galloping
    /// intersection.
    Adversarial,
}

impl QueryClass {
    /// All classes, in emission order.
    pub const ALL: [QueryClass; 5] = [
        QueryClass::Plain,
        QueryClass::Phrase,
        QueryClass::Exclusion,
        QueryClass::Label,
        QueryClass::Adversarial,
    ];

    /// Lowercase class name (used in `BENCH_matrix.json` and query-file
    /// comments).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Plain => "plain",
            QueryClass::Phrase => "phrase",
            QueryClass::Exclusion => "exclusion",
            QueryClass::Label => "label",
            QueryClass::Adversarial => "adversarial",
        }
    }

    /// Queries generated per scenario for this class.
    fn target(self) -> usize {
        match self {
            QueryClass::Plain => 6,
            QueryClass::Phrase | QueryClass::Exclusion => 4,
            QueryClass::Label | QueryClass::Adversarial => 4,
        }
    }
}

/// One cell of the workload matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Corpus scale multiplier over [`BASE_RECORDS`] (1, 10, 100).
    pub scale: u32,
    /// Record tree shape.
    pub shape: Shape,
    /// Planted-vocabulary skew.
    pub skew: Skew,
    /// Tenancy mix.
    pub tenancy: Tenancy,
    /// RNG seed; the whole scenario is deterministic in it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A spec with the committed [`MATRIX_SEED`].
    #[must_use]
    pub fn new(scale: u32, shape: Shape, skew: Skew, tenancy: Tenancy) -> Self {
        ScenarioSpec {
            scale,
            shape,
            skew,
            tenancy,
            seed: MATRIX_SEED,
        }
    }

    /// Canonical cell name, e.g. `s10-deep-zipf-multi8`.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "s{}-{}-{}-{}",
            self.scale,
            self.shape.token(),
            self.skew.token(),
            self.tenancy.token()
        )
    }

    /// Parses a cell name produced by [`ScenarioSpec::name`] (seed is
    /// [`MATRIX_SEED`]). Returns `None` on any malformed axis.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        let mut parts = name.split('-');
        let scale = parts.next()?.strip_prefix('s')?.parse::<u32>().ok()?;
        let shape = match parts.next()? {
            "flat" => Shape::Flat,
            "deep" => Shape::Deep,
            "wide" => Shape::Wide,
            _ => return None,
        };
        let skew = match parts.next()? {
            "uniform" => Skew::Uniform,
            "zipf" => Skew::Zipf,
            _ => return None,
        };
        let tenancy = match parts.next()? {
            "single" => Tenancy::Single,
            t => Tenancy::Multi(t.strip_prefix("multi")?.parse::<usize>().ok()?),
        };
        if parts.next().is_some() || scale == 0 {
            return None;
        }
        Some(ScenarioSpec {
            scale,
            shape,
            skew,
            tenancy,
            seed: MATRIX_SEED,
        })
    }

    /// The committed 12-cell matrix: every axis varied at least once at
    /// each scale tier, without paying for the full cross-product.
    #[must_use]
    pub fn matrix() -> Vec<ScenarioSpec> {
        use Shape::{Deep, Flat, Wide};
        use Skew::{Uniform, Zipf};
        use Tenancy::{Multi, Single};
        vec![
            // Scale sweep on the canonical flat/zipf corpus.
            ScenarioSpec::new(1, Flat, Zipf, Single),
            ScenarioSpec::new(10, Flat, Zipf, Single),
            ScenarioSpec::new(100, Flat, Zipf, Single),
            // Shape sweep at 10×.
            ScenarioSpec::new(10, Deep, Zipf, Single),
            ScenarioSpec::new(10, Wide, Zipf, Single),
            // Skew sweep at 10×.
            ScenarioSpec::new(10, Flat, Uniform, Single),
            // Tenancy sweep at 10×.
            ScenarioSpec::new(10, Flat, Zipf, Multi(8)),
            ScenarioSpec::new(10, Deep, Zipf, Multi(8)),
            // Small-corner and large-corner combinations.
            ScenarioSpec::new(1, Deep, Uniform, Single),
            ScenarioSpec::new(1, Wide, Uniform, Multi(8)),
            ScenarioSpec::new(100, Deep, Zipf, Single),
            ScenarioSpec::new(100, Wide, Zipf, Multi(8)),
        ]
    }

    /// CI smoke subset: the scale-1 cells, which still cover every
    /// shape, both skews, and both tenancy mixes.
    #[must_use]
    pub fn smoke() -> Vec<ScenarioSpec> {
        Self::matrix()
            .into_iter()
            .filter(|s| s.scale == 1)
            .collect()
    }

    /// Total records across all tenants.
    #[must_use]
    pub fn records(&self) -> usize {
        BASE_RECORDS * self.scale as usize
    }

    /// Expands the cell into a corpus tree plus classed query set.
    /// Deterministic: identical specs yield byte-identical scenarios.
    #[must_use]
    pub fn generate(&self) -> Scenario {
        let mut rng = StdRng::seed_from_u64(self.seed ^ u64::from(self.scale));
        let tenants = self.tenancy.tenants();
        let per_tenant = (self.records() / tenants).max(6);
        let data: Vec<TenantData> = (0..tenants)
            .map(|t| {
                let prefix = match self.tenancy {
                    Tenancy::Single => "w".to_owned(),
                    Tenancy::Multi(_) => format!("t{t}w"),
                };
                generate_tenant(&mut rng, self, &prefix, per_tenant)
            })
            .collect();

        let tree = build_tree(self, &data);
        let queries = build_queries(self, &data);
        Scenario {
            spec: *self,
            records: per_tenant * tenants,
            tenants,
            tree,
            queries,
        }
    }
}

/// A generated scenario: the corpus and its query set.
#[derive(Debug)]
pub struct Scenario {
    /// The spec this was expanded from.
    pub spec: ScenarioSpec,
    /// Total records across all tenants.
    pub records: usize,
    /// Number of tenants.
    pub tenants: usize,
    /// The corpus.
    pub tree: XmlTree,
    /// The classed query set (every [`QueryClass`] represented).
    pub queries: Vec<ScenarioQuery>,
}

impl Scenario {
    /// Query texts of one class, in emission order.
    #[must_use]
    pub fn queries_of(&self, class: QueryClass) -> Vec<&str> {
        self.queries
            .iter()
            .filter(|q| q.class == class)
            .map(|q| q.text.as_str())
            .collect()
    }
}

/// One generated query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioQuery {
    /// Grammar class.
    pub class: QueryClass,
    /// Query text in the `SearchRequest::parse` grammar.
    pub text: String,
}

/// Per-tenant intermediate state: finished block texts plus the planted
/// vocabulary, in rank order (rank 0 = most frequent).
struct TenantData {
    /// Finished block texts, record-major (`blocks_per_record` per
    /// record, block 0 of each record is its title).
    texts: Vec<String>,
    /// Planted words by rank.
    vocab: Vec<String>,
    records: usize,
}

/// Lays out one tenant's background blocks and plants its vocabulary.
fn generate_tenant(
    rng: &mut StdRng,
    spec: &ScenarioSpec,
    prefix: &str,
    records: usize,
) -> TenantData {
    let bpr = spec.shape.blocks_per_record();
    let blocks: Vec<Vec<String>> = (0..records * bpr)
        .map(|_| zipf_text_block(rng, BLOCK_WORDS, 0.3))
        .collect();
    let mut corpus = TextCorpus::new(blocks);

    // Plant half the positions; the rest stays background so planted
    // words keep realistic neighbourhoods.
    let budget = (corpus.positions() / 2) as u64;
    let counts = zipf_counts(VOCAB_RANKS, budget, spec.skew.exponent());
    let hubs = sample_hubs(rng, corpus.len(), (corpus.len() / 30).max(3));
    let vocab: Vec<String> = (0..VOCAB_RANKS).map(|r| format!("{prefix}{r}")).collect();
    for (word, &count) in vocab.iter().zip(&counts) {
        corpus.plant_clustered(rng, word, count, &hubs, 0.35);
    }
    TenantData {
        texts: corpus.into_texts(),
        vocab,
        records,
    }
}

/// Assembles the corpus tree. Single tenancy: records are root
/// children. Multi tenancy: each tenant is a `tenant` subtree.
fn build_tree(spec: &ScenarioSpec, data: &[TenantData]) -> XmlTree {
    let mut b = TreeBuilder::new("corpus");
    for tenant in data {
        let wrap = matches!(spec.tenancy, Tenancy::Multi(_));
        if wrap {
            b.open("tenant");
        }
        let bpr = spec.shape.blocks_per_record();
        for r in 0..tenant.records {
            let blocks = &tenant.texts[r * bpr..(r + 1) * bpr];
            b.open("rec");
            b.leaf("title", &blocks[0]);
            match spec.shape {
                Shape::Flat => {
                    b.leaf("body", &blocks[1]);
                }
                Shape::Deep => {
                    // Depth cycles 3..=7 so sibling records disagree on
                    // nesting depth (anchors at varying levels).
                    let depth = 3 + r % 5;
                    for _ in 0..depth {
                        b.open("sec");
                    }
                    b.leaf("p", &blocks[1]);
                    for _ in 0..depth {
                        b.close();
                    }
                }
                Shape::Wide => {
                    for block in &blocks[1..] {
                        b.leaf("f", block);
                    }
                }
            }
            b.close();
        }
        if wrap {
            b.close();
        }
    }
    b.build()
}

/// `true` when `token` is one of this tenant's planted words
/// (`prefix` followed by only digits).
fn is_planted(token: &str, prefix: &str) -> bool {
    token
        .strip_prefix(prefix)
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// Blocks (by index) holding ≥ 2 distinct planted words, with those
/// words in block order.
fn cooccurrence_pool(tenant: &TenantData) -> Vec<(usize, Vec<String>)> {
    let prefix_len = tenant.vocab[0].len()
        - tenant.vocab[0]
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_digit())
            .count();
    let prefix = &tenant.vocab[0][..prefix_len];
    tenant
        .texts
        .iter()
        .enumerate()
        .filter_map(|(i, text)| {
            let mut words: Vec<String> = Vec::new();
            for tok in text.split(' ') {
                if is_planted(tok, prefix) && !words.iter().any(|w| w == tok) {
                    words.push(tok.to_owned());
                }
            }
            (words.len() >= 2).then_some((i, words))
        })
        .collect()
}

/// Planted words that landed in a *title* block, in corpus order.
fn title_pool(tenant: &TenantData, bpr: usize) -> Vec<String> {
    let prefix_len = tenant.vocab[0].len()
        - tenant.vocab[0]
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_digit())
            .count();
    let prefix = &tenant.vocab[0][..prefix_len];
    let mut out: Vec<String> = Vec::new();
    for (i, text) in tenant.texts.iter().enumerate() {
        if i % bpr != 0 {
            continue;
        }
        for tok in text.split(' ') {
            if is_planted(tok, prefix) && !out.iter().any(|w| w == tok) {
                out.push(tok.to_owned());
            }
        }
    }
    out
}

/// Emits the classed query set, drawing queries round-robin across
/// tenants so multi-tenant cells stay tenant-local per query.
fn build_queries(spec: &ScenarioSpec, data: &[TenantData]) -> Vec<ScenarioQuery> {
    let bpr = spec.shape.blocks_per_record();
    let pools: Vec<Vec<(usize, Vec<String>)>> = data.iter().map(cooccurrence_pool).collect();
    let titles: Vec<Vec<String>> = data.iter().map(|t| title_pool(t, bpr)).collect();

    let mut out = Vec::new();
    for class in QueryClass::ALL {
        for i in 0..class.target() {
            let t = i % data.len();
            let tenant = &data[t];
            let pool = &pools[t];
            let head = &tenant.vocab[0];
            let near_head = &tenant.vocab[1];
            let tail = &tenant.vocab[VOCAB_RANKS - 1 - i % 3];
            let text = match class {
                QueryClass::Plain => {
                    let Some((_, words)) = pick(pool, i) else {
                        continue;
                    };
                    // Alternate 2- and 3-keyword conjunctions.
                    words
                        .iter()
                        .take(2 + i % 2)
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(" ")
                }
                QueryClass::Phrase => {
                    let Some((_, words)) = pick(pool, i + 1) else {
                        continue;
                    };
                    format!("\"{} {}\"", words[0], words[1])
                }
                QueryClass::Exclusion => {
                    let Some((_, words)) = pick(pool, i + 2) else {
                        continue;
                    };
                    let kept = words.iter().find(|w| *w != head).unwrap_or(&words[0]);
                    format!("{kept} -{head}")
                }
                QueryClass::Label => {
                    let Some(word) = titles[t].get(i * 3 % titles[t].len().max(1)) else {
                        continue;
                    };
                    if i % 2 == 0 {
                        format!("title:{word}")
                    } else {
                        format!("title:{word} {near_head}")
                    }
                }
                QueryClass::Adversarial => match i % 3 {
                    0 => format!("{head} {tail}"),
                    1 => head.clone(),
                    _ => format!("{head} {near_head} {tail}"),
                },
            };
            out.push(ScenarioQuery { class, text });
        }
    }
    out
}

/// Picks a pool entry, striding across the pool so successive picks
/// spread over the corpus rather than clustering at the front.
fn pick(pool: &[(usize, Vec<String>)], i: usize) -> Option<&(usize, Vec<String>)> {
    if pool.is_empty() {
        return None;
    }
    let stride = (pool.len() / 7).max(1);
    pool.get((i * stride + i) % pool.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for spec in ScenarioSpec::matrix() {
            let name = spec.name();
            assert_eq!(ScenarioSpec::parse(&name), Some(spec), "{name}");
        }
        assert!(ScenarioSpec::parse("s0-flat-zipf-single").is_none());
        assert!(ScenarioSpec::parse("s1-round-zipf-single").is_none());
        assert!(ScenarioSpec::parse("s1-flat-zipf-single-extra").is_none());
        assert!(ScenarioSpec::parse("flat-zipf-single").is_none());
    }

    #[test]
    fn matrix_has_twelve_distinct_cells() {
        let matrix = ScenarioSpec::matrix();
        assert_eq!(matrix.len(), 12);
        let names: Vec<String> = matrix.iter().map(ScenarioSpec::name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate cells: {names:?}");
    }

    #[test]
    fn smoke_covers_every_axis() {
        let smoke = ScenarioSpec::smoke();
        assert!(smoke.iter().all(|s| s.scale == 1));
        for shape in [Shape::Flat, Shape::Deep, Shape::Wide] {
            assert!(smoke.iter().any(|s| s.shape == shape), "{shape:?}");
        }
        assert!(smoke.iter().any(|s| s.skew == Skew::Uniform));
        assert!(smoke.iter().any(|s| s.skew == Skew::Zipf));
        assert!(smoke.iter().any(|s| s.tenancy == Tenancy::Single));
        assert!(smoke.iter().any(|s| matches!(s.tenancy, Tenancy::Multi(_))));
    }

    #[test]
    fn every_class_is_represented() {
        for spec in ScenarioSpec::smoke() {
            let scenario = spec.generate();
            for class in QueryClass::ALL {
                assert!(
                    !scenario.queries_of(class).is_empty(),
                    "{}: no {} queries",
                    spec.name(),
                    class.name()
                );
            }
        }
    }

    #[test]
    fn multi_tenant_queries_stay_tenant_local() {
        let spec = ScenarioSpec::new(1, Shape::Wide, Skew::Uniform, Tenancy::Multi(8));
        let scenario = spec.generate();
        for q in &scenario.queries {
            let tenants: Vec<&str> = q
                .text
                .split(|c: char| !c.is_ascii_alphanumeric())
                .filter(|w| w.starts_with('t') && w.contains('w'))
                .map(|w| &w[..w.find('w').unwrap()])
                .collect();
            let mut dedup = tenants.clone();
            dedup.dedup();
            assert!(
                dedup.len() <= 1,
                "query {:?} spans tenants {tenants:?}",
                q.text
            );
        }
    }

    #[test]
    fn deep_records_nest_and_wide_records_fan_out() {
        let deep = ScenarioSpec::new(1, Shape::Deep, Skew::Zipf, Tenancy::Single).generate();
        let max_depth = deep
            .tree
            .preorder()
            .map(|id| deep.tree.depth(id))
            .max()
            .unwrap();
        assert!(max_depth >= 8, "deep corpus max depth {max_depth}");

        let wide = ScenarioSpec::new(1, Shape::Wide, Skew::Zipf, Tenancy::Single).generate();
        let fs = wide
            .tree
            .preorder()
            .filter(|&id| wide.tree.label_name(id) == "f")
            .count();
        assert_eq!(fs, BASE_RECORDS * WIDE_FANOUT);
    }
}
