//! The Figure 5/6 query workloads.
//!
//! The paper abbreviates each query by the underlined letters of its
//! keywords (e.g. `vdo` = "preventions description order", the one
//! mapping §5.1 spells out). The letter→keyword maps below follow that
//! convention; where the scanned figure axis is ambiguous we chose the
//! closest consistent reading (documented in `EXPERIMENTS.md`).

/// DBLP letter → keyword map (20 keywords of §5.1).
pub const DBLP_LETTERS: &[(char, &str)] = &[
    ('k', "keyword"),
    ('s', "similarity"),
    ('r', "recognition"),
    ('a', "algorithm"),
    ('d', "data"),
    ('p', "probabilistic"),
    ('x', "xml"),
    ('y', "dynamic"),
    ('g', "sigmod"),
    ('t', "tree"),
    ('q', "query"),
    ('o', "automata"),
    ('n', "pattern"),
    ('l', "retrieval"),
    ('f', "efficient"),
    ('u', "understanding"),
    ('c', "searching"),
    ('v', "vldb"),
    ('h', "henry"),
    ('m', "semantics"),
];

/// XMark letter → keyword map (12 of the 13 §5.1 keywords appear in
/// queries; `dominator` is planted but never queried).
pub const XMARK_LETTERS: &[(char, &str)] = &[
    ('a', "particle"),
    ('t', "threshold"),
    ('c', "chronicle"),
    ('m', "method"),
    ('s', "strings"),
    ('u', "unjust"),
    ('i', "invention"),
    ('e', "egypt"),
    ('l', "leon"),
    ('v', "preventions"),
    ('d', "description"),
    ('o', "order"),
];

/// The 18 DBLP query abbreviations of Figures 5(a)/6(a).
pub const DBLP_QUERIES: &[&str] = &[
    "ks", "kr", "ka", "drpx", "aygt", "tqops", "xtna", "xkly", "pfy", "pfl", "xkla", "uscx",
    "ftdrx", "dkla", "xayn", "vfxdkl", "ushckpg", "kcmsf",
];

/// The 25 XMark query abbreviations of Figures 5(b–d)/6(b–d), shared by
/// all three dataset sizes.
pub const XMARK_QUERIES: &[&str] = &[
    "at", "ad", "av", "cm", "do", "vd", "tcm", "cms", "iel", "sdc", "vdo", "atcm", "cmsu", "suie",
    "iadm", "vdoi", "tcmsu", "uiel", "atcms", "atcmd", "atcmv", "atcdv", "atcdve", "atcmve",
    "dtcmvo",
];

/// Expands an abbreviation into the keyword string, e.g. `"vdo"` →
/// `"preventions description order"`. Panics on an unmapped letter
/// (workload constants are validated by tests).
#[must_use]
pub fn expand(abbrev: &str, letters: &[(char, &str)]) -> String {
    abbrev
        .chars()
        .map(|c| {
            letters
                .iter()
                .find(|(l, _)| *l == c)
                .unwrap_or_else(|| panic!("unmapped query letter {c:?}"))
                .1
        })
        .collect::<Vec<&str>>()
        .join(" ")
}

/// The full DBLP workload as `(abbreviation, keyword string)` pairs.
#[must_use]
pub fn dblp_workload() -> Vec<(&'static str, String)> {
    DBLP_QUERIES
        .iter()
        .map(|a| (*a, expand(a, DBLP_LETTERS)))
        .collect()
}

/// The full XMark workload as `(abbreviation, keyword string)` pairs.
#[must_use]
pub fn xmark_workload() -> Vec<(&'static str, String)> {
    XMARK_QUERIES
        .iter()
        .map(|a| (*a, expand(a, XMARK_LETTERS)))
        .collect()
}

/// The adversarial planner workload over a Zipf-skewed vocabulary
/// (see `freq::zipf_counts`): every *stop-word × rare* pair — the
/// planner's best case, where the rarest list drives a galloping
/// intersection through the stop word's huge list — plus the all-stop
/// query (no skew between lists, so the planner must *not* gallop)
/// and each rare word alone (single-term, nothing to intersect).
/// Together the three shapes pin both sides of the cost model.
#[must_use]
pub fn adversarial_queries(stop: &[String], rare: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stop {
        for r in rare {
            out.push(format!("{s} {r}"));
        }
    }
    if stop.len() > 1 {
        out.push(stop.join(" "));
    }
    out.extend(rare.iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_workload_has_all_three_shapes() {
        let stop: Vec<String> = ["the", "of"].map(str::to_owned).into();
        let rare: Vec<String> = ["quark", "axion", "lepton"].map(str::to_owned).into();
        let queries = adversarial_queries(&stop, &rare);
        assert_eq!(queries.len(), 2 * 3 + 1 + 3);
        assert!(queries.contains(&"the quark".to_owned()));
        assert!(queries.contains(&"of lepton".to_owned()));
        assert!(queries.contains(&"the of".to_owned()));
        assert!(queries.contains(&"axion".to_owned()));
    }

    #[test]
    fn vdo_is_the_paper_example() {
        assert_eq!(
            expand("vdo", XMARK_LETTERS),
            "preventions description order"
        );
    }

    #[test]
    fn all_workload_letters_are_mapped() {
        // Expanding panics on unmapped letters; running it over both
        // workloads validates the constants.
        for (a, q) in dblp_workload() {
            assert_eq!(q.split(' ').count(), a.len());
        }
        for (a, q) in xmark_workload() {
            assert_eq!(q.split(' ').count(), a.len());
        }
    }

    #[test]
    fn workload_sizes() {
        assert_eq!(DBLP_QUERIES.len(), 18);
        assert_eq!(XMARK_QUERIES.len(), 25);
    }

    #[test]
    fn no_duplicate_letters_within_a_query() {
        for a in DBLP_QUERIES.iter().chain(XMARK_QUERIES) {
            let mut chars: Vec<char> = a.chars().collect();
            chars.sort_unstable();
            chars.dedup();
            assert_eq!(chars.len(), a.len(), "duplicate letter in {a}");
        }
    }

    #[test]
    fn letter_maps_have_unique_letters_and_keywords() {
        for map in [DBLP_LETTERS, XMARK_LETTERS] {
            let mut letters: Vec<char> = map.iter().map(|(c, _)| *c).collect();
            letters.sort_unstable();
            letters.dedup();
            assert_eq!(letters.len(), map.len());
            let mut kws: Vec<&str> = map.iter().map(|(_, k)| *k).collect();
            kws.sort_unstable();
            kws.dedup();
            assert_eq!(kws.len(), map.len());
        }
    }

    #[test]
    fn arities_span_two_to_seven() {
        let min = DBLP_QUERIES.iter().map(|a| a.len()).min().unwrap();
        let max = DBLP_QUERIES.iter().map(|a| a.len()).max().unwrap();
        assert_eq!(min, 2);
        assert_eq!(max, 7);
        let xmin = XMARK_QUERIES.iter().map(|a| a.len()).min().unwrap();
        let xmax = XMARK_QUERIES.iter().map(|a| a.len()).max().unwrap();
        assert_eq!(xmin, 2);
        assert_eq!(xmax, 6);
    }
}
