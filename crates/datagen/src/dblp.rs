//! DBLP-alike bibliography generator.
//!
//! The real corpus (`dblp20040213`, 197.6 MB, ~3.2 M elements) is a flat
//! sequence of highly regular publication records under a single root.
//! The stand-in reproduces that shape — `dblp → (article |
//! inproceedings)* → author*, title, year, (journal | booktitle)` — and
//! plants the paper's 20 query keywords into titles at the §5.1
//! frequencies scaled by [`DblpConfig::scale`].
//!
//! The flat regularity is what produces the paper's DBLP effectiveness
//! profile (APR′ ≈ 0: regular RTFs are already self-complete), so the
//! generator deliberately adds no exotic nesting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xks_xmltree::{TreeBuilder, XmlTree};

use crate::freq::{sample_hubs, scaled, TextCorpus, PAPER_DBLP_FREQS};
use crate::vocab::{surname, zipf_text_block};

/// Configuration of the DBLP-alike generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of publication records.
    pub records: usize,
    /// RNG seed (all output is deterministic in the seed).
    pub seed: u64,
    /// Frequency scale relative to the real corpus. The real corpus has
    /// ~450k records; `records / 450_000` keeps selectivities aligned,
    /// but any explicit value works.
    pub scale: f64,
}

impl DblpConfig {
    /// A configuration with `records` records and the matching frequency
    /// scale.
    #[must_use]
    pub fn with_records(records: usize, seed: u64) -> Self {
        DblpConfig {
            records,
            seed,
            scale: records as f64 / 450_000.0,
        }
    }
}

/// Words per generated title.
const TITLE_WORDS: usize = 8;

/// Generates the corpus.
#[must_use]
pub fn generate_dblp(cfg: &DblpConfig) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Phase 1: background title blocks, lightly Zipf-flavoured (real
    // titles share stock words, which makes content features collide —
    // that collision rate is what rule 2(b) deduplicates in the extreme
    // fragment).
    let blocks: Vec<Vec<String>> = (0..cfg.records)
        .map(|_| zipf_text_block(&mut rng, TITLE_WORDS, 0.45))
        .collect();
    let mut corpus = TextCorpus::new(blocks);

    // Phase 2: plant the §5.1 keywords at scaled frequencies, clustered
    // into "hot topic" records: real DBLP keywords co-occur topically
    // ("xml" and "keyword" share titles), producing record-level LCA
    // anchors rather than only the root.
    let hubs = sample_hubs(&mut rng, cfg.records, (cfg.records / 150).max(4));
    for (kw, freq) in PAPER_DBLP_FREQS {
        corpus.plant_clustered(&mut rng, kw, scaled(*freq, cfg.scale), &hubs, 0.35);
    }
    let titles = corpus.into_texts();

    // Phase 3: build the tree.
    let mut b = TreeBuilder::new("dblp");
    for title in &titles {
        let kind = if rng.gen_bool(0.6) {
            "inproceedings"
        } else {
            "article"
        };
        b.open(kind);
        let n_authors = rng.gen_range(1..=3);
        for _ in 0..n_authors {
            b.leaf("author", surname(&mut rng));
        }
        b.leaf("title", title);
        b.leaf("year", &format!("{}", rng.gen_range(1990..=2004)));
        if kind == "article" {
            b.leaf("journal", "computing journal");
        } else {
            b.leaf("booktitle", "computing conference");
        }
        b.close();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::content::node_content;

    fn small() -> XmlTree {
        generate_dblp(&DblpConfig {
            records: 500,
            seed: 9,
            scale: 1.0 / 450.0, // 1000x down-scale of the real corpus
        })
    }

    fn count_keyword(tree: &XmlTree, kw: &str) -> usize {
        let kws = vec![kw.to_owned()];
        tree.preorder()
            .filter(|&id| xks_xmltree::content::is_keyword_node(tree, id, &kws))
            .count()
    }

    #[test]
    fn shape_is_flat_records() {
        let t = small();
        let root = t.root();
        assert_eq!(t.label_name(root), "dblp");
        assert_eq!(t.node(root).children().len(), 500);
        for &r in t.node(root).children() {
            let kind = t.label_name(r);
            assert!(kind == "article" || kind == "inproceedings");
            let child_labels: Vec<&str> = t
                .node(r)
                .children()
                .iter()
                .map(|&c| t.label_name(c))
                .collect();
            assert!(child_labels.contains(&"title"));
            assert!(child_labels.contains(&"author"));
            assert!(child_labels.contains(&"year"));
        }
    }

    #[test]
    fn keyword_frequencies_scale() {
        let t = small();
        // At scale 1/450: data(25840) → ~57 nodes, keyword(90) → ~1.
        let data = count_keyword(&t, "data");
        let keyword = count_keyword(&t, "keyword");
        assert!(data >= 40, "data too rare: {data}");
        assert!((1..=5).contains(&keyword), "keyword count: {keyword}");
        assert!(data > keyword * 10, "selectivity ordering lost");
    }

    #[test]
    fn every_paper_keyword_present() {
        let t = small();
        for (kw, _) in PAPER_DBLP_FREQS {
            assert!(count_keyword(&t, kw) >= 1, "{kw} missing");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_dblp(&DblpConfig::with_records(100, 5));
        let b = generate_dblp(&DblpConfig::with_records(100, 5));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = generate_dblp(&DblpConfig::with_records(100, 6));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn titles_contain_background_words() {
        let t = small();
        // Some title should have an un-planted background word.
        let any_background = t.preorder().any(|id| {
            t.label_name(id) == "title"
                && node_content(&t, id)
                    .iter()
                    .any(|w| crate::vocab::BACKGROUND.contains(&w.as_str()))
        });
        assert!(any_background);
    }
}

#[cfg(test)]
mod fidelity_tests {
    use super::*;
    use crate::freq::PAPER_DBLP_FREQS;
    use xks_xmltree::content::is_keyword_node;

    /// The reproduction hinges on *relative* selectivities: frequent
    /// keywords must stay frequent relative to rare ones by roughly the
    /// paper's ratios (floor effects aside).
    #[test]
    fn relative_frequencies_track_the_paper() {
        let t = generate_dblp(&DblpConfig::with_records(4_000, 13));
        let count = |kw: &str| {
            let kws = vec![kw.to_owned()];
            t.preorder()
                .filter(|&id| is_keyword_node(&t, id, &kws))
                .count() as f64
        };
        let paper = |kw: &str| {
            PAPER_DBLP_FREQS
                .iter()
                .find(|(k, _)| *k == kw)
                .map(|(_, f)| *f as f64)
                .expect("known keyword")
        };
        // Compare ratios between well-above-floor keyword pairs.
        for (a, b) in [
            ("data", "xml"),
            ("algorithm", "similarity"),
            ("efficient", "vldb"),
        ] {
            let got = count(a) / count(b);
            let want = paper(a) / paper(b);
            assert!(
                got > want * 0.5 && got < want * 2.0,
                "{a}/{b}: generated ratio {got:.2} vs paper {want:.2}"
            );
        }
    }
}
