//! The §5.1 keyword frequency tables and the planting engine.
//!
//! The paper selects 20 DBLP keywords and 13 XMark keywords and reports
//! each one's corpus frequency (e.g. `keyword (90)`, `data (25840)`;
//! `particle (12, 33, 69)` across the three XMark sizes). The
//! generators scale those frequencies by the corpus size ratio and plant
//! each keyword at that many pseudo-random text positions, so that the
//! *relative* selectivities — which drive the Figure 5/6 behaviour —
//! match the paper.

use rand::rngs::StdRng;
use rand::Rng;

/// DBLP keyword frequencies from §5.1 (`dblp20040213`, 197.6 MB).
pub const PAPER_DBLP_FREQS: &[(&str, u64)] = &[
    ("keyword", 90),
    ("similarity", 1242),
    ("recognition", 6447),
    ("algorithm", 14181),
    ("data", 25840),
    ("probabilistic", 2284),
    ("xml", 2121),
    ("dynamic", 7281),
    ("sigmod", 3983),
    ("tree", 3549),
    ("query", 3560),
    ("automata", 3337),
    ("pattern", 6513),
    ("retrieval", 5111),
    ("efficient", 8279),
    ("understanding", 1450),
    ("searching", 4618),
    ("vldb", 2313),
    ("henry", 1322),
    ("semantics", 3694),
];

/// XMark keyword frequencies from §5.1: `(keyword, [standard, data1,
/// data2])` for the 111.1 / 334.9 / 669.6 MB datasets.
pub const PAPER_XMARK_FREQS: &[(&str, [u64; 3])] = &[
    ("particle", [12, 33, 69]),
    ("dominator", [56, 150, 285]),
    ("threshold", [123, 405, 804]),
    ("chronicle", [426, 1286, 2568]),
    ("method", [552, 1667, 3356]),
    ("strings", [615, 1847, 3620]),
    ("unjust", [1000, 3044, 6150]),
    ("invention", [1546, 4715, 9404]),
    ("egypt", [2064, 5255, 12466]),
    ("leon", [2519, 7647, 15210]),
    ("preventions", [66216, 199365, 397672]),
    ("description", [11681, 35168, 70230]),
    ("order", [12705, 38141, 76271]),
];

/// A corpus of text blocks under construction: the generators first lay
/// out every block as background words, then [`TextCorpus::plant`]
/// overwrites sampled positions with query keywords, and finally the
/// blocks are consumed in order while building the tree.
#[derive(Debug)]
pub struct TextCorpus {
    blocks: Vec<Vec<String>>,
    planted: Vec<Vec<bool>>,
    /// Flat count of word positions across all blocks.
    positions: usize,
}

impl TextCorpus {
    /// Creates a corpus from pre-filled background blocks.
    #[must_use]
    pub fn new(blocks: Vec<Vec<String>>) -> Self {
        let positions = blocks.iter().map(Vec::len).sum();
        let planted = blocks.iter().map(|b| vec![false; b.len()]).collect();
        TextCorpus {
            blocks,
            planted,
            positions,
        }
    }

    /// Number of word positions available.
    #[must_use]
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the corpus has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Overwrites `count` uniformly-sampled word positions with
    /// `keyword`. Positions already holding a planted keyword are
    /// skipped (re-sampled), so successive plants do not evict each
    /// other; `count` is capped at the number of free positions.
    pub fn plant(&mut self, rng: &mut StdRng, keyword: &str, count: u64) {
        let free: usize = self.planted.iter().flatten().filter(|p| !**p).count();
        let target = (count as usize).min(free);
        let mut placed = 0;
        while placed < target {
            let b = rng.gen_range(0..self.blocks.len());
            if self.blocks[b].is_empty() {
                continue;
            }
            let w = rng.gen_range(0..self.blocks[b].len());
            if self.planted[b][w] {
                continue;
            }
            self.blocks[b][w] = keyword.to_owned();
            self.planted[b][w] = true;
            placed += 1;
        }
    }

    /// Like [`TextCorpus::plant`], but with *topical clustering*: each
    /// occurrence lands in one of the `hubs` blocks with probability
    /// `hub_p` (falling back to a uniform position when the chosen hub
    /// is full). Different keywords planted with the same hub list
    /// co-occur inside hub blocks the way topically related words
    /// co-occur in real corpora — which is what creates non-root LCA
    /// anchors for multi-keyword queries.
    pub fn plant_clustered(
        &mut self,
        rng: &mut StdRng,
        keyword: &str,
        count: u64,
        hubs: &[usize],
        hub_p: f64,
    ) {
        let free: usize = self.planted.iter().flatten().filter(|p| !**p).count();
        let target = (count as usize).min(free);
        let mut placed = 0;
        while placed < target {
            let in_hub = !hubs.is_empty() && rng.gen_bool(hub_p);
            let b = if in_hub {
                hubs[rng.gen_range(0..hubs.len())]
            } else {
                rng.gen_range(0..self.blocks.len())
            };
            if self.blocks[b].is_empty() {
                continue;
            }
            if in_hub && self.planted[b].iter().all(|p| *p) {
                // Hub saturated: place uniformly instead.
                self.plant(rng, keyword, 1);
                placed += 1;
                continue;
            }
            let w = rng.gen_range(0..self.blocks[b].len());
            if self.planted[b][w] {
                continue;
            }
            self.blocks[b][w] = keyword.to_owned();
            self.planted[b][w] = true;
            placed += 1;
        }
    }

    /// Consumes the corpus, returning the blocks joined into text
    /// strings in order.
    #[must_use]
    pub fn into_texts(self) -> Vec<String> {
        self.blocks.into_iter().map(|b| b.join(" ")).collect()
    }
}

/// Samples `n` distinct hub block indices out of `blocks`.
#[must_use]
pub fn sample_hubs(rng: &mut StdRng, blocks: usize, n: usize) -> Vec<usize> {
    let n = n.min(blocks);
    let mut hubs: Vec<usize> = Vec::with_capacity(n);
    while hubs.len() < n {
        let b = rng.gen_range(0..blocks);
        if !hubs.contains(&b) {
            hubs.push(b);
        }
    }
    hubs
}

/// Rank-frequency counts following a Zipf law: `count(r) ∝ r^-exponent`
/// for ranks `1..=ranks`, scaled so the counts sum to roughly `total`
/// (every rank keeps at least one occurrence).
///
/// `exponent = 0.0` is a uniform vocabulary; natural text sits near
/// `1.0`; higher exponents concentrate the mass in the head. The head
/// ranks become *stop words* — keywords so frequent that any query
/// containing one degenerates to scanning their posting list under a
/// k-way merge. That is exactly the adversarial regime the cost-based
/// planner targets: pairing a head word with a tail word gives the
/// rarest-first galloping intersection a posting-count ratio far above
/// `validrtf::plan::GALLOP_MIN_RATIO`, while a uniform vocabulary
/// (low exponent) keeps every list the same size and the planner on
/// the merge path. See `PERFORMANCE.md` §"How the planner picks an
/// order".
#[must_use]
pub fn zipf_counts(ranks: usize, total: u64, exponent: f64) -> Vec<u64> {
    if ranks == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = (1..=ranks).map(|r| (r as f64).powf(-exponent)).collect();
    let norm: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| (((w / norm) * total as f64).round() as u64).max(1))
        .collect()
}

/// Scales a paper frequency by `scale`, with a floor of 5 occurrences:
/// below that, queries containing the keyword degenerate to a single
/// trivial fragment and stop exercising the pruning machinery at all
/// (the paper's rarest keyword, `particle`, has 12 occurrences even in
/// the smallest corpus).
#[must_use]
pub fn scaled(freq: u64, scale: f64) -> u64 {
    (((freq as f64) * scale).round() as u64).max(5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn corpus(blocks: usize, words: usize) -> TextCorpus {
        TextCorpus::new(vec![vec!["filler".to_owned(); words]; blocks])
    }

    #[test]
    fn plant_places_exact_counts() {
        let mut c = corpus(50, 10);
        let mut rng = StdRng::seed_from_u64(1);
        c.plant(&mut rng, "xml", 37);
        c.plant(&mut rng, "keyword", 11);
        let texts = c.into_texts();
        let count = |w: &str| {
            texts
                .iter()
                .flat_map(|t| t.split(' '))
                .filter(|t| *t == w)
                .count()
        };
        assert_eq!(count("xml"), 37);
        assert_eq!(count("keyword"), 11);
        assert_eq!(count("filler"), 500 - 48);
    }

    #[test]
    fn plant_caps_at_capacity() {
        let mut c = corpus(2, 3);
        let mut rng = StdRng::seed_from_u64(2);
        c.plant(&mut rng, "xml", 100);
        let texts = c.into_texts();
        let total: usize = texts
            .iter()
            .flat_map(|t| t.split(' '))
            .filter(|t| *t == "xml")
            .count();
        assert_eq!(total, 6);
    }

    #[test]
    fn plants_are_deterministic() {
        let run = || {
            let mut c = corpus(20, 5);
            let mut rng = StdRng::seed_from_u64(42);
            c.plant(&mut rng, "xml", 9);
            c.into_texts()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scaled_applies_floor_of_five() {
        assert_eq!(scaled(90, 1.0 / 50.0), 5);
        assert_eq!(scaled(12, 1.0 / 100.0), 5);
        assert_eq!(scaled(25840, 0.01), 258);
    }

    #[test]
    fn zipf_counts_follow_the_exponent() {
        // Uniform at exponent 0.
        let uniform = zipf_counts(10, 1000, 0.0);
        assert!(uniform.iter().all(|&c| c == 100), "{uniform:?}");

        // Skewed: monotone non-increasing, head dominates, total is
        // preserved to within rounding (+ the per-rank floor of 1).
        let skewed = zipf_counts(100, 100_000, 1.2);
        assert!(skewed.windows(2).all(|w| w[0] >= w[1]));
        assert!(skewed[0] > 20 * skewed[50], "head must dominate the tail");
        let total: u64 = skewed.iter().sum();
        assert!((99_000..=101_000).contains(&total), "{total}");
        assert!(skewed.iter().all(|&c| c >= 1));

        assert!(zipf_counts(0, 100, 1.0).is_empty());
    }

    #[test]
    fn paper_tables_have_expected_sizes() {
        assert_eq!(PAPER_DBLP_FREQS.len(), 20);
        assert_eq!(PAPER_XMARK_FREQS.len(), 13);
        // XMark columns grow with dataset size.
        for (kw, [s, d1, d2]) in PAPER_XMARK_FREQS {
            assert!(s < d1 && d1 < d2, "{kw} frequencies must grow");
        }
    }
}
