//! Random small XML documents for property tests.
//!
//! The axiomatic-property and specification-oracle tests need arbitrary
//! documents with controllable label/word alphabets (small alphabets
//! force label collisions and keyword co-occurrence, which is where the
//! pruning logic has its interesting cases).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xks_xmltree::tree::NodeId;
use xks_xmltree::{TreeBuilder, XmlTree};

/// Configuration for [`random_document`].
#[derive(Debug, Clone)]
pub struct RandomDocConfig {
    /// Number of element nodes (≥ 1).
    pub nodes: usize,
    /// Label alphabet size (small → frequent same-label siblings).
    pub labels: usize,
    /// Word alphabet size (small → frequent keyword co-occurrence).
    pub words: usize,
    /// Maximum words of text per node (0 = no text anywhere).
    pub max_words_per_node: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDocConfig {
    fn default() -> Self {
        RandomDocConfig {
            nodes: 30,
            labels: 4,
            words: 6,
            max_words_per_node: 2,
            seed: 0,
        }
    }
}

/// The word alphabet used by [`random_document`]: `w0, w1, …`.
#[must_use]
pub fn word(i: usize) -> String {
    format!("w{i}")
}

/// The label alphabet: `l0, l1, …`.
#[must_use]
pub fn label(i: usize) -> String {
    format!("l{i}")
}

/// Generates a random document: a root plus `nodes − 1` elements
/// attached to uniformly-random existing parents, each with random text
/// words.
#[must_use]
pub fn random_document(cfg: &RandomDocConfig) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = TreeBuilder::new(&label(0));
    if cfg.max_words_per_node > 0 {
        maybe_text(&mut b, &mut rng, cfg);
    }

    // Track open paths: the builder is stack-based, so random-parent
    // attachment is easiest by recording a parent choice list first.
    // parents[i] = index (< i+1) of the node the (i+1)-th node attaches
    // to, in creation order.
    let n = cfg.nodes.max(1);
    let parents: Vec<usize> = (1..n).map(|i| rng.gen_range(0..i)).collect();

    // children[p] = list of child indices.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &p) in parents.iter().enumerate() {
        children[p].push(i + 1);
    }

    // Depth-first emit via the builder.
    fn emit(
        b: &mut TreeBuilder,
        rng: &mut StdRng,
        cfg: &RandomDocConfig,
        children: &[Vec<usize>],
        node: usize,
    ) {
        for &c in &children[node] {
            b.open(&label(rng.gen_range(0..cfg.labels)));
            maybe_text(b, rng, cfg);
            emit(b, rng, cfg, children, c);
            b.close();
        }
    }
    emit(&mut b, &mut rng, cfg, &children, 0);
    b.build()
}

fn maybe_text(b: &mut TreeBuilder, rng: &mut StdRng, cfg: &RandomDocConfig) {
    let n = rng.gen_range(0..=cfg.max_words_per_node);
    if n > 0 {
        let words: Vec<String> = (0..n).map(|_| word(rng.gen_range(0..cfg.words))).collect();
        b.text(&words.join(" "));
    }
}

/// Picks a random node id of the tree (for perturbation tests).
#[must_use]
pub fn random_node(tree: &XmlTree, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<NodeId> = tree.preorder().collect();
    ids[rng.gen_range(0..ids.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_node_count() {
        for nodes in [1, 2, 7, 40] {
            let t = random_document(&RandomDocConfig {
                nodes,
                seed: 3,
                ..Default::default()
            });
            assert_eq!(t.len(), nodes);
        }
    }

    #[test]
    fn deterministic() {
        let cfg = RandomDocConfig {
            nodes: 25,
            seed: 17,
            ..Default::default()
        };
        assert_eq!(
            random_document(&cfg).fingerprint(),
            random_document(&cfg).fingerprint()
        );
    }

    #[test]
    fn uses_configured_alphabets() {
        let t = random_document(&RandomDocConfig {
            nodes: 60,
            labels: 2,
            words: 3,
            max_words_per_node: 2,
            seed: 5,
        });
        for id in t.preorder() {
            let l = t.label_name(id);
            assert!(l == "l0" || l == "l1", "unexpected label {l}");
            if let Some(text) = &t.node(id).text {
                for w in text.split(' ') {
                    assert!(["w0", "w1", "w2"].contains(&w), "unexpected word {w}");
                }
            }
        }
    }

    #[test]
    fn random_node_is_valid() {
        let t = random_document(&RandomDocConfig::default());
        let id = random_node(&t, 9);
        assert!(id.index() < t.len());
    }
}
