//! Synthetic corpora for the experiments.
//!
//! The paper evaluates on DBLP (`dblp20040213`, 197.6 MB) and three
//! XMark datasets (111.1 / 334.9 / 669.6 MB). Neither corpus ships with
//! this repository, so this crate generates scaled stand-ins that
//! preserve what the experiments actually measure (see `DESIGN.md` §2):
//!
//! * the **document shapes** — flat, regular bibliography records for
//!   DBLP ([`dblp`]); the deeply nested auction-site schema for XMark
//!   ([`xmark`]);
//! * the **§5.1 query keywords at the paper's frequencies**, scaled by
//!   the corpus size ratio and planted at deterministic pseudo-random
//!   text positions ([`freq`]);
//! * the **query workloads** of Figures 5/6, reconstructed from the
//!   paper's letter abbreviations ([`queries`]).
//!
//! All generators are deterministic under an explicit seed.
//! [`random_tree`] additionally provides small random documents for the
//! workspace's property tests.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dblp;
pub mod freq;
pub mod queries;
pub mod random_tree;
pub mod scenario;
pub mod vocab;
pub mod xmark;

pub use dblp::{generate_dblp, DblpConfig};
pub use xmark::{generate_xmark, XmarkConfig, XmarkSize};
