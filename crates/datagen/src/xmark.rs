//! XMark-alike auction-site generator.
//!
//! XMark documents are deep and heterogeneous: a `site` root with
//! regional item listings (nested `description/parlist/listitem` text),
//! people with profiles, and open/closed auctions whose annotations nest
//! further text. Keywords scattered across these unrelated subtrees is
//! what drives the paper's XMark effectiveness profile (APR′ > 0 and
//! Max APR → 1: fragments collect distant, weakly related matches that
//! valid-contributor pruning then strips).
//!
//! The generator reproduces that shape and plants the §5.1 XMark
//! keywords at the scaled per-size frequencies; [`XmarkSize`] selects the
//! `standard` / `data1` / `data2` ladder (1× / ~3× / ~6×, mirroring
//! 111.1 / 334.9 / 669.6 MB).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xks_xmltree::{TreeBuilder, XmlTree};

use crate::freq::{sample_hubs, scaled, TextCorpus, PAPER_XMARK_FREQS};
use crate::vocab::{surname, zipf_text_block};

/// Which of the paper's three XMark datasets to mimic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmarkSize {
    /// The 111.1 MB `standard` dataset (column 1 of the §5.1 list).
    Standard,
    /// The 334.9 MB `data1` dataset (~3×).
    Data1,
    /// The 669.6 MB `data2` dataset (~6×).
    Data2,
}

impl XmarkSize {
    /// Index into the §5.1 frequency columns.
    #[must_use]
    pub fn column(self) -> usize {
        match self {
            XmarkSize::Standard => 0,
            XmarkSize::Data1 => 1,
            XmarkSize::Data2 => 2,
        }
    }

    /// Relative size multiplier of the dataset ladder.
    #[must_use]
    pub fn multiplier(self) -> usize {
        match self {
            XmarkSize::Standard => 1,
            XmarkSize::Data1 => 3,
            XmarkSize::Data2 => 6,
        }
    }
}

/// Configuration of the XMark-alike generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Which dataset of the ladder to generate.
    pub size: XmarkSize,
    /// Items per region at `Standard` size (scaled by the multiplier).
    pub base_items: usize,
    /// RNG seed.
    pub seed: u64,
    /// Frequency scale relative to the real datasets.
    pub scale: f64,
}

impl XmarkConfig {
    /// A ladder configuration: `base_items` items per region at standard
    /// size, frequencies scaled consistently with the chosen size.
    ///
    /// The real standard dataset holds ~21,750 items across six regions;
    /// the scale ties planted frequencies to our item count so
    /// selectivities match the paper's.
    #[must_use]
    pub fn sized(size: XmarkSize, base_items: usize, seed: u64) -> Self {
        XmarkConfig {
            size,
            base_items,
            seed,
            scale: (base_items * 6) as f64 / 21_750.0,
        }
    }
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];
const INTERESTS: [&str; 5] = ["music", "travel", "books", "cinema", "sports"];

/// Generates the corpus.
#[must_use]
pub fn generate_xmark(cfg: &XmarkConfig) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let items_per_region = cfg.base_items * cfg.size.multiplier();
    let total_items = items_per_region * REGIONS.len();
    let people = total_items / 2;
    let open_auctions = total_items / 3;
    let closed_auctions = total_items / 4;
    let categories = (total_items / 20).max(1);

    // Text blocks: one per item description listitem (2 each), one per
    // person "watch" annotation, one per auction annotation, one per
    // category description.
    let listitems_per_item = 2;
    let n_blocks =
        total_items * listitems_per_item + people + open_auctions + closed_auctions + categories;
    // Zipf-flavoured blocks: the frequent extremes make content features
    // collide across blocks, as they do in natural-language corpora (see
    // `vocab::COMMON_FIRST`).
    let blocks: Vec<Vec<String>> = (0..n_blocks)
        .map(|_| {
            let len = rng.gen_range(5..=10);
            zipf_text_block(&mut rng, len, 0.55)
        })
        .collect();
    let mut corpus = TextCorpus::new(blocks);
    let hubs = sample_hubs(&mut rng, n_blocks, (n_blocks / 150).max(4));
    for (kw, freqs) in PAPER_XMARK_FREQS {
        corpus.plant_clustered(
            &mut rng,
            kw,
            scaled(freqs[cfg.size.column()], cfg.scale),
            &hubs,
            0.3,
        );
    }
    let mut texts = corpus.into_texts().into_iter();
    let mut next_text = move || texts.next().expect("text budget miscounted");

    let mut b = TreeBuilder::new("site");

    // Regions with items.
    b.open("regions");
    for region in REGIONS {
        b.open(region);
        for i in 0..items_per_region {
            b.open_with_attrs("item", &[("id", &format!("item{region}{i}"))]);
            b.leaf("location", "united states");
            b.leaf("quantity", "1");
            b.leaf("name", surname(&mut rng));
            b.open("description");
            b.open("parlist");
            for _ in 0..listitems_per_item {
                b.open("listitem");
                b.leaf("text", &next_text());
                b.close();
            }
            b.close(); // parlist
            b.close(); // description
            b.close(); // item
        }
        b.close();
    }
    b.close(); // regions

    // People.
    b.open("people");
    for i in 0..people {
        b.open_with_attrs("person", &[("id", &format!("person{i}"))]);
        b.leaf("name", surname(&mut rng));
        b.leaf("emailaddress", &format!("mailto:p{i}@example.org"));
        b.open("profile");
        b.leaf("interest", INTERESTS[rng.gen_range(0..INTERESTS.len())]);
        b.leaf("education", "graduate school");
        b.close();
        b.open("watches");
        b.leaf("watch", &next_text());
        b.close();
        b.close(); // person
    }
    b.close();

    // Open auctions.
    b.open("open_auctions");
    for i in 0..open_auctions {
        b.open_with_attrs("open_auction", &[("id", &format!("open{i}"))]);
        b.leaf("initial", &format!("{}.00", rng.gen_range(1..300)));
        for _ in 0..rng.gen_range(1..=3usize) {
            b.open("bidder");
            b.leaf("date", "07/13/2001");
            b.leaf("increase", &format!("{}.00", rng.gen_range(1..30)));
            b.close();
        }
        b.open("annotation");
        b.open("description");
        b.leaf("text", &next_text());
        b.close();
        b.close();
        b.close(); // open_auction
    }
    b.close();

    // Closed auctions.
    b.open("closed_auctions");
    for i in 0..closed_auctions {
        b.open_with_attrs("closed_auction", &[("id", &format!("closed{i}"))]);
        b.leaf("price", &format!("{}.00", rng.gen_range(1..500)));
        b.leaf("date", "12/04/2000");
        b.open("annotation");
        b.open("description");
        b.leaf("text", &next_text());
        b.close();
        b.close();
        b.close();
    }
    b.close();

    // Categories.
    b.open("categories");
    for i in 0..categories {
        b.open_with_attrs("category", &[("id", &format!("cat{i}"))]);
        b.leaf("name", surname(&mut rng));
        b.open("description");
        b.leaf("text", &next_text());
        b.close();
        b.close();
    }
    b.close();

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::content::is_keyword_node;

    fn small(size: XmarkSize) -> XmlTree {
        generate_xmark(&XmarkConfig::sized(size, 30, 11))
    }

    fn count_keyword(tree: &XmlTree, kw: &str) -> usize {
        let kws = vec![kw.to_owned()];
        tree.preorder()
            .filter(|&id| is_keyword_node(tree, id, &kws))
            .count()
    }

    #[test]
    fn structure_has_all_sections() {
        let t = small(XmarkSize::Standard);
        let root = t.root();
        assert_eq!(t.label_name(root), "site");
        let sections: Vec<&str> = t
            .node(root)
            .children()
            .iter()
            .map(|&c| t.label_name(c))
            .collect();
        assert_eq!(
            sections,
            [
                "regions",
                "people",
                "open_auctions",
                "closed_auctions",
                "categories"
            ]
        );
    }

    #[test]
    fn items_are_deeply_nested() {
        let t = small(XmarkSize::Standard);
        // item → description → parlist → listitem → text is depth 6 from
        // root (site/regions/region/item/...).
        let deep = t
            .preorder()
            .filter(|&id| t.label_name(id) == "text")
            .any(|id| t.depth(id) >= 6);
        assert!(deep);
    }

    #[test]
    fn size_ladder_scales_node_counts() {
        let s = small(XmarkSize::Standard).len();
        let d1 = small(XmarkSize::Data1).len();
        let d2 = small(XmarkSize::Data2).len();
        assert!(d1 > 2 * s && d1 < 4 * s, "data1 ~3x: {s} → {d1}");
        assert!(d2 > 5 * s && d2 < 7 * s, "data2 ~6x: {s} → {d2}");
    }

    #[test]
    fn keyword_frequencies_follow_columns() {
        let t = small(XmarkSize::Standard);
        // preventions dominates description/order dominates the rare
        // particle, as in the paper's table.
        let preventions = count_keyword(&t, "preventions");
        let particle = count_keyword(&t, "particle");
        assert!(preventions > particle * 20, "{preventions} vs {particle}");
        for (kw, _) in PAPER_XMARK_FREQS {
            assert!(count_keyword(&t, kw) >= 1, "{kw} missing");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small(XmarkSize::Standard);
        let b = small(XmarkSize::Standard);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
