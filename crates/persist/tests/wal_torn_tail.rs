//! Torn-tail robustness of the WAL scanner: a valid log cut at *every*
//! byte offset must yield either a clean prefix of the original records
//! or a typed error — never a panic, and never a silently misparsed
//! record. Random single-byte corruption gets the same guarantee: the
//! per-frame CRC turns any damage into truncation or a typed error.

use std::path::PathBuf;

use proptest::prelude::*;
use xks_persist::wal::{Wal, WalRecord, WalScan, NO_MANIFEST_CRC, WAL_HEADER_LEN};
use xks_persist::{Injector, PersistError};

fn temp_wal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xks-wal-torn-tail-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Writes `records` through the real append path and returns the log's
/// bytes (header + frames, every frame fsynced).
fn wal_bytes(name: &str, base_crc: u32, records: &[WalRecord]) -> Vec<u8> {
    let path = temp_wal(name);
    let mut wal = Wal::create(&path, base_crc, Injector::none()).unwrap();
    for record in records {
        wal.append(record).unwrap();
    }
    drop(wal);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

/// The property itself: scanning any prefix of a valid log never
/// panics, and a successful scan reports exactly a prefix of the
/// original records with `valid_len` covering precisely those frames.
fn assert_prefix_or_typed_error(bytes: &[u8], cut: usize, original: &[WalRecord]) {
    let prefix = &bytes[..cut];
    match Wal::scan(prefix) {
        Ok(WalScan {
            records,
            valid_len,
            torn,
            ..
        }) => {
            assert!(
                records.len() <= original.len() && records == original[..records.len()],
                "cut at {cut}: scanned records are not a prefix of what was appended"
            );
            assert!(
                valid_len <= cut as u64,
                "cut at {cut}: valid_len {valid_len} exceeds the available bytes"
            );
            assert_eq!(
                torn,
                valid_len < cut as u64,
                "cut at {cut}: torn flag disagrees with leftover bytes"
            );
            // Re-scanning just the clean region must reproduce the
            // same records — truncation converged in one pass.
            let clean = Wal::scan(&prefix[..valid_len as usize]).unwrap();
            assert_eq!(clean.records, records, "cut at {cut}: unstable truncation");
            assert!(!clean.torn, "cut at {cut}: clean region reported torn");
        }
        Err(
            PersistError::Truncated { .. }
            | PersistError::BadMagic { .. }
            | PersistError::UnsupportedVersion { .. }
            | PersistError::Corrupt { .. },
        ) => {
            // Typed rejection is only legitimate while the fixed-size
            // header itself is incomplete or damaged; past it, torn
            // tails must be absorbed, not errored.
            assert!(
                (cut as u64) < WAL_HEADER_LEN,
                "cut at {cut}: complete header rejected instead of truncating the tail"
            );
        }
        Err(other) => panic!("cut at {cut}: unexpected error class {other:?}"),
    }
}

#[test]
fn every_byte_offset_truncation_is_absorbed() {
    let records = vec![
        WalRecord::Init {
            root_label: "pubs".to_owned(),
        },
        WalRecord::Insert {
            ordinal: 0,
            xml: "<paper><title>xml keyword search</title></paper>".to_owned(),
        },
        WalRecord::Delete { ordinal: 0 },
        WalRecord::Insert {
            ordinal: 1,
            xml: "<paper><title>skyline</title></paper>".to_owned(),
        },
    ];
    let bytes = wal_bytes("exhaustive.wal", NO_MANIFEST_CRC, &records);
    for cut in 0..=bytes.len() {
        assert_prefix_or_typed_error(&bytes, cut, &records);
    }
    // The untouched log replays everything.
    let full = Wal::scan(&bytes).unwrap();
    assert_eq!(full.records, records);
    assert!(!full.torn);
}

/// Tiny deterministic generator (xorshift64*) so record material can be
/// derived from one drawn seed — the proptest shim has no combinators
/// for sum types.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Arbitrary WAL record material: payloads of varied kinds and sizes.
/// Content is opaque to the framing layer — the scanner must not care
/// whether a payload parses as XML.
fn arb_records(seed: u64, max_len: u64) -> Vec<WalRecord> {
    let mut gen = Gen(seed);
    let count = gen.below(max_len) as usize;
    (0..count)
        .map(|_| match gen.below(3) {
            0 => {
                let len = 1 + gen.below(12) as usize;
                let root_label: String = (0..len)
                    .map(|_| char::from(b'a' + gen.below(26) as u8))
                    .collect();
                WalRecord::Init { root_label }
            }
            1 => {
                let len = gen.below(200) as usize;
                let body: String = (0..len)
                    .map(|_| char::from(0x20 + gen.below(0x5F) as u8))
                    .collect();
                WalRecord::Insert {
                    ordinal: gen.next() as u32,
                    xml: format!("<d>{body}</d>"),
                }
            }
            _ => WalRecord::Delete {
                ordinal: gen.next() as u32,
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_logs_survive_random_truncation(
        record_seed in any::<u64>(),
        base_crc in any::<u32>(),
        cut_seed in any::<u64>(),
    ) {
        let records = arb_records(record_seed, 12);
        let bytes = wal_bytes("proptest.wal", base_crc, &records);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        assert_prefix_or_typed_error(&bytes, cut, &records);
    }

    #[test]
    fn random_single_byte_corruption_never_misparses(
        record_seed in any::<u64>(),
        flip_seed in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let mut records = arb_records(record_seed, 8);
        if records.is_empty() {
            records.push(WalRecord::Delete { ordinal: 7 });
        }
        let mut bytes = wal_bytes("flip.wal", NO_MANIFEST_CRC, &records);
        let pos = (flip_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << flip_bit;
        match Wal::scan(&bytes) {
            Ok(scan) => {
                // Damage before the frame `pos` sits in cannot matter;
                // the damaged frame and everything after must be gone
                // or intact-by-prefix — never reinterpreted. A flip in
                // the header's base_crc field only changes `base_crc`.
                prop_assert!(
                    scan.records.len() <= records.len()
                        && scan.records == records[..scan.records.len()],
                    "corrupted log yielded a non-prefix: {:?}",
                    scan.records
                );
            }
            Err(
                PersistError::Truncated { .. }
                | PersistError::BadMagic { .. }
                | PersistError::UnsupportedVersion { .. }
                | PersistError::Corrupt { .. },
            ) => {
                prop_assert!(
                    (pos as u64) < WAL_HEADER_LEN,
                    "typed rejection for damage past the header (pos {pos})"
                );
            }
            Err(other) => panic!("unexpected error class {other:?}"),
        }
    }
}
