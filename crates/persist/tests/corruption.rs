//! Corruption handling: damaged `.xks` files must produce *typed*
//! errors — never panics — whether the damage hits the header, an
//! eagerly-validated section, or a lazily-read one.

use std::fs;
use std::path::PathBuf;

use xks_persist::format::{Section, HEADER_LEN};
use xks_persist::{IndexReader, IndexWriter, PersistError};
use xks_xmltree::fixtures::publications;

fn fresh_index(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xks-persist-corruption-test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    IndexWriter::new()
        .write_tree(&publications(), &path)
        .unwrap();
    path
}

#[test]
fn empty_file_is_truncated() {
    let dir = std::env::temp_dir().join("xks-persist-corruption-test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.xks");
    fs::write(&path, b"").unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::Truncated { .. } | PersistError::Io(_))
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn garbage_file_is_bad_magic() {
    let dir = std::env::temp_dir().join("xks-persist-corruption-test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.xks");
    fs::write(&path, vec![0xABu8; 4096]).unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::BadMagic {
            found: [0xAB, 0xAB, 0xAB, 0xAB]
        })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_header_detected() {
    let path = fresh_index("trunc-header.xks");
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..HEADER_LEN / 2]).unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::Truncated { .. })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_body_detected_at_open() {
    // Keep the header intact but cut the file before the promised
    // section ends: the directory bounds check must catch it.
    let path = fresh_index("trunc-body.xks");
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::Truncated { .. })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn wrong_version_detected() {
    let path = fresh_index("version.xks");
    let mut bytes = fs::read(&path).unwrap();
    bytes[4] = 99;
    bytes[5] = 0;
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::UnsupportedVersion { found: 99 })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn header_bitflip_is_checksum_mismatch() {
    let path = fresh_index("header-flip.xks");
    let mut bytes = fs::read(&path).unwrap();
    bytes[16] ^= 0x01; // inside element_count
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::ChecksumMismatch { section: "header" })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn label_section_bitflip_fails_open() {
    // The label dictionary is the one eagerly-validated section.
    let path = fresh_index("labels-flip.xks");
    let bytes = fs::read(&path).unwrap();
    let header = xks_persist::format::Header::decode(&bytes).unwrap();
    let labels = header.section(Section::Labels);
    let mut corrupted = bytes.clone();
    corrupted[labels.offset as usize + 3] ^= 0x10;
    fs::write(&path, &corrupted).unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::ChecksumMismatch { section: "labels" })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn postings_bitflip_passes_open_but_fails_verify() {
    // Lazily-read sections are not validated at open (that is the
    // point of paged reads); `verify()` must still catch the damage.
    let path = fresh_index("postings-flip.xks");
    let bytes = fs::read(&path).unwrap();
    let header = xks_persist::format::Header::decode(&bytes).unwrap();
    let postings = header.section(Section::Postings);
    let mut corrupted = bytes.clone();
    corrupted[postings.offset as usize + 1] ^= 0x20;
    fs::write(&path, &corrupted).unwrap();
    let reader = IndexReader::open(&path).expect("open is lazy");
    assert!(matches!(
        reader.verify(),
        Err(PersistError::ChecksumMismatch {
            section: "postings"
        })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn element_section_bitflip_fails_verify() {
    let path = fresh_index("elements-flip.xks");
    let bytes = fs::read(&path).unwrap();
    let header = xks_persist::format::Header::decode(&bytes).unwrap();
    let elements = header.section(Section::Elements);
    let mut corrupted = bytes.clone();
    corrupted[(elements.offset + elements.len / 2) as usize] ^= 0x04;
    fs::write(&path, &corrupted).unwrap();
    let reader = IndexReader::open(&path).expect("open is lazy");
    assert!(matches!(
        reader.verify(),
        Err(PersistError::ChecksumMismatch {
            section: "elements"
        })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn hostile_counts_in_lazy_sections_stay_typed_errors() {
    // Corrupt an element row's component-count varint into a huge
    // value: lazy reads skip CRCs, so the decoder itself must clamp
    // allocations and fail with a typed error — not abort.
    let path = fresh_index("hostile-count.xks");
    let mut bytes = fs::read(&path).unwrap();
    let header = xks_persist::format::Header::decode(&bytes).unwrap();
    let elements = header.section(Section::Elements);
    // First row starts at the section start; overwrite its leading
    // varint (component count) with a 10-byte max varint. This tramples
    // the row, which is fine — we only care that the reader stays typed.
    let start = elements.offset as usize;
    for b in &mut bytes[start..start + 9] {
        *b = 0xFF;
    }
    bytes[start + 9] = 0x01;
    fs::write(&path, &bytes).unwrap();
    let reader = IndexReader::open(&path).expect("open is lazy");
    let root: xks_xmltree::Dewey = "0".parse().unwrap();
    assert!(matches!(
        reader.try_element(&root),
        Err(PersistError::Truncated { .. } | PersistError::Corrupt { .. })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn mismatched_offset_array_rejected_at_open() {
    // A header whose element count disagrees with the offset-array
    // length (CRC re-sealed so only the count lies) must be rejected
    // before any lookup can multiply the bogus count.
    let path = fresh_index("bad-count.xks");
    let mut bytes = fs::read(&path).unwrap();
    bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes()); // element_count
    let crc = xks_persist::codec::crc32(&bytes[..HEADER_LEN - 4]);
    bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        IndexReader::open(&path),
        Err(PersistError::Corrupt { .. })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn clean_file_passes_everything() {
    let path = fresh_index("clean.xks");
    let reader = IndexReader::open(&path).unwrap();
    reader.verify().unwrap();
    assert!(!reader.try_keyword_deweys("keyword").unwrap().is_empty());
    fs::remove_file(&path).unwrap();
}
