//! Property tests for the persist codecs: varints and prefix-delta
//! Dewey posting lists must round-trip for arbitrary inputs, and the
//! decoder must reject truncations with typed errors instead of
//! panicking.

use proptest::prelude::*;
use xks_persist::codec::{get_postings, get_str, get_varint, put_postings, put_str, put_varint};
use xks_persist::PersistError;
use xks_xmltree::Dewey;

/// Builds a sorted, deduplicated Dewey list from arbitrary component
/// material — the exact shape posting lists have on disk.
fn dewey_list(raw: &[Vec<u8>]) -> Vec<Dewey> {
    let mut list: Vec<Dewey> = raw
        .iter()
        .filter(|comps| !comps.is_empty())
        .map(|comps| Dewey::from_components(comps.iter().map(|&c| u32::from(c % 7)).collect()))
        .collect();
    list.sort();
    list.dedup();
    list
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn varint_round_trips(values in prop::collection::vec(any::<u64>(), 0..50)) {
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_never_panics(value in any::<u64>(), cut in 0usize..10) {
        let mut buf = Vec::new();
        put_varint(&mut buf, value);
        let cut = cut.min(buf.len());
        let truncated = &buf[..buf.len() - cut];
        let mut pos = 0;
        match get_varint(truncated, &mut pos) {
            Ok(v) => prop_assert_eq!(v, value, "only the untouched encoding decodes"),
            Err(PersistError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn strings_round_trip(parts in prop::collection::vec(".{0,40}", 0..8)) {
        let mut buf = Vec::new();
        for s in &parts {
            put_str(&mut buf, s);
        }
        let mut pos = 0;
        for s in &parts {
            prop_assert_eq!(&get_str(&buf, &mut pos).unwrap(), s);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn postings_round_trip(
        raw in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..8), 0..60),
    ) {
        let list = dewey_list(&raw);
        let mut buf = Vec::new();
        put_postings(&mut buf, &list);
        let mut pos = 0;
        let back = get_postings(&buf, &mut pos).unwrap();
        prop_assert_eq!(back, list);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn postings_truncation_is_typed(
        raw in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..8), 1..40),
        cut in 1usize..20,
    ) {
        let list = dewey_list(&raw);
        prop_assume!(!list.is_empty());
        let mut buf = Vec::new();
        put_postings(&mut buf, &list);
        let cut = cut.min(buf.len() - 1);
        let truncated = &buf[..buf.len() - cut];
        let mut pos = 0;
        match get_postings(truncated, &mut pos) {
            // Cutting whole trailing entries can still decode a prefix
            // of the list — but never the full list.
            Ok(decoded) => prop_assert!(decoded.len() < list.len()),
            Err(PersistError::Truncated { .. } | PersistError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn postings_decoder_survives_random_bytes(
        junk in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // Arbitrary bytes must produce Ok or a typed error — never a
        // panic or unbounded allocation (count is bounded by input
        // size because every posting consumes at least two bytes).
        let mut pos = 0;
        let _ = get_postings(&junk, &mut pos);
    }
}
