//! Opening and querying `.xks` index files.
//!
//! [`IndexReader::open`] validates the header and loads only the label
//! dictionary (a handful of strings). Everything else — element rows,
//! keyword dictionary, postings — stays on disk and is fetched page by
//! page through the LRU [`BufferPool`] as lookups demand: a keyword
//! lookup binary-searches the offset array (one 8-byte read per probe),
//! decodes one dictionary entry per probe, and finally reads exactly
//! the pages its posting run spans. The pool counters in
//! [`IndexReader::stats`] make that laziness observable.

use std::collections::HashMap;
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use validrtf::plan::KeywordStats;
use validrtf::source::{CorpusSource, SourceElement, SourceError};
use xks_xmltree::{Dewey, DeweyListBuf};

use crate::codec::{crc32, get_postings_into, get_varint, Crc32};
use crate::error::PersistError;
use crate::format::{Header, Section, HEADER_LEN};
use crate::pool::{lock_unpoisoned, BufferPool, PoolStats};

/// Tuning knobs for [`IndexReader::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct ReaderOptions {
    /// Buffer-pool capacity in pages (default 256; clamped to ≥ 8).
    pub pool_pages: usize,
    /// Capacity of the decoded-postings LRU cache in keywords
    /// (default 64; 0 disables caching). A hit skips the pool reads
    /// *and* the varint decode for the keyword's whole posting run.
    pub postings_cache_keywords: usize,
    /// Capacity of the decoded-element cache in nodes (default 16384;
    /// 0 disables caching). A hit skips the whole element binary
    /// search. The cache is flushed wholesale when full, so its worst
    /// case degrades to the uncached lookup, never to an eviction scan.
    pub element_cache_nodes: usize,
}

impl Default for ReaderOptions {
    fn default() -> Self {
        ReaderOptions {
            pool_pages: 256,
            postings_cache_keywords: 64,
            element_cache_nodes: 16_384,
        }
    }
}

/// A tiny LRU keyed by keyword, holding decoded posting runs as shared
/// flat arenas. Capacities are small (tens of entries), so eviction is
/// an O(n) scan — no intrusive list needed.
///
/// Thread-safe: slots sit behind one `Mutex` (critical sections are a
/// short scan — the expensive decode happens outside, and a racing
/// double-decode just inserts twice, last write wins); counters are
/// relaxed atomics.
#[derive(Debug)]
struct PostingsCache {
    capacity: usize,
    tick: AtomicU64,
    slots: Mutex<Vec<CacheSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct CacheSlot {
    keyword: String,
    postings: Arc<DeweyListBuf>,
    last_used: u64,
}

impl PostingsCache {
    fn new(capacity: usize) -> Self {
        PostingsCache {
            capacity,
            tick: AtomicU64::new(0),
            slots: Mutex::new(Vec::with_capacity(capacity.min(64))),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn bump(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn len(&self) -> usize {
        lock_unpoisoned(&self.slots).len()
    }

    fn get(&self, keyword: &str) -> Option<Arc<DeweyListBuf>> {
        if self.capacity == 0 {
            return None;
        }
        let tick = self.bump();
        let mut slots = lock_unpoisoned(&self.slots);
        if let Some(slot) = slots.iter_mut().find(|s| s.keyword == keyword) {
            slot.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&slot.postings));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert(&self, keyword: &str, postings: Arc<DeweyListBuf>) {
        if self.capacity == 0 {
            return;
        }
        let last_used = self.bump();
        let slot = CacheSlot {
            keyword: keyword.to_owned(),
            postings,
            last_used,
        };
        let mut slots = lock_unpoisoned(&self.slots);
        if let Some(existing) = slots.iter_mut().find(|s| s.keyword == slot.keyword) {
            *existing = slot;
            return;
        }
        if slots.len() < self.capacity {
            slots.push(slot);
        } else {
            let lru = slots
                .iter_mut()
                .min_by_key(|s| s.last_used)
                .expect("capacity > 0");
            *lru = slot;
        }
    }
}

/// A decoded element-table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementRecord {
    /// The node's Dewey code.
    pub dewey: Dewey,
    /// Label id into the label dictionary.
    pub label: u32,
    /// Depth (root = 0).
    pub level: u32,
    /// Label ids along the root path (the paper's label number
    /// sequence).
    pub label_path: Vec<u32>,
    /// `(min, max)` of the subtree content (the `element` table's cID).
    pub subtree_cid: Option<(String, String)>,
    /// `(min, max)` of the node's own content `Cv`.
    pub own_cid: Option<(String, String)>,
}

/// Aggregate facts about an open index, including live pool counters.
#[derive(Debug, Clone, Copy)]
pub struct IndexStats {
    /// Total file length.
    pub file_len: u64,
    /// Page size from the header.
    pub page_size: u32,
    /// Element rows.
    pub element_count: u64,
    /// Distinct keywords.
    pub keyword_count: u64,
    /// Labels in the dictionary.
    pub label_count: u64,
    /// Bytes of the postings section.
    pub postings_len: u64,
    /// Pages the postings section spans.
    pub postings_pages: u64,
    /// Buffer-pool counters.
    pub pool: PoolStats,
    /// Keywords currently resident in the decoded-postings cache.
    pub postings_cache_entries: usize,
    /// Keyword lookups served from the decoded-postings cache.
    pub postings_cache_hits: u64,
    /// Keyword lookups that had to decode from pages.
    pub postings_cache_misses: u64,
    /// Nodes currently resident in the decoded-element cache.
    pub element_cache_entries: usize,
    /// Element lookups served from the decoded-element cache.
    pub element_cache_hits: u64,
    /// Element lookups that went through the paged binary search.
    pub element_cache_misses: u64,
}

impl xks_obs::MetricSource for IndexStats {
    /// Contributes every reader counter to a snapshot under `prefix`:
    /// structural facts as gauges (`<prefix>file_len`,
    /// `<prefix>pool.cached_pages`, ...), traffic as counters
    /// (`<prefix>pool.cache_hits`, `<prefix>postings_cache.misses`,
    /// ...) — one naming scheme shared by monolithic readers
    /// (`index.`) and shards (`index.shard.N.`).
    fn collect_into(&self, prefix: &str, snap: &mut xks_obs::Snapshot) {
        snap.gauge(format!("{prefix}file_len"), self.file_len);
        snap.gauge(format!("{prefix}page_size"), u64::from(self.page_size));
        snap.gauge(format!("{prefix}element_count"), self.element_count);
        snap.gauge(format!("{prefix}keyword_count"), self.keyword_count);
        snap.gauge(format!("{prefix}label_count"), self.label_count);
        snap.gauge(format!("{prefix}postings_len"), self.postings_len);
        snap.gauge(format!("{prefix}postings_pages"), self.postings_pages);
        snap.gauge(
            format!("{prefix}pool.capacity_pages"),
            self.pool.capacity_pages as u64,
        );
        snap.gauge(
            format!("{prefix}pool.cached_pages"),
            self.pool.cached_pages as u64,
        );
        snap.counter(format!("{prefix}pool.pages_read"), self.pool.pages_read);
        snap.counter(format!("{prefix}pool.cache_hits"), self.pool.cache_hits);
        snap.counter(format!("{prefix}pool.cache_misses"), self.pool.cache_misses);
        snap.counter(format!("{prefix}pool.evictions"), self.pool.evictions);
        snap.gauge(
            format!("{prefix}postings_cache.entries"),
            self.postings_cache_entries as u64,
        );
        snap.counter(
            format!("{prefix}postings_cache.hits"),
            self.postings_cache_hits,
        );
        snap.counter(
            format!("{prefix}postings_cache.misses"),
            self.postings_cache_misses,
        );
        snap.gauge(
            format!("{prefix}element_cache.entries"),
            self.element_cache_entries as u64,
        );
        snap.counter(
            format!("{prefix}element_cache.hits"),
            self.element_cache_hits,
        );
        snap.counter(
            format!("{prefix}element_cache.misses"),
            self.element_cache_misses,
        );
        // Derived hit-rate ratios, emitted only for caches that saw
        // traffic — an untouched cache has no rate, not a NaN one.
        for (name, hits, misses) in [
            (
                "pool.hit_rate",
                self.pool.cache_hits,
                self.pool.cache_misses,
            ),
            (
                "postings_cache.hit_rate",
                self.postings_cache_hits,
                self.postings_cache_misses,
            ),
            (
                "element_cache.hit_rate",
                self.element_cache_hits,
                self.element_cache_misses,
            ),
        ] {
            let total = hits + misses;
            if total > 0 {
                snap.ratio(format!("{prefix}{name}"), hits as f64 / total as f64);
            }
        }
    }
}

/// Number of independently locked element-cache shards (power of two).
const ELEMENT_SHARDS: usize = 8;

/// A flush-on-full map of decoded element facts, shared via `Arc` so a
/// hit hands out the record without cloning its strings.
///
/// Thread-safe: the map is split into [`ELEMENT_SHARDS`] shards, each
/// behind its own `Mutex` and flushed independently when its slice of
/// the capacity fills, so concurrent element lookups on different
/// nodes rarely contend. Counters are relaxed atomics.
#[derive(Debug)]
struct ElementCache {
    shard_capacity: usize,
    shards: [Mutex<HashMap<Dewey, Option<Arc<SourceElement>>>>; ELEMENT_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ElementCache {
    fn new(capacity: usize) -> Self {
        let shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(ELEMENT_SHARDS).max(1)
        };
        ElementCache {
            shard_capacity,
            shards: std::array::from_fn(|_| {
                Mutex::new(HashMap::with_capacity(shard_capacity.min(1024)))
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Shard index for a Dewey code: cheap component fold, masked to
    /// the power-of-two shard count.
    fn shard(&self, dewey: &Dewey) -> &Mutex<HashMap<Dewey, Option<Arc<SourceElement>>>> {
        let h = dewey
            .components()
            .iter()
            .fold(0u32, |h, c| h.wrapping_mul(31).wrapping_add(*c));
        &self.shards[(h as usize) & (ELEMENT_SHARDS - 1)]
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_unpoisoned(s).len()).sum()
    }

    fn get(&self, dewey: &Dewey) -> Option<Option<Arc<SourceElement>>> {
        if self.shard_capacity == 0 {
            return None;
        }
        // Same recover-and-count poison policy as every other persist
        // lock site: a cache shard holds no invariant a panic can
        // break, so one panicked thread must not wedge element reads.
        let hit = lock_unpoisoned(self.shard(dewey)).get(dewey).cloned();
        match hit {
            Some(found) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(found)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, dewey: &Dewey, element: Option<Arc<SourceElement>>) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut map = lock_unpoisoned(self.shard(dewey));
        if map.len() >= self.shard_capacity {
            map.clear();
        }
        map.insert(dewey.clone(), element);
    }
}

/// A read-only handle on an `.xks` index file, with small per-reader
/// caches of decoded postings and element facts in front of the buffer
/// pool.
///
/// `IndexReader` is `Send + Sync`: one opened index can serve many
/// query threads concurrently behind an `Arc` (the buffer pool is
/// sharded-locked, the caches are lock-guarded, and every counter is
/// atomic). See the workspace's `PERFORMANCE.md` "Concurrency model"
/// section for the lock layout.
#[derive(Debug)]
pub struct IndexReader {
    path: PathBuf,
    pool: BufferPool,
    header: Header,
    labels: Vec<String>,
    postings_cache: PostingsCache,
    element_cache: ElementCache,
}

impl IndexReader {
    /// Opens an index with default options.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        Self::open_with(path, ReaderOptions::default())
    }

    /// Opens an index, validating magic, version, header checksum, and
    /// the label dictionary (checksummed and loaded eagerly — it is the
    /// only eagerly-read section). Use [`IndexReader::verify`] for a
    /// full-file integrity pass.
    pub fn open_with(path: &Path, options: ReaderOptions) -> Result<Self, PersistError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();

        let mut header_bytes = vec![0u8; HEADER_LEN.min(file_len as usize)];
        file.read_exact(&mut header_bytes)?;
        let header = Header::decode(&header_bytes)?;

        for section in Section::all() {
            let entry = header.section(section);
            if entry
                .offset
                .checked_add(entry.len)
                .is_none_or(|end| end > file_len)
            {
                return Err(PersistError::Truncated {
                    what: section.name(),
                });
            }
        }

        // Offset arrays must agree with the header counts — this also
        // bounds every later `idx * 8` (idx < count <= file_len / 8),
        // so crafted counts cannot overflow or index past the section.
        for (count, section) in [
            (header.element_count, Section::ElementOffsets),
            (header.keyword_count, Section::KeywordOffsets),
        ] {
            let entry = header.section(section);
            if count.checked_mul(8) != Some(entry.len) {
                return Err(PersistError::Corrupt {
                    what: format!(
                        "{} section holds {} bytes but the header count {} needs {}",
                        section.name(),
                        entry.len,
                        count,
                        count.saturating_mul(8),
                    ),
                });
            }
        }

        let labels_entry = header.section(Section::Labels);
        let labels_bytes =
            read_exact_at(&mut file, labels_entry.offset, labels_entry.len as usize)?;
        if crc32(&labels_bytes) != labels_entry.crc {
            return Err(PersistError::ChecksumMismatch { section: "labels" });
        }
        let labels = decode_labels(&labels_bytes, header.label_count)?;

        let pool = BufferPool::new(
            file,
            file_len,
            header.page_size as usize,
            options.pool_pages,
        );
        Ok(IndexReader {
            path: path.to_owned(),
            pool,
            header,
            labels,
            postings_cache: PostingsCache::new(options.postings_cache_keywords),
            element_cache: ElementCache::new(options.element_cache_nodes),
        })
    }

    /// Aggregate stats, including live buffer-pool counters.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let postings = self.header.section(Section::Postings);
        let page = u64::from(self.header.page_size);
        IndexStats {
            file_len: self.pool.file_len(),
            page_size: self.header.page_size,
            element_count: self.header.element_count,
            keyword_count: self.header.keyword_count,
            label_count: self.header.label_count,
            postings_len: postings.len,
            postings_pages: postings.len.div_ceil(page),
            pool: self.pool.stats(),
            postings_cache_entries: self.postings_cache.len(),
            postings_cache_hits: self.postings_cache.hits.load(Ordering::Relaxed),
            postings_cache_misses: self.postings_cache.misses.load(Ordering::Relaxed),
            element_cache_entries: self.element_cache.len(),
            element_cache_hits: self.element_cache.hits.load(Ordering::Relaxed),
            element_cache_misses: self.element_cache.misses.load(Ordering::Relaxed),
        }
    }

    /// The file this reader was opened from. Informational only — all
    /// reads (including [`IndexReader::verify`]) go through the file
    /// handle opened at [`IndexReader::open`] time, not this path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The label string for an id.
    #[must_use]
    pub fn label(&self, id: u32) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// The whole label dictionary, in id order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of element rows.
    #[must_use]
    pub fn element_count(&self) -> u64 {
        self.header.element_count
    }

    /// Number of distinct keywords.
    #[must_use]
    pub fn keyword_count(&self) -> u64 {
        self.header.keyword_count
    }

    /// On-disk format version of the opened file (see
    /// [`crate::format::VERSION`]). v2 files carry document
    /// frequencies in the dictionary; v1 files derive them on demand.
    #[must_use]
    pub fn format_version(&self) -> u16 {
        self.header.version
    }

    /// The decoded posting run for `keyword` as a shared flat arena
    /// (empty when the keyword is absent). Runs decode into a
    /// [`DeweyListBuf`] — one components vector + offsets instead of
    /// one heap code per posting — and land in a small per-reader LRU,
    /// so repeated keywords skip both the page reads and the
    /// prefix-delta decode.
    pub fn keyword_postings(&self, keyword: &str) -> Result<Arc<DeweyListBuf>, PersistError> {
        if let Some(cached) = self.postings_cache.get(keyword) {
            return Ok(cached);
        }
        let mut buf = DeweyListBuf::new();
        self.keyword_postings_into(keyword, &mut buf)?;
        let decoded = Arc::new(buf);
        self.postings_cache.insert(keyword, Arc::clone(&decoded));
        Ok(decoded)
    }

    /// Sorted Dewey postings for `keyword` (empty when absent), reading
    /// only the pages the lookup touches (and none at all on a postings
    /// cache hit).
    pub fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, PersistError> {
        Ok(self.keyword_postings(keyword)?.to_deweys())
    }

    /// Decodes `keyword`'s posting run directly into a **caller-owned**
    /// arena, bypassing the shared decoded-postings cache entirely —
    /// the per-context decode path (`xks_lca::QueryContext::postings`):
    /// a warm arena re-decodes without allocating and without taking
    /// the cache lock, which suits vocabulary-scan workloads whose
    /// keywords would only churn the shared LRU. Returns the number of
    /// codes decoded; `buf` is cleared first.
    pub fn keyword_postings_into(
        &self,
        keyword: &str,
        buf: &mut DeweyListBuf,
    ) -> Result<usize, PersistError> {
        buf.clear();
        let Some(DictEntry {
            count,
            run_off,
            run_len,
            ..
        }) = self.find_keyword(keyword)?
        else {
            return Ok(0);
        };
        let postings = self.header.section(Section::Postings);
        if run_off
            .checked_add(run_len)
            .is_none_or(|end| end > postings.len)
        {
            return Err(PersistError::Corrupt {
                what: format!("postings run for {keyword:?} outside the postings section"),
            });
        }
        let bytes = self
            .pool
            .read_at(postings.offset + run_off, run_len as usize)?;
        let mut pos = 0;
        get_postings_into(&bytes, &mut pos, buf)?;
        if buf.len() as u64 != count {
            return Err(PersistError::Corrupt {
                what: format!(
                    "postings run for {keyword:?} decodes {} codes, dictionary says {count}",
                    buf.len()
                ),
            });
        }
        Ok(buf.len())
    }

    /// Sealed selectivity statistics for `keyword`. On format-v2 files
    /// the document frequency comes straight from the dictionary entry
    /// (one binary search, no postings read); on v1 files it is derived
    /// on demand from the decoded posting run (served by the postings
    /// LRU, so repeats are free). Absent keywords yield zero stats.
    pub fn keyword_stats(&self, keyword: &str) -> Result<KeywordStats, PersistError> {
        match self.find_keyword(keyword)? {
            None => Ok(KeywordStats::default()),
            Some(DictEntry {
                count,
                doc_freq: Some(df),
                ..
            }) => Ok(KeywordStats {
                postings: count,
                docs: df,
            }),
            Some(DictEntry { count, .. }) => {
                // v1 file: derive the document frequency lazily.
                let run = self.keyword_postings(keyword)?;
                let mut df = 0u64;
                let mut last: Option<Option<u32>> = None;
                for comps in run.iter() {
                    let doc = comps.get(1).copied();
                    if last != Some(doc) {
                        df += 1;
                        last = Some(doc);
                    }
                }
                Ok(KeywordStats {
                    postings: count,
                    docs: df,
                })
            }
        }
    }

    /// The element row for a Dewey code, `None` when absent. Binary
    /// search over the paged offset array; probes decode only the
    /// row's Dewey components — the rest (label path, content-feature
    /// strings) is decoded once, on the matching row.
    pub fn try_element(&self, dewey: &Dewey) -> Result<Option<ElementRecord>, PersistError> {
        let target = dewey.components();
        let mut lo = 0u64;
        let mut hi = self.header.element_count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let row_off = self.offset_entry(Section::ElementOffsets, mid)?;
            let mut cursor = self.cursor(Section::Elements, row_off)?;
            let components = decode_row_dewey(&mut cursor)?;
            match components.as_slice().cmp(target) {
                std::cmp::Ordering::Equal => {
                    return Ok(Some(decode_row_rest(cursor, components)?));
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        Ok(None)
    }

    /// The element row at table index `idx` (document order) —
    /// sequential enumeration for compaction's shard export, sharing
    /// the binary search's row decoders.
    pub fn element_record(&self, idx: u64) -> Result<ElementRecord, PersistError> {
        if idx >= self.header.element_count {
            return Err(PersistError::Corrupt {
                what: format!(
                    "element index {idx} out of range (table has {} rows)",
                    self.header.element_count
                ),
            });
        }
        let row_off = self.offset_entry(Section::ElementOffsets, idx)?;
        let mut cursor = self.cursor(Section::Elements, row_off)?;
        let components = decode_row_dewey(&mut cursor)?;
        decode_row_rest(cursor, components)
    }

    /// The keyword at dictionary index `idx` (lexicographic order)
    /// together with its decoded posting list — sequential enumeration
    /// for compaction's shard export. Bypasses the postings LRU: an
    /// export sweep would only churn it.
    pub fn keyword_at(&self, idx: u64) -> Result<(String, Vec<Dewey>), PersistError> {
        if idx >= self.header.keyword_count {
            return Err(PersistError::Corrupt {
                what: format!(
                    "keyword index {idx} out of range (dictionary has {} entries)",
                    self.header.keyword_count
                ),
            });
        }
        let entry_off = self.offset_entry(Section::KeywordOffsets, idx)?;
        let mut cursor = self.cursor(Section::KeywordDict, entry_off)?;
        let word = cursor.read_str()?;
        let count = cursor.read_varint()?;
        let run_off = cursor.read_varint()?;
        let run_len = cursor.read_varint()?;
        let postings = self.header.section(Section::Postings);
        if run_off
            .checked_add(run_len)
            .is_none_or(|end| end > postings.len)
        {
            return Err(PersistError::Corrupt {
                what: format!("postings run for {word:?} outside the postings section"),
            });
        }
        let bytes = self
            .pool
            .read_at(postings.offset + run_off, run_len as usize)?;
        let mut pos = 0;
        let deweys = crate::codec::get_postings(&bytes, &mut pos)?;
        if deweys.len() as u64 != count {
            return Err(PersistError::Corrupt {
                what: format!(
                    "postings run for {word:?} decodes {} codes, dictionary says {count}",
                    deweys.len()
                ),
            });
        }
        Ok((word, deweys))
    }

    /// Verifies every section checksum by streaming the open index in
    /// fixed-size chunks (O(chunk) memory however large the index).
    /// Reads go through the pool's own file handle, so the bytes
    /// checked are the same inode lookups are served from even if the
    /// file on disk has since been replaced by a rebuild.
    pub fn verify(&self) -> Result<(), PersistError> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut chunk = vec![0u8; 64 * 1024];
        for section in Section::all() {
            let entry = self.header.section(section);
            let crc = self
                .pool
                .with_file(|mut file| -> Result<u32, PersistError> {
                    file.seek(SeekFrom::Start(entry.offset))?;
                    let mut crc = Crc32::new();
                    let mut remaining = entry.len as usize;
                    while remaining > 0 {
                        let take = remaining.min(chunk.len());
                        file.read_exact(&mut chunk[..take])?;
                        crc.update(&chunk[..take]);
                        remaining -= take;
                    }
                    Ok(crc.finish())
                })?;
            if crc != entry.crc {
                return Err(PersistError::ChecksumMismatch {
                    section: section.name(),
                });
            }
        }
        Ok(())
    }

    /// The element facts for `dewey` through the decoded-element cache:
    /// a hit skips the paged binary search entirely and shares the
    /// record via `Arc` (no string clones for label-only callers).
    fn cached_element(&self, dewey: &Dewey) -> Result<Option<Arc<SourceElement>>, PersistError> {
        if let Some(found) = self.element_cache.get(dewey) {
            return Ok(found);
        }
        let decoded = self.try_element(dewey)?.map(|record| {
            Arc::new(SourceElement {
                label: record.label,
                level: record.level,
                keyword_cid: record.own_cid,
                subtree_cid: record.subtree_cid,
            })
        });
        self.element_cache.insert(dewey, decoded.clone());
        Ok(decoded)
    }

    // ---------------------------------------------------------- internal

    /// Reads entry `idx` of a `u64` offset array section (stack buffer,
    /// no heap allocation — this runs once per binary-search probe).
    fn offset_entry(&self, section: Section, idx: u64) -> Result<u64, PersistError> {
        let entry = self.header.section(section);
        let (bytes, n) = self.pool.read_small(entry.offset + idx * 8, 8)?;
        debug_assert_eq!(n, 8);
        Ok(u64::from_le_bytes(bytes[..8].try_into().expect("read 8")))
    }

    /// Binary search in the keyword dictionary; the document frequency
    /// is stored from format v2 on, `None` for v1 files.
    fn find_keyword(&self, keyword: &str) -> Result<Option<DictEntry>, PersistError> {
        let mut lo = 0u64;
        let mut hi = self.header.keyword_count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let entry_off = self.offset_entry(Section::KeywordOffsets, mid)?;
            let mut cursor = self.cursor(Section::KeywordDict, entry_off)?;
            let word = cursor.read_str()?;
            match word.as_str().cmp(keyword) {
                std::cmp::Ordering::Equal => {
                    let count = cursor.read_varint()?;
                    let run_off = cursor.read_varint()?;
                    let run_len = cursor.read_varint()?;
                    let doc_freq = if self.header.version >= 2 {
                        Some(cursor.read_varint()?)
                    } else {
                        None
                    };
                    return Ok(Some(DictEntry {
                        count,
                        run_off,
                        run_len,
                        doc_freq,
                    }));
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        Ok(None)
    }

    fn cursor(&self, section: Section, rel_off: u64) -> Result<SectionCursor<'_>, PersistError> {
        let entry = self.header.section(section);
        if rel_off > entry.len {
            return Err(PersistError::Corrupt {
                what: format!("offset {rel_off} outside section {}", section.name()),
            });
        }
        Ok(SectionCursor {
            pool: &self.pool,
            pos: entry.offset + rel_off,
            end: entry.offset + entry.len,
        })
    }
}

/// One decoded keyword-dictionary entry: posting count, the posting
/// run's offset/length, and (v2 files only) the document frequency.
struct DictEntry {
    count: u64,
    run_off: u64,
    run_len: u64,
    doc_freq: Option<u64>,
}

/// Sequential decoder over one section, pulling bytes through the pool.
struct SectionCursor<'a> {
    pool: &'a BufferPool,
    pos: u64,
    end: u64,
}

impl SectionCursor<'_> {
    fn read_varint(&mut self) -> Result<u64, PersistError> {
        let avail = (self.end - self.pos).min(10) as usize;
        let (bytes, n) = self.pool.read_small(self.pos, avail)?;
        let mut pos = 0;
        let v = get_varint(&bytes[..n], &mut pos)?;
        self.pos += pos as u64;
        Ok(v)
    }

    fn read_u32(&mut self) -> Result<u32, PersistError> {
        let v = self.read_varint()?;
        u32::try_from(v).map_err(|_| PersistError::Corrupt {
            what: "field overflows u32".to_owned(),
        })
    }

    /// Upper bound on how many one-byte-or-more items the rest of the
    /// section could hold (for clamping corruption-controlled counts).
    fn plausible_items(&self) -> usize {
        (self.end - self.pos) as usize + 1
    }

    fn read_bytes(&mut self, len: usize) -> Result<Vec<u8>, PersistError> {
        if self
            .pos
            .checked_add(len as u64)
            .is_none_or(|end| end > self.end)
        {
            return Err(PersistError::Truncated {
                what: "record ran past the end of its section",
            });
        }
        let bytes = self.pool.read_at(self.pos, len)?;
        self.pos += len as u64;
        Ok(bytes)
    }

    fn read_str(&mut self) -> Result<String, PersistError> {
        let len = self.read_varint()? as usize;
        let bytes = self.read_bytes(len)?;
        String::from_utf8(bytes).map_err(|_| PersistError::Corrupt {
            what: "string is not valid UTF-8".to_owned(),
        })
    }

    fn read_cid(&mut self) -> Result<Option<(String, String)>, PersistError> {
        match self.read_bytes(1)?[0] {
            0 => Ok(None),
            1 => {
                let min = self.read_str()?;
                let max = self.read_str()?;
                Ok(Some((min, max)))
            }
            other => Err(PersistError::Corrupt {
                what: format!("content-feature tag {other} (expected 0 or 1)"),
            }),
        }
    }
}

/// Decodes the leading Dewey components of an element row — all a
/// binary-search probe needs.
///
/// Counts come from a lazily-read (non-CRC-checked) section, so
/// capacities are clamped to what the remaining section bytes could
/// plausibly hold — a corrupt count yields a typed error from the
/// per-item reads, never an oversized allocation.
fn decode_row_dewey(cursor: &mut SectionCursor<'_>) -> Result<Vec<u32>, PersistError> {
    let ncomp = cursor.read_varint()? as usize;
    let mut components = Vec::with_capacity(ncomp.min(cursor.plausible_items()));
    for _ in 0..ncomp {
        let c = cursor.read_varint()?;
        components.push(u32::try_from(c).map_err(|_| PersistError::Corrupt {
            what: "Dewey component overflows u32".to_owned(),
        })?);
    }
    Ok(components)
}

/// Decodes the remainder of an element row once the Dewey matched.
fn decode_row_rest(
    mut cursor: SectionCursor<'_>,
    components: Vec<u32>,
) -> Result<ElementRecord, PersistError> {
    let label = cursor.read_u32()?;
    let level = cursor.read_u32()?;
    let path_len = cursor.read_varint()? as usize;
    let mut label_path = Vec::with_capacity(path_len.min(cursor.plausible_items()));
    for _ in 0..path_len {
        label_path.push(cursor.read_u32()?);
    }
    let subtree_cid = cursor.read_cid()?;
    let own_cid = cursor.read_cid()?;
    Ok(ElementRecord {
        dewey: Dewey::from_components(components),
        label,
        level,
        label_path,
        subtree_cid,
        own_cid,
    })
}

fn read_exact_at(file: &mut File, offset: u64, len: usize) -> Result<Vec<u8>, PersistError> {
    use std::io::{Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    let mut bytes = vec![0u8; len];
    file.read_exact(&mut bytes)?;
    Ok(bytes)
}

fn decode_labels(bytes: &[u8], expected: u64) -> Result<Vec<String>, PersistError> {
    let mut pos = 0;
    let count = get_varint(bytes, &mut pos)?;
    if count != expected {
        return Err(PersistError::Corrupt {
            what: format!("label section holds {count} labels, header says {expected}"),
        });
    }
    let plausible = bytes.len().saturating_sub(pos) + 1;
    let mut labels = Vec::with_capacity((count as usize).min(plausible));
    for _ in 0..count {
        labels.push(crate::codec::get_str(bytes, &mut pos)?);
    }
    Ok(labels)
}

impl CorpusSource for IndexReader {
    /// # Panics
    /// Panics on I/O errors or index corruption detected *after* a
    /// successful [`IndexReader::open`] (this legacy accessor is
    /// infallible; the `try_` trait family — what
    /// `SearchEngine::execute` drives — surfaces the same failures as
    /// typed errors instead).
    fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
        self.try_keyword_deweys(keyword)
            .unwrap_or_else(|e| panic!("xks-persist: keyword lookup failed: {e}"))
    }

    fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
        self.cached_element(dewey)
            .unwrap_or_else(|e| panic!("xks-persist: element lookup failed: {e}"))
            .map(|rc| (*rc).clone())
    }

    fn element_label(&self, dewey: &Dewey) -> Option<u32> {
        self.cached_element(dewey)
            .unwrap_or_else(|e| panic!("xks-persist: element lookup failed: {e}"))
            .map(|rc| rc.label)
    }

    fn label_name(&self, label: u32) -> Option<String> {
        self.label(label).map(str::to_owned)
    }

    fn node_count(&self) -> usize {
        self.header.element_count as usize
    }

    fn keyword_stats(&self, keyword: &str) -> Option<KeywordStats> {
        // An I/O failure degrades to "no sealed stats" (legacy merge
        // path) rather than surfacing an error mid-planning.
        IndexReader::keyword_stats(self, keyword).ok()
    }

    // The fallible family routes every PersistError (I/O, truncation,
    // checksum, corruption) into a typed SourceError, keeping the
    // engine's execute path panic-free on any backend failure.

    fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
        // Inherent method (returns PersistError), not this trait fn.
        IndexReader::try_keyword_deweys(self, keyword).map_err(SourceError::new)
    }

    fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
        Ok(self
            .cached_element(dewey)
            .map_err(SourceError::new)?
            .map(|rc| (*rc).clone()))
    }

    fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
        Ok(self
            .cached_element(dewey)
            .map_err(SourceError::new)?
            .map(|rc| rc.label))
    }

    fn try_keyword_deweys_into(
        &self,
        keyword: &str,
        arena: &mut DeweyListBuf,
    ) -> Result<usize, SourceError> {
        // The cache-bypassing decode: sharded scatter workers sweep
        // many readers with one warm per-thread arena, so their
        // traffic never churns this reader's shared postings LRU.
        self.keyword_postings_into(keyword, arena)
            .map_err(SourceError::new)
    }
}

impl xks_obs::MetricSource for IndexReader {
    /// A live reader contributes its current [`IndexReader::stats`]
    /// reading (buffer pool, postings LRU, element-cache shards) to a
    /// snapshot — the collection path behind `xks stats`.
    fn collect_into(&self, prefix: &str, snap: &mut xks_obs::Snapshot) {
        self.stats().collect_into(prefix, snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::IndexWriter;
    use xks_store::shred;
    use xks_xmltree::fixtures::{publications, team};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xks-persist-reader-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn open_publications(name: &str) -> (IndexReader, PathBuf) {
        let path = temp_path(name);
        IndexWriter::new()
            .write_tree(&publications(), &path)
            .unwrap();
        (IndexReader::open(&path).unwrap(), path)
    }

    #[test]
    fn open_reads_only_header_and_labels() {
        let (reader, path) = open_publications("lazy-open.xks");
        let stats = reader.stats();
        assert_eq!(stats.pool.pages_read, 0, "no pool pages at open");
        assert!(stats.label_count > 5);
        assert_eq!(reader.label(0).unwrap(), "Publications");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn keyword_lookup_matches_store() {
        let (reader, path) = open_publications("kw.xks");
        let doc = shred(&publications());
        for kw in ["liu", "keyword", "xml", "title", "skyline"] {
            let got: Vec<String> = reader
                .try_keyword_deweys(kw)
                .unwrap()
                .iter()
                .map(ToString::to_string)
                .collect();
            let want: Vec<String> = doc
                .keyword_deweys(kw)
                .iter()
                .map(ToString::to_string)
                .collect();
            assert_eq!(got, want, "{kw}");
        }
        assert!(reader.try_keyword_deweys("unobtainium").unwrap().is_empty());
        assert!(reader.stats().pool.pages_read > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn element_lookup_matches_store() {
        let (reader, path) = open_publications("elem.xks");
        let doc = shred(&publications());
        for row in &doc.elements {
            let dewey: Dewey = row.dewey.parse().unwrap();
            let record = reader.try_element(&dewey).unwrap().expect("present");
            assert_eq!(record.label, row.label);
            assert_eq!(record.level, row.level);
            assert_eq!(record.label_path, row.label_path);
            assert_eq!(record.subtree_cid, row.content_feature);
        }
        assert!(reader
            .try_element(&"0.9.9".parse().unwrap())
            .unwrap()
            .is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_index_reads_identically_with_derived_stats() {
        // Write the same corpus at format v1 (no dictionary document
        // frequencies) and v2: every lookup must agree, and
        // `keyword_stats` on v1 must derive the df that v2 stores.
        let v1_path = temp_path("compat-v1.xks");
        let v2_path = temp_path("compat-v2.xks");
        IndexWriter::new()
            .with_format_version(1)
            .unwrap()
            .write_tree(&publications(), &v1_path)
            .unwrap();
        IndexWriter::new()
            .write_tree(&publications(), &v2_path)
            .unwrap();
        let v1 = IndexReader::open(&v1_path).unwrap();
        let v2 = IndexReader::open(&v2_path).unwrap();
        assert_eq!(v1.format_version(), 1);
        assert_eq!(v2.format_version(), 2);

        // v1 open stays as lazy as v2: header + labels only.
        assert_eq!(v1.stats().pool.pages_read, 0);

        let doc = shred(&publications());
        let mut keywords: Vec<&str> = doc.keyword_stats().map(|(kw, _)| kw).collect();
        keywords.push("unobtainium");
        for kw in keywords {
            assert_eq!(
                v1.try_keyword_deweys(kw).unwrap(),
                v2.try_keyword_deweys(kw).unwrap(),
                "{kw}: postings differ across format versions"
            );
            assert_eq!(
                v1.keyword_stats(kw).unwrap(),
                v2.keyword_stats(kw).unwrap(),
                "{kw}: derived v1 stats differ from stored v2 stats"
            );
        }
        for row in &doc.elements {
            let dewey: Dewey = row.dewey.parse().unwrap();
            assert_eq!(
                v1.try_element(&dewey).unwrap(),
                v2.try_element(&dewey).unwrap()
            );
        }
        v1.verify().unwrap();
        v2.verify().unwrap();

        // Out-of-range versions are rejected at the writer.
        assert!(IndexWriter::new().with_format_version(0).is_err());
        assert!(IndexWriter::new().with_format_version(3).is_err());
        std::fs::remove_file(&v1_path).unwrap();
        std::fs::remove_file(&v2_path).unwrap();
    }

    #[test]
    fn corpus_source_impl_serves_engine_facts() {
        let (reader, path) = open_publications("source.xks");
        let title = CorpusSource::element(&reader, &"0.2.0.1".parse().unwrap()).unwrap();
        assert_eq!(reader.label_name(title.label).as_deref(), Some("title"));
        assert_eq!(title.keyword_cid, Some(("keyword".into(), "xml".into())));
        assert_eq!(reader.node_count() as u64, reader.element_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn postings_cache_serves_repeats_without_page_reads() {
        let (reader, path) = open_publications("postings-cache.xks");
        let first = reader.try_keyword_deweys("keyword").unwrap();
        let after_first = reader.stats();
        assert_eq!(after_first.postings_cache_misses, 1);

        let second = reader.try_keyword_deweys("keyword").unwrap();
        let after_second = reader.stats();
        assert_eq!(first, second);
        // The repeat is served from the decoded-postings LRU: no new
        // pool traffic of any kind, one recorded cache hit.
        assert_eq!(after_second.pool.pages_read, after_first.pool.pages_read);
        assert_eq!(after_second.pool.cache_hits, after_first.pool.cache_hits);
        assert_eq!(after_second.postings_cache_hits, 1);
        assert!(after_second.postings_cache_entries >= 1);

        // Absent keywords are cached too (negative lookups).
        assert!(reader.try_keyword_deweys("unobtainium").unwrap().is_empty());
        assert!(reader.try_keyword_deweys("unobtainium").unwrap().is_empty());
        assert_eq!(reader.stats().postings_cache_hits, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn keyword_postings_into_bypasses_shared_cache() {
        let (reader, path) = open_publications("ctx-decode.xks");
        let mut arena = DeweyListBuf::new();
        for kw in ["keyword", "liu", "keyword", "unobtainium"] {
            let n = reader.keyword_postings_into(kw, &mut arena).unwrap();
            assert_eq!(n, arena.len());
            assert_eq!(
                arena.to_deweys(),
                reader.try_keyword_deweys(kw).unwrap(),
                "{kw}"
            );
        }
        // Per-context decodes never populate (or hit) the shared LRU —
        // the try_keyword_deweys calls above account for all of its
        // traffic (4 lookups: keyword, liu, keyword-again = 1 hit,
        // unobtainium).
        let stats = reader.stats();
        assert_eq!(stats.postings_cache_hits, 1);
        assert_eq!(stats.postings_cache_misses, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn postings_cache_evicts_least_recently_used() {
        let path = temp_path("postings-cache-evict.xks");
        IndexWriter::new()
            .write_tree(&publications(), &path)
            .unwrap();
        let reader = IndexReader::open_with(
            &path,
            ReaderOptions {
                pool_pages: 256,
                postings_cache_keywords: 2,
                ..ReaderOptions::default()
            },
        )
        .unwrap();
        for kw in ["liu", "keyword", "xml"] {
            reader.try_keyword_deweys(kw).unwrap();
        }
        let stats = reader.stats();
        assert_eq!(stats.postings_cache_entries, 2, "capacity respected");
        // "liu" was evicted by "xml"; re-reading it is a miss, while
        // "xml" (most recent) stays a hit.
        reader.try_keyword_deweys("xml").unwrap();
        assert_eq!(reader.stats().postings_cache_hits, 1);
        reader.try_keyword_deweys("liu").unwrap();
        assert_eq!(reader.stats().postings_cache_misses, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IndexReader>();
    }

    #[test]
    fn concurrent_lookups_share_one_reader() {
        let (reader, path) = open_publications("mt-reader.xks");
        let doc = shred(&publications());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reader = &reader;
                let doc = &doc;
                scope.spawn(move || {
                    for _ in 0..8 {
                        for kw in ["liu", "keyword", "xml", "title", "skyline"] {
                            assert_eq!(
                                reader.try_keyword_deweys(kw).unwrap(),
                                doc.keyword_deweys(kw),
                                "{kw}"
                            );
                        }
                        for row in doc.elements.iter().take(10) {
                            let dewey: Dewey = row.dewey.parse().unwrap();
                            let element = CorpusSource::element(reader, &dewey).expect("present");
                            assert_eq!(element.label, row.label);
                        }
                    }
                });
            }
        });
        let stats = reader.stats();
        assert!(stats.postings_cache_hits > 0, "repeats must hit the cache");
        assert!(stats.element_cache_hits > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_passes_on_clean_file() {
        let path = temp_path("verify.xks");
        IndexWriter::new().write_tree(&team(), &path).unwrap();
        let reader = IndexReader::open(&path).unwrap();
        reader.verify().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn small_pool_still_answers_with_evictions() {
        let path = temp_path("small-pool.xks");
        IndexWriter::with_page_size(512)
            .unwrap()
            .write_tree(&publications(), &path)
            .unwrap();
        let reader = IndexReader::open_with(
            &path,
            ReaderOptions {
                pool_pages: 1,
                postings_cache_keywords: 0,
                ..ReaderOptions::default()
            },
        )
        .unwrap();
        let doc = shred(&publications());
        for kw in ["liu", "keyword", "xml", "liu"] {
            let got = reader.try_keyword_deweys(kw).unwrap();
            assert_eq!(got, doc.keyword_deweys(kw), "{kw}");
        }
        // Capacity is clamped to 8 pages; with 512-byte pages the three
        // distinct lookups still force traffic through the tiny pool.
        assert!(reader.stats().pool.pages_read > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
