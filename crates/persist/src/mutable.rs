//! `MutableCorpus`: a WAL-backed, compactable corpus directory.
//!
//! This is the durable half of the mutable-corpus subsystem (the query
//! semantics — delta, tombstones, anchor-pass filtering — live in
//! `validrtf`'s [`MutableSource`]). A corpus is one directory:
//!
//! ```text
//! corpus.xksm              sealed base: shard manifest   (absent when fresh)
//! corpus-g<G>-shard<NNN>.xks  sealed base: shard files, generation G
//! corpus.wal               write-ahead log of every op since the seal
//! ```
//!
//! **Write path.** An insert or delete is parsed/validated, framed into
//! the WAL, fsynced, and only then applied to the in-memory delta — the
//! operation is acknowledged exactly when it is durable. **Recovery**
//! re-opens the base, repairs a torn WAL tail, and replays the clean
//! record prefix into a fresh delta. **Compaction** seals base + delta
//! into a new generation of `.xks` shards (each fsynced), swaps the
//! manifest atomically (temp file + rename, manifest written *last*),
//! and resets the WAL bound to the new manifest's CRC.
//!
//! The manifest-CRC binding closes the one crash window rename-ordering
//! alone leaves open: a crash *between* the manifest swap and the WAL
//! reset leaves a new manifest next to an old WAL whose records are all
//! already sealed inside it. The WAL header stores a fingerprint of the
//! manifest it was opened against, so recovery detects the mismatch and
//! discards the stale log instead of replaying documents twice. Every
//! crash point therefore recovers to exactly the pre-op or the post-op
//! corpus — the invariant `tests/crash_matrix.rs` enumerates and
//! `docs/DURABILITY.md` walks through.
//!
//! All write/fsync/rename boundaries go through an [`Injector`]
//! ([`crate::fault`]), which is how the crash matrix drives them.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use validrtf::mutable::{MutableSource, MutationError};
use validrtf::source::CorpusSource;
use xks_obs::{global, Counter, Histogram};
use xks_store::{partition, ElementRow, ShreddedDoc, ValueRow, WordSource};

use crate::codec::crc32;
use crate::error::PersistError;
use crate::fault::{fault_rename, fault_sync_dir, FaultFile, Injector};
use crate::shard::{ShardEntry, ShardManifest, ShardedCorpus};
use crate::wal::{Wal, WalRecord, NO_MANIFEST_CRC};
use crate::writer::IndexWriter;

/// File stem shared by everything in a corpus directory.
pub const CORPUS_STEM: &str = "corpus";

/// The fingerprint of a manifest's bytes, stored in the WAL header to
/// detect a log left behind by an interrupted compaction.
///
/// This must NOT be the CRC-32 of the whole file: the manifest ends
/// with its own CRC-32 trailer, and a CRC over data-plus-trailer is the
/// fixed residue `0x2144_DF1C` for *every* valid manifest — a whole-file
/// CRC would match any manifest and the staleness check would be
/// vacuous (the crash matrix caught exactly this). Hashing the content
/// region, excluding the trailer, restores a content-dependent value.
fn manifest_fingerprint(manifest_bytes: &[u8]) -> u32 {
    let content_len = manifest_bytes.len().saturating_sub(4);
    crc32(&manifest_bytes[..content_len])
}

/// Everything that can go wrong operating a mutable corpus.
#[derive(Debug)]
pub enum MutableError {
    /// The durable layer failed: I/O, torn files, corruption.
    Persist(PersistError),
    /// The logical mutation was invalid (bad XML, unknown ordinal).
    Mutation(MutationError),
}

impl std::fmt::Display for MutableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutableError::Persist(e) => write!(f, "{e}"),
            MutableError::Mutation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MutableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutableError::Persist(e) => Some(e),
            MutableError::Mutation(e) => Some(e),
        }
    }
}

impl From<PersistError> for MutableError {
    fn from(e: PersistError) -> Self {
        MutableError::Persist(e)
    }
}

impl From<MutationError> for MutableError {
    fn from(e: MutationError) -> Self {
        MutableError::Mutation(e)
    }
}

impl From<std::io::Error> for MutableError {
    fn from(e: std::io::Error) -> Self {
        MutableError::Persist(e.into())
    }
}

/// Registers every durability metric with the global registry so a
/// snapshot of a healthy process exports explicit zeros — "no WAL
/// appends" and "not instrumented" must look different. Idempotent;
/// called by every [`MutableCorpus`] constructor and by `xks stats`.
pub fn preregister_durability_metrics() {
    let g = global();
    g.counter("wal.appends");
    g.counter("wal.fsyncs");
    g.counter("recovery.records_replayed");
    g.counter("recovery.tail_truncated");
    g.counter("recovery.stale_wal_discarded");
    g.counter("compaction.runs");
    g.counter("compaction.docs_sealed");
    g.histogram("compaction.duration_ns");
}

struct CompactionMetrics {
    runs: Counter,
    docs_sealed: Counter,
    duration_ns: Histogram,
    stale_discarded: Counter,
}

fn compaction_metrics() -> &'static CompactionMetrics {
    use std::sync::OnceLock;
    static CELL: OnceLock<CompactionMetrics> = OnceLock::new();
    CELL.get_or_init(|| CompactionMetrics {
        runs: global().counter("compaction.runs"),
        docs_sealed: global().counter("compaction.docs_sealed"),
        duration_ns: global().histogram("compaction.duration_ns"),
        stale_discarded: global().counter("recovery.stale_wal_discarded"),
    })
}

/// What one compaction run sealed.
#[derive(Debug, Clone)]
pub struct CompactionSummary {
    /// Shard-file generation this run wrote.
    pub generation: u32,
    /// Shards in the new base.
    pub shard_count: usize,
    /// Live top-level documents sealed into it.
    pub sealed_docs: u64,
    /// Element rows across the new shards.
    pub total_elements: u64,
    /// Where the manifest lives.
    pub manifest_path: PathBuf,
}

/// An open mutable corpus — see the module docs for the write path,
/// recovery, and compaction.
#[derive(Debug)]
pub struct MutableCorpus {
    dir: PathBuf,
    injector: Injector,
    source: Arc<MutableSource>,
    base: Option<Arc<ShardedCorpus>>,
    wal: Wal,
    /// Set when a compaction failed after its point of no return (the
    /// manifest rename): the on-disk corpus is already post-op while
    /// this handle still serves pre-op, so further writes through it
    /// could be silently discarded by the next recovery. Reopen.
    poisoned: bool,
}

impl MutableCorpus {
    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join(format!("{CORPUS_STEM}.xksm"))
    }

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join(format!("{CORPUS_STEM}.wal"))
    }

    /// True when `dir` already holds a corpus (a WAL or a manifest) —
    /// the open-vs-create dispatch the CLI uses.
    #[must_use]
    pub fn exists(dir: &Path) -> bool {
        Self::wal_path(dir).exists() || Self::manifest_path(dir).exists()
    }

    /// Creates a fresh corpus in `dir` (created if missing) whose root
    /// element is `<root_label/>`. Fails if a corpus already lives
    /// there.
    pub fn create(dir: &Path, root_label: &str) -> Result<Self, MutableError> {
        Self::create_with(dir, root_label, Injector::none())
    }

    /// [`MutableCorpus::create`] with an explicit fault [`Injector`].
    pub fn create_with(
        dir: &Path,
        root_label: &str,
        injector: Injector,
    ) -> Result<Self, MutableError> {
        preregister_durability_metrics();
        std::fs::create_dir_all(dir)?;
        let wal_path = Self::wal_path(dir);
        if wal_path.exists() || Self::manifest_path(dir).exists() {
            return Err(PersistError::Corrupt {
                what: format!("a corpus already exists in {}", dir.display()),
            }
            .into());
        }
        let source = Arc::new(MutableSource::create(root_label)?);
        let mut wal = Wal::create(&wal_path, NO_MANIFEST_CRC, injector.clone())?;
        wal.append(&WalRecord::Init {
            root_label: root_label.to_owned(),
        })?;
        Ok(MutableCorpus {
            dir: dir.to_owned(),
            injector,
            source,
            base: None,
            wal,
            poisoned: false,
        })
    }

    /// Opens (and recovers) the corpus in `dir`: open the sealed base
    /// if a manifest exists, repair the WAL's torn tail, discard the
    /// WAL entirely when it predates the manifest, replay the rest into
    /// a fresh delta, and sweep shard files no manifest references.
    pub fn open(dir: &Path) -> Result<Self, MutableError> {
        Self::open_with(dir, Injector::none())
    }

    /// [`MutableCorpus::open`] with an explicit fault [`Injector`].
    pub fn open_with(dir: &Path, injector: Injector) -> Result<Self, MutableError> {
        preregister_durability_metrics();
        let wal_path = Self::wal_path(dir);
        let manifest_path = Self::manifest_path(dir);
        let (mut wal, mut scan) = Wal::open(&wal_path, injector.clone())?;

        let base = if manifest_path.exists() {
            let manifest_bytes = std::fs::read(&manifest_path)?;
            let manifest_crc = manifest_fingerprint(&manifest_bytes);
            if scan.base_crc != manifest_crc {
                // The WAL predates the manifest: a crash hit between a
                // compaction's manifest swap and its WAL reset. Every
                // record is already sealed in the shards — replaying
                // would double-apply, so the stale log is discarded.
                drop(wal);
                wal = Wal::reset(&wal_path, manifest_crc, injector.clone())?;
                scan.records.clear();
                compaction_metrics().stale_discarded.inc();
            }
            Some(Arc::new(ShardedCorpus::open(&manifest_path)?))
        } else {
            None
        };

        let mut records = scan.records.into_iter();
        let source = match &base {
            Some(base) => {
                let labels = base.readers()[0].labels().to_vec();
                // Next ordinal = one past the highest ordinal the base
                // still holds. `first_doc + doc_count` would be wrong:
                // doc_count counts *surviving* documents, so a hole
                // (deleted ordinal) compacted away in the middle would
                // shrink it below the real maximum and a reopened
                // corpus would re-issue a live ordinal. Element rows
                // are document-ordered, so the last row of the last
                // shard belongs to the highest ordinal (a one-component
                // dewey there means a root-only corpus). Trailing
                // tombstoned ordinals leave no trace after compaction
                // and may be reused — middle holes persist.
                let reader = base.readers().last().expect("≥1 shard");
                let last_row = reader.element_record(reader.element_count() - 1)?;
                let next_doc = match last_row.dewey.components() {
                    [_, ordinal, ..] => ordinal + 1,
                    _ => 0,
                };
                Arc::new(MutableSource::from_base(
                    Arc::clone(base) as Arc<dyn CorpusSource>,
                    labels,
                    next_doc,
                ))
            }
            None => match records.next() {
                Some(WalRecord::Init { root_label }) => {
                    Arc::new(MutableSource::create(&root_label)?)
                }
                Some(other) => {
                    return Err(PersistError::Corrupt {
                        what: format!(
                            "WAL of an unsealed corpus must start with Init, found {other:?}"
                        ),
                    }
                    .into())
                }
                None => {
                    return Err(PersistError::Corrupt {
                        what: "corpus creation never completed (empty WAL, no manifest)".to_owned(),
                    }
                    .into())
                }
            },
        };
        for record in records {
            match record {
                WalRecord::Init { .. } => {
                    return Err(PersistError::Corrupt {
                        what: "unexpected second Init record in WAL".to_owned(),
                    }
                    .into())
                }
                WalRecord::Insert { ordinal, xml } => source.apply_insert(ordinal, &xml)?,
                WalRecord::Delete { ordinal } => source.delete(ordinal)?,
            }
        }

        let referenced: HashSet<String> = base
            .as_ref()
            .map(|b| {
                b.manifest()
                    .shards
                    .iter()
                    .map(|s| s.file_name.clone())
                    .collect()
            })
            .unwrap_or_default();
        sweep_unreferenced(dir, &referenced);

        Ok(MutableCorpus {
            dir: dir.to_owned(),
            injector,
            source,
            base,
            wal,
            poisoned: false,
        })
    }

    /// The query-side source — share it with a
    /// [`validrtf::engine::SearchEngine`] via `from_source`.
    #[must_use]
    pub fn source(&self) -> Arc<MutableSource> {
        Arc::clone(&self.source)
    }

    /// The sealed base, when one exists.
    #[must_use]
    pub fn base(&self) -> Option<&Arc<ShardedCorpus>> {
        self.base.as_ref()
    }

    /// The corpus directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes of clean, durable WAL.
    #[must_use]
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    fn ensure_usable(&self) -> Result<(), MutableError> {
        if self.poisoned {
            return Err(PersistError::Corrupt {
                what: "corpus handle poisoned by a failed compaction — reopen to recover"
                    .to_owned(),
            }
            .into());
        }
        Ok(())
    }

    /// Inserts one document (XML text), returning its ordinal. The
    /// document is durable in the WAL before this returns.
    pub fn insert_xml(&mut self, xml: &str) -> Result<u32, MutableError> {
        self.ensure_usable()?;
        // Validate before logging: garbage must never reach the WAL.
        xks_xmltree::parse(xml).map_err(MutationError::Xml)?;
        let ordinal = self.source.next_ordinal();
        self.wal.append(&WalRecord::Insert {
            ordinal,
            xml: xml.to_owned(),
        })?;
        self.source.apply_insert(ordinal, xml)?;
        Ok(ordinal)
    }

    /// Deletes document `ordinal`. The tombstone is durable in the WAL
    /// before this returns.
    pub fn delete(&mut self, ordinal: u32) -> Result<(), MutableError> {
        self.ensure_usable()?;
        if !self.source.exists(ordinal) {
            return Err(MutationError::UnknownDocument(ordinal).into());
        }
        self.wal.append(&WalRecord::Delete { ordinal })?;
        self.source.delete(ordinal)?;
        Ok(())
    }

    /// Next shard generation: one past the highest generation the
    /// current manifest references (`-g<N>-` in a shard file name;
    /// generation-less names from `build-index` count as 0).
    fn next_generation(&self) -> u32 {
        self.base
            .as_ref()
            .and_then(|b| {
                b.manifest()
                    .shards
                    .iter()
                    .map(|s| parse_generation(&s.file_name))
                    .max()
            })
            .map_or(1, |g| g + 1)
    }

    /// Seals base + live delta into a new generation of `.xks` shards,
    /// swaps the manifest atomically, and resets the WAL. On success
    /// the delta and tombstones are empty and the WAL holds no records;
    /// ordinals are **not** renumbered (deleted documents stay holes).
    ///
    /// Failure before the manifest rename leaves the corpus untouched
    /// (new-generation files are cleaned up or swept at the next open).
    /// Failure after it poisons this handle — the directory is already
    /// post-op; reopen to continue.
    pub fn compact(&mut self, shards: usize) -> Result<CompactionSummary, MutableError> {
        self.ensure_usable()?;
        let started = Instant::now();
        let doc = self.merged_tables()?;
        let generation = self.next_generation();
        let parts = partition(&doc, shards.max(1));
        let manifest_path = Self::manifest_path(&self.dir);
        let writer = IndexWriter::new();

        // Phase 1: write + fsync every new shard. These files are not
        // referenced by any manifest yet, so any failure here (or a
        // crash) leaves the corpus untouched.
        let mut entries = Vec::with_capacity(parts.len());
        let mut written: Vec<PathBuf> = Vec::new();
        let mut phase1 = || -> Result<(), MutableError> {
            for (i, part) in parts.iter().enumerate() {
                let file_name = format!("{CORPUS_STEM}-g{generation}-shard{i:03}.xks");
                let path = self.dir.join(&file_name);
                self.injector
                    .check(&format!("compact.shard{i}.write"))
                    .map_err(PersistError::from)?;
                let summary = writer.write(&part.doc, &path)?;
                written.push(path.clone());
                self.injector
                    .check(&format!("compact.shard{i}.fsync"))
                    .map_err(PersistError::from)?;
                std::fs::File::open(&path)?.sync_data()?;
                entries.push(ShardEntry {
                    file_name,
                    first_doc: part.first_doc,
                    doc_count: part.doc_count,
                    element_count: summary.element_count,
                    keyword_count: summary.keyword_count,
                    file_len: summary.file_len,
                    postings_total: part.doc.keyword_stats().map(|(_, n)| n as u64).sum(),
                    keyword_filter: Some(validrtf::plan::KeywordFilter::from_keywords(
                        part.doc.keyword_stats().map(|(kw, _)| kw),
                    )),
                });
            }
            Ok(())
        };
        let manifest_bytes = match phase1() {
            Ok(()) => ShardManifest {
                total_elements: doc.element_count() as u64,
                total_keywords: doc.vocabulary_size() as u64,
                label_count: doc.labels.len() as u64,
                shards: entries,
            }
            .encode(),
            Err(e) => {
                remove_best_effort(&written);
                return Err(e);
            }
        };

        // Phase 2: manifest to a temp file, fsynced. Still invisible.
        let tmp = manifest_path.with_file_name(format!("{CORPUS_STEM}.xksm.tmp"));
        let phase2 = (|| -> Result<(), MutableError> {
            let mut file = FaultFile::create(&tmp, self.injector.clone(), "compact.manifest")?;
            file.write_all(&manifest_bytes)?;
            file.sync_data()?;
            Ok(())
        })();
        if let Err(e) = phase2 {
            remove_best_effort(&written);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }

        // Phase 3: the commit point. `fault_rename` consults the
        // injector *before* renaming and `rename(2)` is atomic, so a
        // failure here means the swap did not happen.
        if let Err(e) = fault_rename(
            &self.injector,
            "compact.manifest.rename",
            &tmp,
            &manifest_path,
        ) {
            remove_best_effort(&written);
            let _ = std::fs::remove_file(&tmp);
            return Err(PersistError::from(e).into());
        }

        // Phase 4: past the point of no return — the directory is
        // post-op. Any failure now poisons the handle (recovery at the
        // next open discards the now-stale WAL and lands post-op).
        let phase4 = (|| -> Result<(Wal, Arc<ShardedCorpus>), MutableError> {
            fault_sync_dir(&self.injector, "compact.manifest.dirsync", &manifest_path)
                .map_err(PersistError::from)?;
            let wal = Wal::reset(
                &Self::wal_path(&self.dir),
                manifest_fingerprint(&manifest_bytes),
                self.injector.clone(),
            )?;
            let base = Arc::new(ShardedCorpus::open(&manifest_path)?);
            Ok((wal, base))
        })();
        let (wal, base) = match phase4 {
            Ok(pair) => pair,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };

        let old_names: Vec<PathBuf> = self
            .base
            .as_ref()
            .map(|b| {
                b.manifest()
                    .shards
                    .iter()
                    .map(|s| self.dir.join(&s.file_name))
                    .collect()
            })
            .unwrap_or_default();
        let labels = base.readers()[0].labels().to_vec();
        self.source
            .swap_base(Arc::clone(&base) as Arc<dyn CorpusSource>, labels);
        self.base = Some(Arc::clone(&base));
        self.wal = wal;
        remove_best_effort(&old_names);

        let sealed_docs: u64 = base.manifest().shards.iter().map(|s| s.doc_count).sum();
        let metrics = compaction_metrics();
        metrics.runs.inc();
        metrics.docs_sealed.add(sealed_docs);
        metrics
            .duration_ns
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Ok(CompactionSummary {
            generation,
            shard_count: base.shard_count(),
            sealed_docs,
            total_elements: base.manifest().total_elements,
            manifest_path,
        })
    }

    /// Materializes the full live corpus (base minus tombstones, plus
    /// live delta) as one set of shredded tables — compaction's input.
    fn merged_tables(&self) -> Result<ShreddedDoc, MutableError> {
        let labels = self.source.labels_snapshot();
        let tombstones: BTreeSet<u32> = self.source.tombstones().into_iter().collect();
        let mut elements = Vec::new();
        let mut values = Vec::new();
        if let Some(base) = &self.base {
            export_base_rows(base, &tombstones, &mut elements, &mut values)?;
        }
        let (delta_elements, delta_values) = self.source.export_delta_rows();
        elements.extend(delta_elements);
        values.extend(delta_values);
        let mut doc = ShreddedDoc::from_tables(labels, elements, values);
        doc.rebuild_indexes();
        Ok(doc)
    }
}

impl xks_obs::MetricSource for MutableCorpus {
    /// Contributes the mutable-layer gauges plus (under
    /// `<prefix>base.`) the full sealed-base shard counters.
    fn collect_into(&self, prefix: &str, snap: &mut xks_obs::Snapshot) {
        snap.gauge(format!("{prefix}wal_len"), self.wal.len());
        snap.gauge(
            format!("{prefix}delta_docs"),
            self.source.delta_doc_count() as u64,
        );
        snap.gauge(
            format!("{prefix}tombstones"),
            self.source.tombstone_count() as u64,
        );
        snap.gauge(
            format!("{prefix}next_ordinal"),
            u64::from(self.source.next_ordinal()),
        );
        if let Some(base) = &self.base {
            base.collect_into(&format!("{prefix}base."), snap);
        }
    }
}

/// Re-derives a sealed base's element and value rows by enumerating its
/// readers, dropping every row inside a tombstoned document.
///
/// Value rows are synthesized from the inverted index — one `(keyword,
/// dewey)` row per posting, [`WordSource::Text`] as the provenance (the
/// index does not store word provenance; nothing downstream reads it).
/// This reproduces posting lists and own-content features exactly:
/// postings are the deduplicated value rows, and a node's own feature
/// is the `(min, max)` of its distinct keywords either way.
fn export_base_rows(
    base: &ShardedCorpus,
    tombstones: &BTreeSet<u32>,
    elements: &mut Vec<ElementRow>,
    values: &mut Vec<ValueRow>,
) -> Result<(), PersistError> {
    let dead = |components: &[u32]| components.len() >= 2 && tombstones.contains(&components[1]);
    for reader in base.readers() {
        let mut label_of: HashMap<String, u32> = HashMap::new();
        for idx in 0..reader.element_count() {
            let rec = reader.element_record(idx)?;
            if dead(rec.dewey.components()) {
                continue;
            }
            let dewey = rec.dewey.to_string();
            label_of.insert(dewey.clone(), rec.label);
            elements.push(ElementRow {
                label: rec.label,
                dewey,
                level: rec.level,
                label_path: rec.label_path,
                content_feature: rec.subtree_cid,
            });
        }
        for idx in 0..reader.keyword_count() {
            let (keyword, deweys) = reader.keyword_at(idx)?;
            for d in deweys {
                if dead(d.components()) {
                    continue;
                }
                let dewey = d.to_string();
                let label = label_of.get(&dewey).copied().unwrap_or(0);
                values.push(ValueRow {
                    label,
                    dewey,
                    source: WordSource::Text,
                    keyword: keyword.clone(),
                });
            }
        }
    }
    Ok(())
}

/// `corpus-g3-shard000.xks` → 3; generation-less names → 0.
fn parse_generation(name: &str) -> u32 {
    name.find("-g")
        .and_then(|i| {
            let rest = &name[i + 2..];
            rest[..rest.find('-')?].parse().ok()
        })
        .unwrap_or(0)
}

/// Removes every shard-pattern or temp file in `dir` that `referenced`
/// does not name — the open-time sweep that collects debris from
/// crashed compactions. Best-effort: a sweep failure never blocks an
/// open.
fn sweep_unreferenced(dir: &Path, referenced: &HashSet<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let stray_shard = name.starts_with(&format!("{CORPUS_STEM}-"))
            && name.contains("-shard")
            && name.ends_with(".xks")
            && !referenced.contains(&name);
        let stray_tmp = name.starts_with(&format!("{CORPUS_STEM}.")) && name.ends_with(".tmp");
        if stray_shard || stray_tmp {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn remove_best_effort(paths: &[PathBuf]) {
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use validrtf::engine::SearchEngine;
    use validrtf::SearchRequest;

    fn temp_corpus(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xks-mutable-test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn hits(source: Arc<MutableSource>, query: &str) -> usize {
        let engine = SearchEngine::from_source(source as Arc<dyn CorpusSource>);
        engine
            .execute(&SearchRequest::parse(query).unwrap())
            .unwrap()
            .hits
            .len()
    }

    #[test]
    fn create_insert_reopen_replays() {
        let dir = temp_corpus("replay");
        {
            let mut corpus = MutableCorpus::create(&dir, "pubs").unwrap();
            corpus
                .insert_xml("<paper><title>xml keyword search</title></paper>")
                .unwrap();
            corpus
                .insert_xml("<paper><title>skyline keyword</title></paper>")
                .unwrap();
            corpus.delete(1).unwrap();
            assert_eq!(hits(corpus.source(), "keyword"), 1);
        }
        let corpus = MutableCorpus::open(&dir).unwrap();
        assert_eq!(corpus.source().next_ordinal(), 2);
        assert_eq!(corpus.source().tombstone_count(), 1);
        assert_eq!(hits(corpus.source(), "keyword"), 1);
        assert_eq!(hits(corpus.source(), "skyline"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_seals_delta_and_resets_wal() {
        let dir = temp_corpus("compact");
        let mut corpus = MutableCorpus::create(&dir, "pubs").unwrap();
        for i in 0..6 {
            corpus
                .insert_xml(&format!(
                    "<paper><title>paper number{i} xml</title></paper>"
                ))
                .unwrap();
        }
        corpus.delete(2).unwrap();
        let wal_before = corpus.wal_len();
        let summary = corpus.compact(2).unwrap();
        assert_eq!(summary.generation, 1);
        assert_eq!(summary.shard_count, 2);
        assert_eq!(summary.sealed_docs, 5, "the tombstoned doc is gone");
        assert!(corpus.wal_len() < wal_before, "WAL reset to empty");
        assert_eq!(corpus.source().delta_doc_count(), 0);
        assert_eq!(corpus.source().tombstone_count(), 0);
        // Query results survive the seal; the hole stays a hole.
        assert_eq!(hits(corpus.source(), "xml"), 5);
        assert_eq!(hits(corpus.source(), "number2"), 0);
        assert_eq!(corpus.source().next_ordinal(), 6);
        // Mutations continue against the sealed base.
        let ord = corpus
            .insert_xml("<paper><title>post compaction xml</title></paper>")
            .unwrap();
        assert_eq!(ord, 6);
        assert_eq!(hits(corpus.source(), "xml"), 6);
        // A second compaction bumps the generation and replaces files.
        let summary2 = corpus.compact(2).unwrap();
        assert_eq!(summary2.generation, 2);
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().all(|n| !n.contains("-g1-")), "{names:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_compact_uses_the_base() {
        let dir = temp_corpus("reopen-base");
        {
            let mut corpus = MutableCorpus::create(&dir, "pubs").unwrap();
            corpus
                .insert_xml("<paper><title>xml keyword</title></paper>")
                .unwrap();
            corpus.compact(1).unwrap();
            corpus
                .insert_xml("<paper><title>delta keyword</title></paper>")
                .unwrap();
        }
        let corpus = MutableCorpus::open(&dir).unwrap();
        assert!(corpus.base().is_some());
        assert_eq!(
            corpus.source().delta_doc_count(),
            1,
            "only the delta replays"
        );
        assert_eq!(hits(corpus.source(), "keyword"), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_compacted_middle_hole_never_reissues_a_live_ordinal() {
        let dir = temp_corpus("middle-hole");
        {
            let mut corpus = MutableCorpus::create(&dir, "pubs").unwrap();
            for i in 0..3 {
                corpus
                    .insert_xml(&format!("<paper><title>doc number{i}</title></paper>"))
                    .unwrap();
            }
            corpus.delete(1).unwrap();
            corpus.compact(1).unwrap(); // base holds ordinals {0, 2}
        }
        let mut corpus = MutableCorpus::open(&dir).unwrap();
        assert_eq!(
            corpus.source().next_ordinal(),
            3,
            "first_doc + doc_count would say 2, colliding with the live doc 2"
        );
        let ord = corpus
            .insert_xml("<paper><title>doc number3</title></paper>")
            .unwrap();
        assert_eq!(ord, 3);
        assert_eq!(hits(corpus.source(), "number2"), 1, "doc 2 untouched");
        assert_eq!(hits(corpus.source(), "number3"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_from_interrupted_compaction_is_discarded() {
        // Reconstruct the exact crash window: manifest swapped, WAL not
        // yet reset. The old log's records are all sealed in the new
        // base, so recovery must discard it rather than replay.
        let dir = temp_corpus("stale-wal");
        let mut corpus = MutableCorpus::create(&dir, "pubs").unwrap();
        for i in 0..3 {
            corpus
                .insert_xml(&format!("<paper><title>doc number{i}</title></paper>"))
                .unwrap();
        }
        let stale_wal = std::fs::read(MutableCorpus::wal_path(&dir)).unwrap();
        corpus.compact(1).unwrap();
        drop(corpus);
        // Crash simulation: the pre-compaction WAL reappears next to
        // the new manifest.
        std::fs::write(MutableCorpus::wal_path(&dir), &stale_wal).unwrap();

        let corpus = MutableCorpus::open(&dir).unwrap();
        assert_eq!(corpus.source().delta_doc_count(), 0, "stale log replayed");
        assert_eq!(corpus.source().next_ordinal(), 3);
        assert_eq!(hits(corpus.source(), "number1"), 1, "each doc exactly once");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_fingerprint_sees_through_the_crc_residue() {
        // A whole-file CRC of any self-checksummed manifest collapses
        // to the fixed residue 0x2144_DF1C — useless as a fingerprint.
        let a = ShardManifest {
            total_elements: 10,
            total_keywords: 4,
            label_count: 2,
            shards: vec![],
        }
        .encode();
        let b = ShardManifest {
            total_elements: 11,
            total_keywords: 4,
            label_count: 2,
            shards: vec![],
        }
        .encode();
        assert_eq!(crc32(&a), crc32(&b), "whole-file CRC cannot distinguish");
        assert_eq!(crc32(&a), 0x2144_DF1C);
        assert_ne!(manifest_fingerprint(&a), manifest_fingerprint(&b));
    }

    #[test]
    fn double_create_is_rejected() {
        let dir = temp_corpus("double-create");
        let _first = MutableCorpus::create(&dir, "pubs").unwrap();
        assert!(matches!(
            MutableCorpus::create(&dir, "pubs"),
            Err(MutableError::Persist(PersistError::Corrupt { .. }))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_parsing() {
        assert_eq!(parse_generation("corpus-g3-shard000.xks"), 3);
        assert_eq!(parse_generation("corpus-g12-shard001.xks"), 12);
        assert_eq!(parse_generation("corpus-shard000.xks"), 0);
    }
}
