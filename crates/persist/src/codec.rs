//! Byte-level codecs: LEB128 varints, length-prefixed strings, optional
//! content features, CRC-32, and prefix-delta Dewey posting lists.
//!
//! All multi-byte fixed-width integers in the format are little-endian;
//! everything variable-length goes through the varint below.

use xks_xmltree::{Dewey, DeweyListBuf};

use crate::error::PersistError;

// ---------------------------------------------------------------- varint

/// Appends `value` as an LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes an LEB128 varint from `bytes[*pos..]`, advancing `pos`.
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(PersistError::Truncated {
                what: "varint ran past the end of its section",
            });
        };
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(PersistError::Corrupt {
                what: "varint overflows u64".to_owned(),
            });
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(PersistError::Corrupt {
                what: "varint longer than 10 bytes".to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------- strings

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decodes a length-prefixed UTF-8 string.
pub fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, PersistError> {
    let len = get_varint(bytes, pos)? as usize;
    let end =
        pos.checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or(PersistError::Truncated {
                what: "string ran past the end of its section",
            })?;
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| PersistError::Corrupt {
        what: "string is not valid UTF-8".to_owned(),
    })?;
    *pos = end;
    Ok(s.to_owned())
}

// --------------------------------------------------- optional (min, max)

/// Appends an optional `(min, max)` content feature (tag byte + pair).
pub fn put_cid(out: &mut Vec<u8>, cid: &Option<(String, String)>) {
    match cid {
        None => out.push(0),
        Some((min, max)) => {
            out.push(1);
            put_str(out, min);
            put_str(out, max);
        }
    }
}

/// Decodes an optional `(min, max)` content feature.
pub fn get_cid(bytes: &[u8], pos: &mut usize) -> Result<Option<(String, String)>, PersistError> {
    let Some(&tag) = bytes.get(*pos) else {
        return Err(PersistError::Truncated {
            what: "content-feature tag missing",
        });
    };
    *pos += 1;
    match tag {
        0 => Ok(None),
        1 => {
            let min = get_str(bytes, pos)?;
            let max = get_str(bytes, pos)?;
            Ok(Some((min, max)))
        }
        other => Err(PersistError::Corrupt {
            what: format!("content-feature tag {other} (expected 0 or 1)"),
        }),
    }
}

// ------------------------------------------------------------------ crc32

/// CRC-32 (IEEE 802.3, the zlib polynomial), one-shot.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC-32 for streaming verification.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = CRC_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

// ------------------------------------------------- Dewey posting lists

/// Appends a sorted Dewey posting list with prefix-delta compression:
/// the first code is stored whole; every later code stores how many
/// leading components it shares with its predecessor plus the new tail.
/// Document-order sorting makes neighbouring codes share long prefixes,
/// so postings shrink to a few bytes per node.
pub fn put_postings(out: &mut Vec<u8>, deweys: &[Dewey]) {
    put_varint(out, deweys.len() as u64);
    let mut prev: &[u32] = &[];
    for d in deweys {
        let comps = d.components();
        let shared = prev
            .iter()
            .zip(comps.iter())
            .take_while(|(a, b)| a == b)
            .count();
        // Writers dedup, so after the first entry every tail is
        // non-empty and diverges upward — which is exactly what
        // `get_postings` enforces on the way back in.
        put_varint(out, shared as u64);
        put_varint(out, (comps.len() - shared) as u64);
        for &c in &comps[shared..] {
            put_varint(out, u64::from(c));
        }
        prev = comps;
    }
}

/// Decodes a prefix-delta posting list into a flat [`DeweyListBuf`]
/// arena, enforcing the writer's contract that codes are **strictly
/// ascending in document order** (deduplicated). Postings live in a
/// lazily-read section that is not checksummed per lookup, so this
/// ordering check is what turns a bit flip that survives varint framing
/// into a typed error instead of a silently reordered result list.
///
/// The arena is cleared first and rebuilt in place: the shared prefix
/// of each code is copied from its predecessor *within the arena*
/// (`copy_prefix_of_last`), so a warm buffer decodes a whole run with
/// zero heap allocations however many codes it holds.
pub fn get_postings_into(
    bytes: &[u8],
    pos: &mut usize,
    out: &mut DeweyListBuf,
) -> Result<(), PersistError> {
    out.clear();
    let count = get_varint(bytes, pos)? as usize;
    for i in 0..count {
        let shared = get_varint(bytes, pos)? as usize;
        let extra = get_varint(bytes, pos)? as usize;
        let prev = out.last().unwrap_or(&[]);
        if shared > prev.len() {
            return Err(PersistError::Corrupt {
                what: format!(
                    "posting shares {shared} components but predecessor has {}",
                    prev.len()
                ),
            });
        }
        // With a non-empty predecessor, an empty tail means the code is
        // a duplicate (shared == len) or a prefix (< previous) — both
        // violate strict document order.
        if i > 0 && extra == 0 {
            return Err(PersistError::Corrupt {
                what: "postings not strictly ascending (duplicate or prefix)".to_owned(),
            });
        }
        // Where the new code diverges, its component must sort after
        // the predecessor's.
        let boundary = prev.get(shared).copied();
        out.begin();
        out.copy_prefix_of_last(shared);
        for j in 0..extra {
            let comp = get_varint(bytes, pos)?;
            let comp = u32::try_from(comp).map_err(|_| PersistError::Corrupt {
                what: "Dewey component overflows u32".to_owned(),
            })?;
            if j == 0 {
                if let Some(old) = boundary {
                    if comp <= old {
                        return Err(PersistError::Corrupt {
                            what: "postings not in document order".to_owned(),
                        });
                    }
                }
            }
            out.push_component(comp);
        }
        if out.last().is_some_and(<[u32]>::is_empty) {
            return Err(PersistError::Corrupt {
                what: "empty Dewey code in postings".to_owned(),
            });
        }
    }
    Ok(())
}

/// Decodes a prefix-delta posting list into owned [`Dewey`] codes — an
/// allocating convenience over [`get_postings_into`].
pub fn get_postings(bytes: &[u8], pos: &mut usize) -> Result<Vec<Dewey>, PersistError> {
    let mut buf = DeweyListBuf::new();
    get_postings_into(bytes, pos, &mut buf)?;
    Ok(buf.to_deweys())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncation_is_typed() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            get_varint(&buf, &mut pos),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn varint_overflow_is_corrupt() {
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(matches!(
            get_varint(&buf, &mut pos),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn string_round_trip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo wörld");
        put_str(&mut buf, "");
        let mut pos = 0;
        assert_eq!(get_str(&buf, &mut pos).unwrap(), "héllo wörld");
        assert_eq!(get_str(&buf, &mut pos).unwrap(), "");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn string_bad_utf8_is_corrupt() {
        let buf = [2u8, 0xFF, 0xFE];
        let mut pos = 0;
        assert!(matches!(
            get_str(&buf, &mut pos),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn cid_round_trip() {
        let mut buf = Vec::new();
        put_cid(&mut buf, &None);
        put_cid(&mut buf, &Some(("alpha".into(), "zeta".into())));
        let mut pos = 0;
        assert_eq!(get_cid(&buf, &mut pos).unwrap(), None);
        assert_eq!(
            get_cid(&buf, &mut pos).unwrap(),
            Some(("alpha".into(), "zeta".into()))
        );
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn postings_round_trip_and_compress() {
        let list = vec![
            d("0"),
            d("0.0"),
            d("0.2"),
            d("0.2.0"),
            d("0.2.0.1"),
            d("0.2.0.3.0"),
            d("0.2.1"),
            d("0.2.1.1"),
            d("1.0.3"),
        ];
        let mut buf = Vec::new();
        put_postings(&mut buf, &list);
        let mut pos = 0;
        assert_eq!(get_postings(&buf, &mut pos).unwrap(), list);
        assert_eq!(pos, buf.len());
        // Prefix sharing must beat the naive "every component" encoding.
        let naive: usize = list.iter().map(|x| 1 + x.components().len()).sum();
        assert!(buf.len() < naive + list.len());
    }

    #[test]
    fn postings_empty_list() {
        let mut buf = Vec::new();
        put_postings(&mut buf, &[]);
        let mut pos = 0;
        assert!(get_postings(&buf, &mut pos).unwrap().is_empty());
    }

    #[test]
    fn postings_out_of_order_is_corrupt() {
        // Hand-encode "0.5" then "0.3": framing is valid but document
        // order is violated — the decoder must reject it.
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        put_varint(&mut buf, 0); // first: no shared prefix
        put_varint(&mut buf, 2);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 5); // 0.5
        put_varint(&mut buf, 1); // second: shares "0"
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 3); // 0.3 < 0.5
        let mut pos = 0;
        assert!(matches!(
            get_postings(&buf, &mut pos),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn postings_duplicate_is_corrupt() {
        // "0.1" followed by an empty tail (the duplicate encoding).
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 2);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 1); // 0.1
        put_varint(&mut buf, 2); // shares all of 0.1
        put_varint(&mut buf, 0); // empty tail -> duplicate
        let mut pos = 0;
        assert!(matches!(
            get_postings(&buf, &mut pos),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn postings_corrupt_share_count() {
        // First entry claims to share a component with a non-existent
        // predecessor.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // one entry
        put_varint(&mut buf, 3); // shares 3 comps with "nothing"
        put_varint(&mut buf, 0); // no tail
        let mut pos = 0;
        assert!(matches!(
            get_postings(&buf, &mut pos),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
