//! Fixed-size page abstraction with a sharded, thread-safe LRU buffer
//! pool.
//!
//! The reader never maps or slurps whole sections; every byte it needs
//! flows through [`BufferPool::read_at`], which assembles the range from
//! fixed-size pages fetched on demand and cached under an LRU policy
//! (in the spirit of a database buffer manager — see bustub/willow-db).
//! Counters expose exactly how many pages were touched, which the
//! differential tests use to prove lookups are lazy.
//!
//! # Concurrency
//!
//! The pool is `Send + Sync`: frames are partitioned into
//! [`SHARD_COUNT`] shards keyed by page number, each behind its own
//! `Mutex`, so concurrent lookups on different pages rarely contend.
//! Cache misses fetch with **positioned reads** (`pread` on Unix) —
//! no file cursor, no file lock — so misses in different shards hit
//! the disk in parallel; only cursor-based access
//! ([`BufferPool::with_file`], and the page fetch on non-Unix
//! platforms) serializes on a cursor `Mutex`. All counters are relaxed
//! [`AtomicU64`]s — they are statistics, not synchronization.

use std::collections::HashMap;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::error::PersistError;

/// Locks a mutex, recovering from poisoning instead of propagating the
/// panic: pool frames and the file cursor hold no invariant a panic
/// mid-read could break (the worst case is an unindexed frame, which
/// later lookups simply refetch), and a reader shared across query
/// threads must not let one panicked thread wedge every other. Each
/// recovery increments the global `lock.poison_recovered` counter —
/// the process keeps serving, but operators can see it is wounded.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e: PoisonError<_>| {
        xks_obs::count_poison_recovery();
        e.into_inner()
    })
}

/// Number of independently locked frame shards. A power of two so the
/// shard of a page is a mask away; 8 keeps per-shard capacity useful
/// even for small pools while allowing 8-way lookup concurrency.
pub const SHARD_COUNT: usize = 8;

/// Shard of a page: a Fibonacci-hash mix so regular access strides
/// (every 8th page, section-aligned scans) spread across shards
/// instead of ganging up on one — plain `page_no & 7` would give a
/// stride-8 hot set 0% associativity however large the pool.
fn shard_of(page_no: u64) -> usize {
    const SHIFT: u32 = 64 - SHARD_COUNT.trailing_zeros();
    (page_no.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> SHIFT) as usize
}

/// Observable pool counters (cheap to copy, returned by
/// [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Maximum resident pages (sum over shards).
    pub capacity_pages: usize,
    /// Pages currently cached.
    pub cached_pages: usize,
    /// Pages fetched from disk (equals `cache_misses`).
    pub pages_read: u64,
    /// Lookups served from the cache.
    pub cache_hits: u64,
    /// Lookups that went to disk.
    pub cache_misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

#[derive(Debug)]
struct Frame {
    page_no: u64,
    data: Vec<u8>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    by_page: HashMap<u64, usize>,
    frames: Vec<Frame>,
}

/// A sharded LRU page cache over one read-only file.
///
/// Methods take `&self`; the pool is `Send + Sync` and is designed to
/// be shared across query threads behind an `Arc` (one open index, many
/// engines).
#[derive(Debug)]
pub struct BufferPool {
    /// The read-only file. Page fetches use positioned reads (no
    /// cursor) where the platform provides them; cursor-based access
    /// goes through [`BufferPool::with_file`] under `cursor`.
    file: File,
    /// Serializes everything that moves the file cursor.
    cursor: Mutex<()>,
    file_len: u64,
    page_size: usize,
    /// Per-shard frame capacity (total capacity = `SHARD_COUNT` ×
    /// this, matching the configured total within rounding).
    shard_capacity: usize,
    shards: [Mutex<Shard>; SHARD_COUNT],
    tick: AtomicU64,
    pages_read: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    /// Wraps an open file. `capacity` is clamped to at least 8 pages
    /// (one per shard).
    #[must_use]
    pub fn new(file: File, file_len: u64, page_size: usize, capacity: usize) -> Self {
        BufferPool {
            file,
            cursor: Mutex::new(()),
            file_len,
            page_size,
            shard_capacity: capacity.max(SHARD_COUNT).div_ceil(SHARD_COUNT),
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            tick: AtomicU64::new(0),
            pages_read: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Length of the underlying file.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Current counters. Under concurrency the snapshot is advisory:
    /// each counter is exact, but the set is not taken atomically.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let cached = self
            .shards
            .iter()
            .map(|s| lock_unpoisoned(s).frames.len())
            .sum();
        PoolStats {
            capacity_pages: self.shard_capacity * SHARD_COUNT,
            cached_pages: cached,
            pages_read: self.pages_read.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with the pool's underlying file handle — used by
    /// full-file verification so it checks the same inode lookups are
    /// served from (re-opening by path could race an index rebuild).
    /// The cursor lock is held for the duration, so `f` may seek
    /// freely (`&File` implements `Read + Seek`); positioned page
    /// fetches never touch the cursor and keep running concurrently.
    pub fn with_file<R>(&self, f: impl FnOnce(&File) -> R) -> R {
        let _cursor = lock_unpoisoned(&self.cursor);
        f(&self.file)
    }

    /// Reads `len` bytes at absolute `offset`, assembling across pages.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, PersistError> {
        let mut out = Vec::with_capacity(len);
        self.read_extend(offset, len, &mut out)?;
        Ok(out)
    }

    /// Like [`BufferPool::read_at`] but appending into a caller-owned
    /// buffer — a warm caller reuses its capacity instead of allocating
    /// per read.
    pub fn read_extend(
        &self,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), PersistError> {
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= self.file_len)
            .ok_or(PersistError::Truncated {
                what: "read past end of index file",
            })?;
        let mut pos = offset;
        while pos < end {
            let page_no = pos / self.page_size as u64;
            let page_start = page_no * self.page_size as u64;
            let in_page = (pos - page_start) as usize;
            let take = ((end - pos) as usize).min(self.page_size - in_page);
            self.with_page(page_no, |data| {
                out.extend_from_slice(&data[in_page..in_page + take]);
            })?;
            pos += take as u64;
        }
        Ok(())
    }

    /// Reads up to 16 bytes at `offset` into a stack buffer — the probe
    /// primitive for varints and offset-array entries, which dominate
    /// index binary searches and must not heap-allocate per probe.
    /// Returns the buffer and the number of valid bytes.
    pub fn read_small(&self, offset: u64, len: usize) -> Result<([u8; 16], usize), PersistError> {
        debug_assert!(len <= 16);
        let len = len.min(16);
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= self.file_len)
            .ok_or(PersistError::Truncated {
                what: "read past end of index file",
            })?;
        let mut out = [0u8; 16];
        let mut filled = 0usize;
        let mut pos = offset;
        while pos < end {
            let page_no = pos / self.page_size as u64;
            let page_start = page_no * self.page_size as u64;
            let in_page = (pos - page_start) as usize;
            let take = ((end - pos) as usize).min(self.page_size - in_page);
            self.with_page(page_no, |data| {
                out[filled..filled + take].copy_from_slice(&data[in_page..in_page + take]);
            })?;
            filled += take;
            pos += take as u64;
        }
        Ok((out, filled))
    }

    /// Runs `f` over the cached page, fetching and possibly evicting
    /// first. Only the page's shard is locked; a miss additionally
    /// takes the file lock inside the shard lock (shard → file is the
    /// one nesting order in this module). Two threads missing on the
    /// same page serialize on the shard and the second finds the frame
    /// resident — each page is fetched once.
    fn with_page<R>(&self, page_no: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R, PersistError> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = &self.shards[shard_of(page_no)];
        let mut shard = lock_unpoisoned(shard);

        if let Some(&idx) = shard.by_page.get(&page_no) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            shard.frames[idx].last_used = tick;
            return Ok(f(&shard.frames[idx].data));
        }

        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        let data = self.fetch_page(page_no)?;

        let idx = if shard.frames.len() < self.shard_capacity {
            shard.frames.push(Frame {
                page_no,
                data,
                last_used: tick,
            });
            shard.frames.len() - 1
        } else {
            // Evict the least recently used frame of this shard.
            let victim = shard
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(i, _)| i)
                .expect("shard capacity >= 1 frame");
            let old = shard.frames[victim].page_no;
            shard.by_page.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            shard.frames[victim] = Frame {
                page_no,
                data,
                last_used: tick,
            };
            victim
        };
        shard.by_page.insert(page_no, idx);
        Ok(f(&shard.frames[idx].data))
    }

    /// Reads one page from disk (the final page may be short; it is
    /// zero-padded so in-page slicing stays uniform).
    ///
    /// On Unix this is a positioned read (`pread`): no cursor, no
    /// lock, so misses in different shards fetch in parallel. The
    /// portable fallback seeks under the cursor lock.
    fn fetch_page(&self, page_no: u64) -> Result<Vec<u8>, PersistError> {
        let start = page_no * self.page_size as u64;
        if start >= self.file_len {
            return Err(PersistError::Truncated {
                what: "page beyond end of index file",
            });
        }
        let avail = ((self.file_len - start) as usize).min(self.page_size);
        let mut data = vec![0u8; self.page_size];
        self.read_exact_at(&mut data[..avail], start)?;
        Ok(data)
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), PersistError> {
        use std::os::unix::fs::FileExt as _;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), PersistError> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let _cursor = lock_unpoisoned(&self.cursor);
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_file(bytes: &[u8], name: &str) -> (File, u64) {
        let dir = std::env::temp_dir().join("xks-persist-pool-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        (File::open(&path).unwrap(), bytes.len() as u64)
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
    }

    #[test]
    fn read_spanning_pages() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let (file, len) = temp_file(&bytes, "span.bin");
        let pool = BufferPool::new(file, len, 64, 8);
        // Range [60, 200) crosses pages 0..=3 of 64 bytes.
        let got = pool.read_at(60, 140).unwrap();
        assert_eq!(got, &bytes[60..200]);
        assert_eq!(pool.stats().pages_read, 4);
    }

    #[test]
    fn cache_hits_do_not_reread() {
        let bytes = vec![7u8; 1024];
        let (file, len) = temp_file(&bytes, "hits.bin");
        let pool = BufferPool::new(file, len, 256, 8);
        pool.read_at(0, 10).unwrap();
        pool.read_at(5, 10).unwrap();
        pool.read_at(100, 10).unwrap();
        let s = pool.stats();
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_in_shard() {
        let bytes = vec![1u8; 64 * 64];
        let (file, len) = temp_file(&bytes, "lru.bin");
        // Capacity 8 = 1 frame per shard: two pages in the same shard
        // evict each other, pages in different shards coexist.
        let pool = BufferPool::new(file, len, 64, 8);
        let first = 0u64;
        let colliding = (1..64u64)
            .find(|&p| shard_of(p) == shard_of(first))
            .expect("some page shares a shard with page 0");
        let elsewhere = (1..64u64)
            .find(|&p| shard_of(p) != shard_of(first))
            .expect("some page lands in another shard");

        pool.read_at(first * 64, 1).unwrap();
        pool.read_at(elsewhere * 64, 1).unwrap();
        pool.read_at(colliding * 64, 1).unwrap(); // evicts `first`
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.cached_pages, 2);
        // The collider is resident (hit); `first` was evicted (miss,
        // evicting the collider back out); the other shard's page is
        // untouched by any of this (hit).
        pool.read_at(colliding * 64, 1).unwrap();
        pool.read_at(first * 64, 1).unwrap();
        pool.read_at(elsewhere * 64, 1).unwrap();
        let s = pool.stats();
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn stride_patterns_spread_across_shards() {
        // The Fibonacci mix must not let a regular stride collapse
        // into one shard (the failure mode of sharding by low bits:
        // a stride-SHARD_COUNT hot set would thrash a single shard).
        for stride in [1u64, 2, 4, 8, 16, 64] {
            let shards: std::collections::HashSet<usize> =
                (0..32).map(|i| shard_of(i * stride)).collect();
            assert!(
                shards.len() >= SHARD_COUNT / 2,
                "stride {stride} uses only {} of {SHARD_COUNT} shards",
                shards.len()
            );
        }
    }

    #[test]
    fn short_final_page_is_padded() {
        let bytes = vec![9u8; 100];
        let (file, len) = temp_file(&bytes, "short.bin");
        let pool = BufferPool::new(file, len, 64, 8);
        let got = pool.read_at(64, 36).unwrap();
        assert_eq!(got, &bytes[64..100]);
    }

    #[test]
    fn read_past_end_is_truncated_error() {
        let bytes = vec![0u8; 100];
        let (file, len) = temp_file(&bytes, "past.bin");
        let pool = BufferPool::new(file, len, 64, 8);
        assert!(matches!(
            pool.read_at(90, 20),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            pool.read_at(u64::MAX, 2),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn concurrent_reads_agree_and_count() {
        let bytes: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let (file, len) = temp_file(&bytes, "mt.bin");
        // 256 frames = 32 per shard: the 64-page working set fits even
        // under a skewed hash distribution, so no page is ever fetched
        // twice.
        let pool = BufferPool::new(file, len, 64, 256);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                let bytes = &bytes;
                scope.spawn(move || {
                    for i in 0..64u64 {
                        let off = ((i * 61 + t * 17) % 63) * 64;
                        let got = pool.read_at(off, 70).unwrap();
                        assert_eq!(got, &bytes[off as usize..off as usize + 70]);
                    }
                });
            }
        });
        let s = pool.stats();
        // Every byte read was correct; each distinct page was fetched
        // from disk at most once (misses never duplicate within a
        // shard lock).
        assert!(s.pages_read <= 64);
        assert!(s.cache_hits + s.cache_misses >= 4 * 64);
    }
}
