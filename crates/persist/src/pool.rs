//! Fixed-size page abstraction with an LRU buffer pool.
//!
//! The reader never maps or slurps whole sections; every byte it needs
//! flows through [`BufferPool::read_at`], which assembles the range from
//! fixed-size pages fetched on demand and cached under an LRU policy
//! (in the spirit of a database buffer manager — see bustub/willow-db).
//! Counters expose exactly how many pages were touched, which the
//! differential tests use to prove lookups are lazy.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

use crate::error::PersistError;

/// Observable pool counters (cheap to copy, returned by
/// [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Maximum resident pages.
    pub capacity_pages: usize,
    /// Pages currently cached.
    pub cached_pages: usize,
    /// Pages fetched from disk (equals `cache_misses`).
    pub pages_read: u64,
    /// Lookups served from the cache.
    pub cache_hits: u64,
    /// Lookups that went to disk.
    pub cache_misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

#[derive(Debug)]
struct Frame {
    page_no: u64,
    data: Vec<u8>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Frames {
    by_page: HashMap<u64, usize>,
    frames: Vec<Frame>,
    tick: u64,
}

/// An LRU page cache over one read-only file.
///
/// Methods take `&self` (interior mutability) so the reader can serve
/// lookups through shared references; the pool is intentionally not
/// `Sync` — clone readers per thread instead.
#[derive(Debug)]
pub struct BufferPool {
    file: RefCell<File>,
    file_len: u64,
    page_size: usize,
    capacity: usize,
    frames: RefCell<Frames>,
    pages_read: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    evictions: Cell<u64>,
}

impl BufferPool {
    /// Wraps an open file. `capacity` is clamped to at least 8 pages.
    #[must_use]
    pub fn new(file: File, file_len: u64, page_size: usize, capacity: usize) -> Self {
        BufferPool {
            file: RefCell::new(file),
            file_len,
            page_size,
            capacity: capacity.max(8),
            frames: RefCell::new(Frames::default()),
            pages_read: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            evictions: Cell::new(0),
        }
    }

    /// The configured page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Length of the underlying file.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity_pages: self.capacity,
            cached_pages: self.frames.borrow().frames.len(),
            pages_read: self.pages_read.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Runs `f` with the pool's underlying file handle — used by
    /// full-file verification so it checks the same inode lookups are
    /// served from (re-opening by path could race an index rebuild).
    /// Page fetches always seek first, so `f` may move the cursor.
    pub fn with_file<R>(&self, f: impl FnOnce(&mut File) -> R) -> R {
        f(&mut self.file.borrow_mut())
    }

    /// Reads `len` bytes at absolute `offset`, assembling across pages.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, PersistError> {
        let mut out = Vec::with_capacity(len);
        self.read_extend(offset, len, &mut out)?;
        Ok(out)
    }

    /// Like [`BufferPool::read_at`] but appending into a caller-owned
    /// buffer — a warm caller reuses its capacity instead of allocating
    /// per read.
    pub fn read_extend(
        &self,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), PersistError> {
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= self.file_len)
            .ok_or(PersistError::Truncated {
                what: "read past end of index file",
            })?;
        let mut pos = offset;
        while pos < end {
            let page_no = pos / self.page_size as u64;
            let page_start = page_no * self.page_size as u64;
            let in_page = (pos - page_start) as usize;
            let take = ((end - pos) as usize).min(self.page_size - in_page);
            self.with_page(page_no, |data| {
                out.extend_from_slice(&data[in_page..in_page + take]);
            })?;
            pos += take as u64;
        }
        Ok(())
    }

    /// Reads up to 16 bytes at `offset` into a stack buffer — the probe
    /// primitive for varints and offset-array entries, which dominate
    /// index binary searches and must not heap-allocate per probe.
    /// Returns the buffer and the number of valid bytes.
    pub fn read_small(&self, offset: u64, len: usize) -> Result<([u8; 16], usize), PersistError> {
        debug_assert!(len <= 16);
        let len = len.min(16);
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= self.file_len)
            .ok_or(PersistError::Truncated {
                what: "read past end of index file",
            })?;
        let mut out = [0u8; 16];
        let mut filled = 0usize;
        let mut pos = offset;
        while pos < end {
            let page_no = pos / self.page_size as u64;
            let page_start = page_no * self.page_size as u64;
            let in_page = (pos - page_start) as usize;
            let take = ((end - pos) as usize).min(self.page_size - in_page);
            self.with_page(page_no, |data| {
                out[filled..filled + take].copy_from_slice(&data[in_page..in_page + take]);
            })?;
            filled += take;
            pos += take as u64;
        }
        Ok((out, filled))
    }

    /// Runs `f` over the cached page, fetching and possibly evicting
    /// first.
    fn with_page<R>(&self, page_no: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R, PersistError> {
        let mut frames = self.frames.borrow_mut();
        frames.tick += 1;
        let tick = frames.tick;

        if let Some(&idx) = frames.by_page.get(&page_no) {
            self.cache_hits.set(self.cache_hits.get() + 1);
            frames.frames[idx].last_used = tick;
            return Ok(f(&frames.frames[idx].data));
        }

        self.cache_misses.set(self.cache_misses.get() + 1);
        self.pages_read.set(self.pages_read.get() + 1);
        let data = self.fetch_page(page_no)?;

        let idx = if frames.frames.len() < self.capacity {
            frames.frames.push(Frame {
                page_no,
                data,
                last_used: tick,
            });
            frames.frames.len() - 1
        } else {
            // Evict the least recently used frame.
            let victim = frames
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 8 frames");
            let old = frames.frames[victim].page_no;
            frames.by_page.remove(&old);
            self.evictions.set(self.evictions.get() + 1);
            frames.frames[victim] = Frame {
                page_no,
                data,
                last_used: tick,
            };
            victim
        };
        frames.by_page.insert(page_no, idx);
        Ok(f(&frames.frames[idx].data))
    }

    /// Reads one page from disk (the final page may be short; it is
    /// zero-padded so in-page slicing stays uniform).
    fn fetch_page(&self, page_no: u64) -> Result<Vec<u8>, PersistError> {
        let start = page_no * self.page_size as u64;
        if start >= self.file_len {
            return Err(PersistError::Truncated {
                what: "page beyond end of index file",
            });
        }
        let avail = ((self.file_len - start) as usize).min(self.page_size);
        let mut data = vec![0u8; self.page_size];
        let mut file = self.file.borrow_mut();
        file.seek(SeekFrom::Start(start))?;
        file.read_exact(&mut data[..avail])?;
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_file(bytes: &[u8], name: &str) -> (File, u64) {
        let dir = std::env::temp_dir().join("xks-persist-pool-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        (File::open(&path).unwrap(), bytes.len() as u64)
    }

    #[test]
    fn read_spanning_pages() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let (file, len) = temp_file(&bytes, "span.bin");
        let pool = BufferPool::new(file, len, 64, 8);
        // Range [60, 200) crosses pages 0..=3 of 64 bytes.
        let got = pool.read_at(60, 140).unwrap();
        assert_eq!(got, &bytes[60..200]);
        assert_eq!(pool.stats().pages_read, 4);
    }

    #[test]
    fn cache_hits_do_not_reread() {
        let bytes = vec![7u8; 1024];
        let (file, len) = temp_file(&bytes, "hits.bin");
        let pool = BufferPool::new(file, len, 256, 8);
        pool.read_at(0, 10).unwrap();
        pool.read_at(5, 10).unwrap();
        pool.read_at(100, 10).unwrap();
        let s = pool.stats();
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let bytes = vec![1u8; 64 * 32];
        let (file, len) = temp_file(&bytes, "lru.bin");
        let pool = BufferPool::new(file, len, 64, 8);
        // Touch pages 0..8 (fills capacity), then page 8 (evicts page 0,
        // the least recently used).
        for p in 0..9u64 {
            pool.read_at(p * 64, 1).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.cached_pages, 8);
        // Re-reading page 8 hits; re-reading page 0 misses again.
        pool.read_at(8 * 64, 1).unwrap();
        pool.read_at(0, 1).unwrap();
        let s = pool.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn short_final_page_is_padded() {
        let bytes = vec![9u8; 100];
        let (file, len) = temp_file(&bytes, "short.bin");
        let pool = BufferPool::new(file, len, 64, 8);
        let got = pool.read_at(64, 36).unwrap();
        assert_eq!(got, &bytes[64..100]);
    }

    #[test]
    fn read_past_end_is_truncated_error() {
        let bytes = vec![0u8; 100];
        let (file, len) = temp_file(&bytes, "past.bin");
        let pool = BufferPool::new(file, len, 64, 8);
        assert!(matches!(
            pool.read_at(90, 20),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            pool.read_at(u64::MAX, 2),
            Err(PersistError::Truncated { .. })
        ));
    }
}
