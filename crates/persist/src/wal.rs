//! The write-ahead log behind a mutable corpus (`.wal`, format `XKSW`
//! version 1).
//!
//! A [`crate::mutable::MutableCorpus`] acknowledges an insert or delete
//! only after the operation is framed, CRC'd, written, and fsynced
//! here; the in-memory delta is rebuilt from this log at every open.
//! The byte-level layout is specified in `FORMAT.md` §"Write-ahead
//! log"; the fsync ordering and crash-point analysis live in
//! `docs/DURABILITY.md`.
//!
//! Replay distinguishes two failure shapes, and the distinction is the
//! whole point:
//!
//! * a **torn tail** — the file ends mid-frame, or the final frame's
//!   CRC does not match (a crash mid-append). [`Wal::scan`] reports the
//!   clean record prefix plus the byte offset where the tail starts;
//!   [`Wal::open`] truncates the file back to that offset. Never an
//!   error: this is the log working as designed.
//! * **corruption** — a frame whose CRC matches but whose payload does
//!   not decode (impossible from any crash; something rewrote the
//!   bytes). A typed [`PersistError::Corrupt`], surfaced to the
//!   operator instead of silently dropping acknowledged writes.
//!
//! The header carries the CRC-32 of the shard manifest the log was
//! opened against (`base_crc`), which makes log/manifest mismatch
//! detectable: compaction swaps the manifest *before* resetting the
//! log, so a crash between the two leaves a log whose `base_crc` names
//! the old manifest. Recovery discards such a stale log — every record
//! in it is already sealed into the new shards.

use std::path::{Path, PathBuf};

use xks_obs::{global, Counter};

use crate::codec::{crc32, get_str, get_varint, put_str, put_varint};
use crate::error::PersistError;
use crate::fault::{fault_rename, fault_sync_dir, FaultFile, Injector};

/// WAL magic: "XKSW" (Xml Keyword Search, Wal).
pub const WAL_MAGIC: [u8; 4] = *b"XKSW";

/// WAL format version this build reads and writes.
pub const WAL_VERSION: u16 = 1;

/// Header length: magic (4) + version (2) + reserved (2) + base
/// manifest CRC (4).
pub const WAL_HEADER_LEN: u64 = 12;

/// Frame overhead per record: payload length (u32) + payload CRC-32.
pub const WAL_FRAME_OVERHEAD: u64 = 8;

/// Upper bound on one record's payload — anything larger in a length
/// field is treated as a torn tail, bounding the allocation a mangled
/// length can demand.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// `base_crc` of a WAL opened against no manifest (fresh corpus).
pub const NO_MANIFEST_CRC: u32 = 0;

/// One logged corpus mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Corpus creation: the root element's label. Always the first
    /// record of a fresh corpus's log; never appears after compaction
    /// (the root lives in shard 0 from then on).
    Init {
        /// Label name of the corpus root element.
        root_label: String,
    },
    /// One document inserted at a top-level ordinal, stored as its XML
    /// text (re-shredded on replay — shredding is deterministic).
    Insert {
        /// Assigned top-level ordinal (monotonic, never reused).
        ordinal: u32,
        /// The document's XML, exactly as accepted.
        xml: String,
    },
    /// One document tombstoned.
    Delete {
        /// Ordinal of the deleted document.
        ordinal: u32,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Init { root_label } => {
                out.push(0);
                put_str(&mut out, root_label);
            }
            WalRecord::Insert { ordinal, xml } => {
                out.push(1);
                put_varint(&mut out, u64::from(*ordinal));
                put_str(&mut out, xml);
            }
            WalRecord::Delete { ordinal } => {
                out.push(2);
                put_varint(&mut out, u64::from(*ordinal));
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut pos = 0;
        let op = *payload.first().ok_or(PersistError::Truncated {
            what: "empty WAL record payload",
        })?;
        pos += 1;
        let record = match op {
            0 => WalRecord::Init {
                root_label: get_str(payload, &mut pos)?,
            },
            1 => {
                let ordinal = read_ordinal(payload, &mut pos)?;
                WalRecord::Insert {
                    ordinal,
                    xml: get_str(payload, &mut pos)?,
                }
            }
            2 => WalRecord::Delete {
                ordinal: read_ordinal(payload, &mut pos)?,
            },
            other => {
                return Err(PersistError::Corrupt {
                    what: format!("WAL record op {other} (expected 0, 1, or 2)"),
                })
            }
        };
        if pos != payload.len() {
            return Err(PersistError::Corrupt {
                what: format!(
                    "WAL record has {} trailing bytes after its payload",
                    payload.len() - pos
                ),
            });
        }
        Ok(record)
    }
}

fn read_ordinal(payload: &[u8], pos: &mut usize) -> Result<u32, PersistError> {
    u32::try_from(get_varint(payload, pos)?).map_err(|_| PersistError::Corrupt {
        what: "WAL document ordinal overflows u32".to_owned(),
    })
}

/// What [`Wal::scan`] found in a log's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Manifest CRC the log was created against ([`NO_MANIFEST_CRC`]
    /// when the corpus had no manifest yet).
    pub base_crc: u32,
    /// The clean record prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of header + clean frames; anything past this offset is a
    /// torn tail.
    pub valid_len: u64,
    /// True when bytes past `valid_len` existed (a tail was torn).
    pub torn: bool,
}

/// Handles registered once in the global metrics registry (see
/// [`crate::preregister_durability_metrics`]).
struct WalMetrics {
    appends: Counter,
    fsyncs: Counter,
    replayed: Counter,
    truncated: Counter,
}

fn wal_metrics() -> &'static WalMetrics {
    use std::sync::OnceLock;
    static CELL: OnceLock<WalMetrics> = OnceLock::new();
    CELL.get_or_init(|| WalMetrics {
        appends: global().counter("wal.appends"),
        fsyncs: global().counter("wal.fsyncs"),
        replayed: global().counter("recovery.records_replayed"),
        truncated: global().counter("recovery.tail_truncated"),
    })
}

/// An open write-ahead log: an append handle plus the invariant that
/// every byte before `len` is a clean, fsynced frame.
#[derive(Debug)]
pub struct Wal {
    file: FaultFile,
    path: PathBuf,
    len: u64,
    base_crc: u32,
    /// Set when a failed append could not be rolled back: the tail is
    /// in an unknown state and only a reopen (which re-scans and
    /// truncates) may mutate again.
    poisoned: bool,
}

impl Wal {
    /// Creates a fresh log at `path` bound to a manifest CRC, written
    /// via temp file + rename so a crash mid-create leaves no
    /// half-written log under the final name.
    pub fn create(path: &Path, base_crc: u32, injector: Injector) -> Result<Self, PersistError> {
        let tmp = tmp_path(path);
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&base_crc.to_le_bytes());
        {
            let mut file = FaultFile::create(&tmp, injector.clone(), "wal")?;
            file.write_all(&header)?;
            file.sync_data()?;
        }
        fault_rename(&injector, "wal.rename", &tmp, path)?;
        fault_sync_dir(&injector, "wal.dirsync", path)?;
        let mut file = FaultFile::open_rw(path, injector, "wal")?;
        file.seek_to(WAL_HEADER_LEN)?;
        Ok(Wal {
            file,
            path: path.to_owned(),
            len: WAL_HEADER_LEN,
            base_crc,
            poisoned: false,
        })
    }

    /// Scans a log's raw bytes: header, then frames until the bytes run
    /// out or a CRC disagrees (the torn tail). Pure — no I/O, no
    /// truncation — so tests can probe every byte-offset prefix.
    pub fn scan(bytes: &[u8]) -> Result<WalScan, PersistError> {
        if bytes.len() < WAL_HEADER_LEN as usize {
            return Err(PersistError::Truncated {
                what: "file shorter than the WAL header",
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("sliced 4");
        if magic != WAL_MAGIC {
            return Err(PersistError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("sliced 2"));
        if version != WAL_VERSION {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let base_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("sliced 4"));
        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        loop {
            let remaining = bytes.len() - pos;
            if remaining == 0 {
                return Ok(WalScan {
                    base_crc,
                    records,
                    valid_len: pos as u64,
                    torn: false,
                });
            }
            if remaining < WAL_FRAME_OVERHEAD as usize {
                break; // torn: not even a frame header
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("sliced 4"));
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("sliced 4"));
            let body_start = pos + 8;
            if len > MAX_RECORD_LEN || (len as usize) > bytes.len() - body_start {
                break; // torn: frame promises more bytes than exist
            }
            let payload = &bytes[body_start..body_start + len as usize];
            if crc32(payload) != crc {
                break; // torn: the frame never finished
            }
            // A clean CRC over a malformed payload is real corruption,
            // not a crash artifact — typed error, no silent truncation.
            records.push(WalRecord::decode(payload)?);
            pos = body_start + len as usize;
        }
        Ok(WalScan {
            base_crc,
            records,
            valid_len: pos as u64,
            torn: true,
        })
    }

    /// Opens the log at `path`, repairing a torn tail in place
    /// (truncate + fsync, counted as `recovery.tail_truncated`).
    /// Returns the handle positioned for appends plus the scan that
    /// recovery replays (`recovery.records_replayed`).
    pub fn open(path: &Path, injector: Injector) -> Result<(Self, WalScan), PersistError> {
        let bytes = std::fs::read(path)?;
        let scan = Wal::scan(&bytes)?;
        let mut file = FaultFile::open_rw(path, injector, "wal")?;
        if scan.torn {
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
            wal_metrics().truncated.inc();
        }
        wal_metrics().replayed.add(scan.records.len() as u64);
        file.seek_to(scan.valid_len)?;
        let wal = Wal {
            file,
            path: path.to_owned(),
            len: scan.valid_len,
            base_crc: scan.base_crc,
            poisoned: false,
        };
        Ok((wal, scan))
    }

    /// The manifest CRC this log was created against.
    #[must_use]
    pub fn base_crc(&self) -> u32 {
        self.base_crc
    }

    /// Bytes of clean, durable log (header included).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == WAL_HEADER_LEN
    }

    /// Where the log lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record — frame write, then fsync — and only then
    /// returns. On a failed write the torn bytes are rolled back by
    /// truncating to the last durable length; if even that fails the
    /// handle is poisoned and every later append errors until reopen.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), PersistError> {
        if self.poisoned {
            return Err(PersistError::Corrupt {
                what: "WAL handle is poisoned by an earlier failed append (reopen to recover)"
                    .to_owned(),
            });
        }
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + WAL_FRAME_OVERHEAD as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
        {
            // Roll the file back to its last durable frame so the
            // *open handle* stays usable after a transient error. If
            // the rollback itself fails, only reopening (which re-scans
            // and truncates) is safe.
            if self.file.set_len(self.len).is_err() || self.file.seek_to(self.len).is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.len += frame.len() as u64;
        let metrics = wal_metrics();
        metrics.appends.inc();
        metrics.fsyncs.inc();
        Ok(())
    }

    /// Replaces the log with a fresh, empty one bound to `base_crc` —
    /// the final step of compaction. Temp file + rename: any crash
    /// leaves either the old complete log or the new empty one.
    pub fn reset(path: &Path, base_crc: u32, injector: Injector) -> Result<Self, PersistError> {
        Wal::create(path, base_crc, injector)
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "wal".to_owned());
    name.push_str(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xks-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Init {
                root_label: "dblp".to_owned(),
            },
            WalRecord::Insert {
                ordinal: 0,
                xml: "<paper><title>xml keyword search</title></paper>".to_owned(),
            },
            WalRecord::Delete { ordinal: 0 },
        ]
    }

    #[test]
    fn append_then_open_round_trips() {
        let path = temp_wal("round-trip.wal");
        let records = sample_records();
        {
            let mut wal = Wal::create(&path, 7, Injector::none()).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let (wal, scan) = Wal::open(&path, Injector::none()).unwrap();
        assert_eq!(scan.base_crc, 7);
        assert_eq!(scan.records, records);
        assert!(!scan.torn);
        assert!(!wal.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reappendable() {
        let path = temp_wal("torn.wal");
        {
            let mut wal = Wal::create(&path, 0, Injector::none()).unwrap();
            for r in &sample_records() {
                wal.append(r).unwrap();
            }
        }
        // Tear the last frame by chopping 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, scan) = Wal::open(&path, Injector::none()).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 2, "the torn delete is gone");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), scan.valid_len);
        // The repaired log accepts appends again.
        wal.append(&WalRecord::Delete { ordinal: 9 }).unwrap();
        let (_, rescan) = Wal::open(&path, Injector::none()).unwrap();
        assert_eq!(rescan.records.len(), 3);
        assert_eq!(rescan.records[2], WalRecord::Delete { ordinal: 9 });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn valid_crc_with_garbage_payload_is_typed_corruption() {
        let path = temp_wal("corrupt.wal");
        {
            Wal::create(&path, 0, Injector::none()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let payload = [9u8, 1, 2, 3]; // op 9 does not exist
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(&path, Injector::none()) {
            Err(PersistError::Corrupt { what }) => assert!(what.contains("op 9"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_and_handle_survives() {
        let path = temp_wal("failed-append.wal");
        let mut wal = Wal::create(&path, 0, Injector::none()).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        let durable = wal.len();
        drop(wal);
        // Reopen with an injector that fails the next frame write once.
        let (mut wal, _) = Wal::open(&path, Injector::arm(0, FaultKind::Error)).unwrap();
        assert!(wal.append(&sample_records()[1]).is_err());
        assert_eq!(wal.len(), durable);
        // The transient error passed; the same handle appends cleanly.
        wal.append(&sample_records()[1]).unwrap();
        let (_, scan) = Wal::open(&path, Injector::none()).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.torn, "rollback left no torn bytes behind");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        assert!(matches!(
            Wal::scan(b"NOPE00000000"),
            Err(PersistError::BadMagic { .. })
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&9u16.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 6]);
        assert!(matches!(
            Wal::scan(&bytes),
            Err(PersistError::UnsupportedVersion { found: 9 })
        ));
    }
}
