//! `xks-persist` — a paged binary on-disk index for shredded XML
//! corpora.
//!
//! The paper's §5.2 setup shreds every document into PostgreSQL tables
//! before ValidRTF/MaxMatch run. This crate is the workspace's real
//! persistence subsystem in that spirit (and in the spirit of
//! disk-based keyword-search engines like EMBANKS): a query session
//! opens a prebuilt `.xks` file and answers from paged postings without
//! re-parsing or re-shredding any XML.
//!
//! * [`IndexWriter`] serializes a [`xks_store::ShreddedDoc`] (or a
//!   parsed tree) into a sectioned binary file: header with
//!   magic/version/CRC-32s, label dictionary, element table (Dewey,
//!   level, label number sequence, content features), and an inverted
//!   keyword index stored as prefix-delta varint Dewey postings.
//! * [`IndexReader`] opens the file, validates it, and serves
//!   `keyword → postings` and `Dewey → element` lookups through a
//!   fixed-size page abstraction with an LRU [`pool::BufferPool`] — a
//!   lookup touches only the pages it needs, observable via
//!   [`IndexReader::stats`].
//! * [`IndexReader`] implements `validrtf`'s
//!   [`CorpusSource`](validrtf::source::CorpusSource) and is
//!   `Send + Sync`, so
//!   `SearchEngine::from_owned_source(IndexReader::open(..)?)` runs
//!   ValidRTF and MaxMatch directly off disk with results
//!   byte-identical to the in-memory backends — and one opened index
//!   behind an `Arc` can serve many engines and query threads at once.
//! * [`shard`] scales past one file: [`write_sharded`] partitions the
//!   corpus into N independent `.xks` shards under a CRC'd manifest,
//!   and [`ShardedCorpus`] opens them back into one logical corpus —
//!   searched serially through its own `CorpusSource` impl, or with
//!   scatter-gather via
//!   `SearchEngine::from_shard_set(corpus.shard_set())`; either way
//!   results stay byte-identical to the unsharded index.
//!
//! See `FORMAT.md` (next to this crate's manifest) for the byte-level
//! layout.
//!
//! # Quickstart
//!
//! ```
//! use validrtf::engine::{AlgorithmKind, SearchEngine};
//! use xks_index::Query;
//! use xks_persist::{IndexReader, IndexWriter};
//!
//! let tree = xks_xmltree::parse(
//!     "<pubs><paper><title>xml keyword search</title></paper></pubs>",
//! )
//! .unwrap();
//! let path = std::env::temp_dir().join("xks-persist-doctest.xks");
//! IndexWriter::new().write_tree(&tree, &path).unwrap();
//!
//! let reader = IndexReader::open(&path).unwrap();
//! let engine = SearchEngine::from_owned_source(reader);
//! let result = engine.search(
//!     &Query::parse("xml keyword").unwrap(),
//!     AlgorithmKind::ValidRtf,
//! );
//! assert_eq!(result.fragments.len(), 1);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod error;
pub mod fault;
pub mod format;
pub mod mutable;
pub mod pool;
pub mod reader;
pub mod shard;
pub mod wal;
pub mod writer;

pub use error::PersistError;
pub use fault::{FaultFile, FaultKind, Injector};
pub use mutable::{preregister_durability_metrics, MutableCorpus, MutableError};
pub use pool::PoolStats;
pub use reader::{ElementRecord, IndexReader, IndexStats, ReaderOptions};
pub use shard::{write_sharded, ShardEntry, ShardManifest, ShardedCorpus, ShardedWriteSummary};
pub use wal::{Wal, WalRecord, WalScan};
pub use writer::{IndexWriter, WriteSummary};
