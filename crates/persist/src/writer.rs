//! Building `.xks` index files from shredded corpora.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use validrtf::source::own_content_features;
use xks_store::{shred, ShreddedDoc};
use xks_xmltree::{Dewey, XmlTree};

use crate::codec::{crc32, put_cid, put_postings, put_str, put_varint};
use crate::error::PersistError;
use crate::format::{
    align_up, check_page_size, Header, Section, SectionEntry, DEFAULT_PAGE_SIZE, MIN_VERSION,
    SECTION_COUNT, VERSION,
};

/// What [`IndexWriter::write`] produced.
#[derive(Debug, Clone, Copy)]
pub struct WriteSummary {
    /// Total file length in bytes.
    pub file_len: u64,
    /// Element rows written.
    pub element_count: u64,
    /// Distinct keywords written.
    pub keyword_count: u64,
    /// Labels in the dictionary.
    pub label_count: u64,
    /// Bytes of the (compressed) postings section.
    pub postings_len: u64,
    /// Bytes of the element-table section.
    pub elements_len: u64,
    /// Page size the file was laid out with.
    pub page_size: u32,
}

/// Serializes a shredded corpus into the paged binary format.
#[derive(Debug, Clone, Copy)]
pub struct IndexWriter {
    page_size: u32,
    format_version: u16,
}

impl Default for IndexWriter {
    fn default() -> Self {
        IndexWriter {
            page_size: DEFAULT_PAGE_SIZE,
            format_version: VERSION,
        }
    }
}

impl IndexWriter {
    /// A writer with the default 4 KiB page size.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with a custom page size (power of two in
    /// `[512, 1 MiB]`).
    pub fn with_page_size(page_size: u32) -> Result<Self, PersistError> {
        check_page_size(page_size)?;
        Ok(IndexWriter {
            page_size,
            format_version: VERSION,
        })
    }

    /// Selects the on-disk format version to emit
    /// ([`MIN_VERSION`]..=[`VERSION`]). Version 1 omits the per-keyword
    /// stats — used by the v1→v2 compatibility tests; production
    /// writers keep the default (current) version.
    pub fn with_format_version(mut self, version: u16) -> Result<Self, PersistError> {
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        self.format_version = version;
        Ok(self)
    }

    /// Shreds a parsed tree and writes its index to `path`.
    pub fn write_tree(&self, tree: &XmlTree, path: &Path) -> Result<WriteSummary, PersistError> {
        self.write(&shred(tree), path)
    }

    /// Writes a shredded corpus to `path`.
    ///
    /// Element rows are stored in the document (pre-)order the shredder
    /// produced; postings come out of the store's derived keyword index
    /// sorted and deduplicated, exactly as the in-memory backend serves
    /// them — which is what makes query results byte-identical across
    /// backends.
    pub fn write(&self, doc: &ShreddedDoc, path: &Path) -> Result<WriteSummary, PersistError> {
        // --- section payloads, in memory ---------------------------
        let labels = encode_labels(doc);
        let (element_offsets, elements) = encode_elements(doc)?;
        let postings_input = doc.to_postings();
        let (keyword_offsets, keyword_dict, postings) =
            encode_keywords(&postings_input, self.format_version);

        let payloads: [&[u8]; SECTION_COUNT] = [
            &labels,
            &element_offsets,
            &elements,
            &keyword_offsets,
            &keyword_dict,
            &postings,
        ];

        // --- layout: header page, then page-aligned sections -------
        let page = u64::from(self.page_size);
        let mut sections = [SectionEntry::default(); SECTION_COUNT];
        let mut cursor = page; // header owns page 0
        for (entry, payload) in sections.iter_mut().zip(payloads.iter()) {
            entry.offset = cursor;
            entry.len = payload.len() as u64;
            entry.crc = crc32(payload);
            cursor = align_up(cursor + payload.len() as u64, page);
        }
        let file_len = cursor;

        let header = Header {
            version: self.format_version,
            page_size: self.page_size,
            element_count: doc.element_count() as u64,
            keyword_count: postings_input.len() as u64,
            label_count: doc.labels.len() as u64,
            sections,
        };

        // --- write ---------------------------------------------------
        let mut out = BufWriter::new(File::create(path)?);
        let header_bytes = header.encode();
        out.write_all(&header_bytes)?;
        pad_to(&mut out, page - header_bytes.len() as u64)?;
        for (entry, payload) in sections.iter().zip(payloads.iter()) {
            out.write_all(payload)?;
            pad_to(
                &mut out,
                align_up(entry.offset + entry.len, page) - (entry.offset + entry.len),
            )?;
        }
        out.flush()?;

        Ok(WriteSummary {
            file_len,
            element_count: header.element_count,
            keyword_count: header.keyword_count,
            label_count: header.label_count,
            postings_len: sections[Section::Postings as usize].len,
            elements_len: sections[Section::Elements as usize].len,
            page_size: self.page_size,
        })
    }
}

fn pad_to<W: Write>(out: &mut W, padding: u64) -> Result<(), PersistError> {
    const ZEROS: [u8; 4096] = [0u8; 4096];
    let mut remaining = padding;
    while remaining > 0 {
        let take = (remaining as usize).min(ZEROS.len());
        out.write_all(&ZEROS[..take])?;
        remaining -= take as u64;
    }
    Ok(())
}

fn encode_labels(doc: &ShreddedDoc) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, doc.labels.len() as u64);
    for label in &doc.labels {
        put_str(&mut out, label);
    }
    out
}

/// Element rows plus the offset array enabling O(log n) paged binary
/// search by Dewey code (rows are in document order).
fn encode_elements(doc: &ShreddedDoc) -> Result<(Vec<u8>, Vec<u8>), PersistError> {
    let own_features = own_content_features(doc);
    let mut offsets = Vec::with_capacity(doc.elements.len() * 8);
    let mut rows = Vec::new();
    for row in &doc.elements {
        offsets.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        let dewey: Dewey = row.dewey.parse().map_err(|_| PersistError::Corrupt {
            what: format!("element row holds invalid Dewey {:?}", row.dewey),
        })?;
        put_varint(&mut rows, dewey.components().len() as u64);
        for &c in dewey.components() {
            put_varint(&mut rows, u64::from(c));
        }
        put_varint(&mut rows, u64::from(row.label));
        put_varint(&mut rows, u64::from(row.level));
        put_varint(&mut rows, row.label_path.len() as u64);
        for &l in &row.label_path {
            put_varint(&mut rows, u64::from(l));
        }
        put_cid(&mut rows, &row.content_feature);
        put_cid(&mut rows, &own_features.get(&row.dewey).cloned());
    }
    Ok((offsets, rows))
}

/// Keyword dictionary (sorted by keyword, byte order), its offset array,
/// and the postings blob the dictionary points into. Format version 2
/// appends the keyword's document frequency to each entry.
fn encode_keywords(
    postings_input: &[(String, Vec<Dewey>)],
    format_version: u16,
) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let mut offsets = Vec::with_capacity(postings_input.len() * 8);
    let mut dict = Vec::new();
    let mut postings = Vec::new();
    for (keyword, deweys) in postings_input {
        offsets.extend_from_slice(&(dict.len() as u64).to_le_bytes());
        let run_start = postings.len() as u64;
        put_postings(&mut postings, deweys);
        let run_len = postings.len() as u64 - run_start;
        put_str(&mut dict, keyword);
        put_varint(&mut dict, deweys.len() as u64);
        put_varint(&mut dict, run_start);
        put_varint(&mut dict, run_len);
        if format_version >= 2 {
            put_varint(&mut dict, validrtf::plan::doc_frequency(deweys));
        }
    }
    (offsets, dict, postings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::fixtures::publications;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xks-persist-writer-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_page_aligned_sections() {
        let path = temp_path("aligned.xks");
        let summary = IndexWriter::new()
            .write_tree(&publications(), &path)
            .unwrap();
        assert_eq!(summary.page_size, 4096);
        assert_eq!(summary.file_len % 4096, 0);
        assert_eq!(
            summary.file_len,
            std::fs::metadata(&path).unwrap().len(),
            "summary length matches the file"
        );
        assert!(summary.element_count > 10);
        assert!(summary.keyword_count > 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_page_sizes() {
        assert!(IndexWriter::with_page_size(4096).is_ok());
        assert!(matches!(
            IndexWriter::with_page_size(1000),
            Err(PersistError::BadPageSize { found: 1000 })
        ));
    }

    #[test]
    fn header_round_trips_through_file() {
        let path = temp_path("header.xks");
        IndexWriter::with_page_size(512)
            .unwrap()
            .write_tree(&publications(), &path)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = Header::decode(&bytes).unwrap();
        assert_eq!(header.page_size, 512);
        for section in Section::all() {
            let entry = header.section(section);
            assert_eq!(entry.offset % 512, 0, "{section:?} aligned");
            let payload = &bytes[entry.offset as usize..(entry.offset + entry.len) as usize];
            assert_eq!(crc32(payload), entry.crc, "{section:?} crc");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
