//! Typed errors for the on-disk index.

use std::fmt;
use std::io;

/// Everything that can go wrong opening or reading an `.xks` index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file-system error.
    Io(io::Error),
    /// The file does not start with the `XKSP` magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not one this build understands.
    UnsupportedVersion {
        /// The version stored in the header.
        found: u16,
    },
    /// The header's page size is not a power of two in `[512, 1 MiB]`.
    BadPageSize {
        /// The page size stored in the header (or requested).
        found: u32,
    },
    /// The file ends before a section or record it promises.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// A stored checksum does not match the bytes on disk.
    ChecksumMismatch {
        /// Which section failed verification.
        section: &'static str,
    },
    /// Bytes decoded but described an impossible structure.
    Corrupt {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index I/O error: {e}"),
            PersistError::BadMagic { found } => {
                write!(f, "not an xks index (magic {found:02x?})")
            }
            PersistError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported index version {found} (this build reads version {})",
                    crate::format::VERSION
                )
            }
            PersistError::BadPageSize { found } => {
                write!(
                    f,
                    "invalid page size {found} (power of two in [512, 1048576])"
                )
            }
            PersistError::Truncated { what } => write!(f, "truncated index: {what}"),
            PersistError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            PersistError::Corrupt { what } => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PersistError::Truncated {
                what: "unexpected end of file",
            }
        } else {
            PersistError::Io(e)
        }
    }
}
