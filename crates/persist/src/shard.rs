//! Sharded corpora on disk: N independent `.xks` shard files tied
//! together by a CRC'd manifest.
//!
//! A monolithic `.xks` index bounds a corpus by what one file (and one
//! posting-merge stream) can serve. [`write_sharded`] instead
//! partitions the documents (`xks_store::partition` — contiguous
//! top-level ranges balanced by element rows, root rows in shard 0,
//! label table replicated) and writes one ordinary v1 `.xks` file per
//! shard plus a **shard manifest** (`.xksm`) recording the topology and
//! per-shard stats. [`ShardedCorpus::open`] validates the manifest
//! (magic, version, trailing CRC-32 — the same single-byte-flip
//! guarantees as the v1 header) and opens every shard through its own
//! [`IndexReader`] with its own buffer pool and caches.
//!
//! `ShardedCorpus` implements [`CorpusSource`] by delegating to a
//! [`validrtf::shards::ShardSet`] built over the readers: keyword
//! lookups concatenate per-shard postings in document order, element
//! lookups route to the owning shard. Hand the set to
//! [`validrtf::engine::SearchEngine::from_shard_set`] for
//! scatter-gather execution, or the corpus itself to `from_source` for
//! the serial routed path — both are byte-identical to an unsharded
//! index over the same corpus (pinned by
//! `tests/sharded_differential.rs` against the golden digest).
//!
//! See `FORMAT.md` §"Shard manifest" for the byte-level layout.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use validrtf::shards::ShardSet;
use validrtf::source::{CorpusSource, SourceElement, SourceError};
use xks_store::{partition, ShreddedDoc};
use xks_xmltree::Dewey;

use crate::codec::{crc32, get_str, get_varint, put_str, put_varint};
use crate::error::PersistError;
use crate::reader::{IndexReader, IndexStats, ReaderOptions};
use crate::writer::{IndexWriter, WriteSummary};

/// Manifest magic: "XKSM" (Xml Keyword Search, Manifest).
pub const MANIFEST_MAGIC: [u8; 4] = *b"XKSM";

/// Manifest format version this build writes. Version 2 appends
/// per-shard planner statistics to each entry: the shard's total
/// posting count and a keyword Bloom filter
/// ([`validrtf::plan::KeywordFilter`]) that lets scatter-gather skip
/// `(keyword, shard)` probes for shards a keyword provably misses.
/// Version 1 manifests (no stats, no filters) remain readable.
pub const MANIFEST_VERSION: u16 = 2;

/// Oldest manifest version this build still reads.
pub const MANIFEST_MIN_VERSION: u16 = 1;

/// Conventional file extension of a shard manifest.
pub const MANIFEST_EXT: &str = "xksm";

/// One shard's entry in the manifest: where it lives and what it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard file name, relative to the manifest's directory.
    pub file_name: String,
    /// First top-level document ordinal the shard owns (shard 0 also
    /// owns the corpus root's rows).
    pub first_doc: u32,
    /// Top-level documents in the shard.
    pub doc_count: u64,
    /// Element rows in the shard.
    pub element_count: u64,
    /// Distinct keywords in the shard.
    pub keyword_count: u64,
    /// Shard file length in bytes, as written.
    pub file_len: u64,
    /// Total postings (keyword-node occurrences) in the shard.
    /// Zero on entries decoded from v1 manifests.
    pub postings_total: u64,
    /// Bloom filter over the shard's keyword vocabulary — `false`
    /// from `may_contain` proves the shard has no postings for a
    /// keyword. `None` on entries decoded from v1 manifests (no
    /// skipping possible).
    pub keyword_filter: Option<validrtf::plan::KeywordFilter>,
}

/// The decoded shard manifest: corpus-wide totals plus one
/// [`ShardEntry`] per shard, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Element rows across all shards.
    pub total_elements: u64,
    /// Distinct keywords in the corpus (global union, which is ≤ the
    /// sum of per-shard counts — shards share vocabulary).
    pub total_keywords: u64,
    /// Labels in the (replicated) label dictionary.
    pub label_count: u64,
    /// Per-shard entries.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Serializes the manifest: magic, version, counts, entries, and a
    /// trailing CRC-32 over everything before it.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.shards.len() * 48);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.total_elements.to_le_bytes());
        out.extend_from_slice(&self.total_keywords.to_le_bytes());
        out.extend_from_slice(&self.label_count.to_le_bytes());
        for shard in &self.shards {
            put_str(&mut out, &shard.file_name);
            out.extend_from_slice(&shard.first_doc.to_le_bytes());
            put_varint(&mut out, shard.doc_count);
            put_varint(&mut out, shard.element_count);
            put_varint(&mut out, shard.keyword_count);
            put_varint(&mut out, shard.file_len);
            // v2 planner stats: postings total + keyword filter words
            // (0 words = no filter).
            put_varint(&mut out, shard.postings_total);
            let words = shard.keyword_filter.as_ref().map_or(&[][..], |f| f.words());
            put_varint(&mut out, words.len() as u64);
            for w in words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a manifest: magic, version, trailing CRC,
    /// and the shard topology (≥ 1 shard, ranges starting at 0 and
    /// strictly increasing). Every violation is a typed
    /// [`PersistError`] — a corrupted manifest can never open.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        const FIXED: usize = 4 + 2 + 2 + 4 + 8 + 8 + 8;
        if bytes.len() < FIXED + 4 {
            return Err(PersistError::Truncated {
                what: "file shorter than the shard manifest header",
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("sliced 4");
        if magic != MANIFEST_MAGIC {
            return Err(PersistError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("sliced 2"));
        if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let body = &bytes[..bytes.len() - 4];
        let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("sliced 4"));
        if crc32(body) != stored_crc {
            return Err(PersistError::ChecksumMismatch {
                section: "shard manifest",
            });
        }
        let shard_count = u32::from_le_bytes(bytes[8..12].try_into().expect("sliced 4"));
        let total_elements = u64::from_le_bytes(bytes[12..20].try_into().expect("sliced 8"));
        let total_keywords = u64::from_le_bytes(bytes[20..28].try_into().expect("sliced 8"));
        let label_count = u64::from_le_bytes(bytes[28..36].try_into().expect("sliced 8"));
        if shard_count == 0 {
            return Err(PersistError::Corrupt {
                what: "shard manifest declares zero shards".to_owned(),
            });
        }
        let plausible = body.len().saturating_sub(FIXED) + 1;
        let mut shards = Vec::with_capacity((shard_count as usize).min(plausible));
        let mut pos = FIXED;
        for i in 0..shard_count {
            let file_name = get_str(body, &mut pos)?;
            if pos + 4 > body.len() {
                return Err(PersistError::Truncated {
                    what: "shard manifest entry",
                });
            }
            let first_doc = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("sliced 4"));
            pos += 4;
            let doc_count = get_varint(body, &mut pos)?;
            let element_count = get_varint(body, &mut pos)?;
            let keyword_count = get_varint(body, &mut pos)?;
            let file_len = get_varint(body, &mut pos)?;
            let (postings_total, keyword_filter) = if version >= 2 {
                let postings_total = get_varint(body, &mut pos)?;
                let word_count = get_varint(body, &mut pos)? as usize;
                let filter = if word_count == 0 {
                    None
                } else {
                    if word_count > body.len().saturating_sub(pos) / 8 {
                        return Err(PersistError::Truncated {
                            what: "shard manifest keyword filter",
                        });
                    }
                    let mut words = Vec::with_capacity(word_count);
                    for _ in 0..word_count {
                        words.push(u64::from_le_bytes(
                            body[pos..pos + 8].try_into().expect("sliced 8"),
                        ));
                        pos += 8;
                    }
                    Some(
                        validrtf::plan::KeywordFilter::from_words(words).ok_or_else(|| {
                            PersistError::Corrupt {
                                what: format!("shard {i} has an invalid keyword-filter size"),
                            }
                        })?,
                    )
                };
                (postings_total, filter)
            } else {
                (0, None)
            };
            if file_name.is_empty() || file_name.contains(['/', '\\']) {
                return Err(PersistError::Corrupt {
                    what: format!("shard {i} has invalid file name {file_name:?}"),
                });
            }
            shards.push(ShardEntry {
                file_name,
                first_doc,
                doc_count,
                element_count,
                keyword_count,
                file_len,
                postings_total,
                keyword_filter,
            });
        }
        if shards[0].first_doc != 0 {
            return Err(PersistError::Corrupt {
                what: format!(
                    "shard 0 must own document 0, manifest says {}",
                    shards[0].first_doc
                ),
            });
        }
        if !shards.windows(2).all(|w| w[0].first_doc < w[1].first_doc) {
            return Err(PersistError::Corrupt {
                what: "shard document ranges are not strictly increasing".to_owned(),
            });
        }
        if shards.iter().map(|s| s.element_count).sum::<u64>() != total_elements {
            return Err(PersistError::Corrupt {
                what: "per-shard element counts do not sum to the manifest total".to_owned(),
            });
        }
        Ok(ShardManifest {
            total_elements,
            total_keywords,
            label_count,
            shards,
        })
    }
}

/// What [`write_sharded`] produced.
#[derive(Debug, Clone)]
pub struct ShardedWriteSummary {
    /// Where the manifest was written.
    pub manifest_path: PathBuf,
    /// The manifest, as written.
    pub manifest: ShardManifest,
    /// Per-shard writer summaries, in shard order.
    pub per_shard: Vec<WriteSummary>,
}

impl ShardedWriteSummary {
    /// Total bytes across the manifest's shard files.
    #[must_use]
    pub fn total_file_len(&self) -> u64 {
        self.per_shard.iter().map(|s| s.file_len).sum()
    }
}

/// Shard file name for shard `i` of the manifest at `manifest_path`
/// (e.g. `corpus.xksm` → `corpus-shard000.xks`).
fn shard_file_name(manifest_path: &Path, i: usize) -> String {
    let stem = manifest_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("corpus");
    format!("{stem}-shard{i:03}.xks")
}

/// Partitions `doc` into at most `shards` document-contiguous parts and
/// writes one `.xks` file per part next to the manifest at
/// `manifest_path` (`corpus.xksm` → `corpus-shard000.xks`, …).
/// The part count is clamped to the number of top-level documents, so
/// the manifest may record fewer shards than requested.
///
/// Every shard file is an ordinary v1 index — [`IndexReader::open`]
/// reads one in isolation — and the manifest is written **last**, so a
/// crash mid-build never leaves a manifest pointing at missing shards.
pub fn write_sharded(
    writer: &IndexWriter,
    doc: &ShreddedDoc,
    manifest_path: &Path,
    shards: usize,
) -> Result<ShardedWriteSummary, PersistError> {
    let dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));
    let parts = partition(doc, shards);
    let mut entries = Vec::with_capacity(parts.len());
    let mut per_shard = Vec::with_capacity(parts.len());
    for (i, part) in parts.iter().enumerate() {
        let file_name = shard_file_name(manifest_path, i);
        let summary = writer.write(&part.doc, &dir.join(&file_name))?;
        let postings_total = part.doc.keyword_stats().map(|(_, n)| n as u64).sum();
        let keyword_filter = Some(validrtf::plan::KeywordFilter::from_keywords(
            part.doc.keyword_stats().map(|(kw, _)| kw),
        ));
        entries.push(ShardEntry {
            file_name,
            first_doc: part.first_doc,
            doc_count: part.doc_count,
            element_count: summary.element_count,
            keyword_count: summary.keyword_count,
            file_len: summary.file_len,
            postings_total,
            keyword_filter,
        });
        per_shard.push(summary);
    }
    let manifest = ShardManifest {
        total_elements: doc.element_count() as u64,
        total_keywords: doc.vocabulary_size() as u64,
        label_count: doc.labels.len() as u64,
        shards: entries,
    };
    std::fs::write(manifest_path, manifest.encode())?;
    Ok(ShardedWriteSummary {
        manifest_path: manifest_path.to_owned(),
        manifest,
        per_shard,
    })
}

/// An opened sharded corpus: the manifest plus one [`IndexReader`] per
/// shard, glued into one logical [`CorpusSource`] (see the module
/// docs).
#[derive(Debug)]
pub struct ShardedCorpus {
    manifest: ShardManifest,
    readers: Vec<Arc<IndexReader>>,
    set: ShardSet,
}

impl ShardedCorpus {
    /// Opens a manifest and every shard it names with default reader
    /// options.
    pub fn open(manifest_path: &Path) -> Result<Self, PersistError> {
        Self::open_with(manifest_path, ReaderOptions::default())
    }

    /// Opens a manifest and every shard it names. Shard paths resolve
    /// relative to the manifest's directory; each shard file goes
    /// through the full v1 open-time validation (header CRC, section
    /// bounds, count cross-checks), and each shard's element count,
    /// keyword count, and file length are additionally cross-checked
    /// against the manifest, so a swapped-in foreign shard file is
    /// rejected at open even when internally valid.
    pub fn open_with(manifest_path: &Path, options: ReaderOptions) -> Result<Self, PersistError> {
        let manifest = ShardManifest::decode(&std::fs::read(manifest_path)?)?;
        let dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));
        let mut readers = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            let reader = IndexReader::open_with(&dir.join(&entry.file_name), options)?;
            let stats = reader.stats();
            for (what, found, promised) in [
                ("elements", reader.element_count(), entry.element_count),
                ("keywords", reader.keyword_count(), entry.keyword_count),
                ("bytes", stats.file_len, entry.file_len),
            ] {
                if found != promised {
                    return Err(PersistError::Corrupt {
                        what: format!(
                            "shard {} holds {found} {what} but the manifest promises {promised}",
                            entry.file_name,
                        ),
                    });
                }
            }
            readers.push(Arc::new(reader));
        }
        // v2 manifests carry per-shard keyword filters: wire them into
        // the set so scatter-gather can skip (keyword, shard) probes a
        // filter proves empty. v1 entries decode to `None` (no filter,
        // always probed) — same results, no skipping.
        let set = ShardSet::with_filters(
            readers
                .iter()
                .map(|r| Arc::clone(r) as Arc<dyn CorpusSource>)
                .collect(),
            manifest.shards.iter().map(|s| s.first_doc).collect(),
            manifest
                .shards
                .iter()
                .map(|s| s.keyword_filter.clone())
                .collect(),
        )
        .map_err(|e| PersistError::Corrupt {
            what: format!("manifest topology rejected: {e}"),
        })?;
        Ok(ShardedCorpus {
            manifest,
            readers,
            set,
        })
    }

    /// The decoded manifest.
    #[must_use]
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.readers.len()
    }

    /// The per-shard readers, in document order.
    #[must_use]
    pub fn readers(&self) -> &[Arc<IndexReader>] {
        &self.readers
    }

    /// A [`ShardSet`] over this corpus's readers — what
    /// [`validrtf::engine::SearchEngine::from_shard_set`] consumes for
    /// scatter-gather execution. Cheap: a clone of the set validated
    /// at open (`Arc` handles, not readers), so the returned set and
    /// this corpus share buffer pools and caches.
    #[must_use]
    pub fn shard_set(&self) -> ShardSet {
        self.set.clone()
    }

    /// Live per-shard stats, in shard order (see [`IndexReader::stats`]).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<IndexStats> {
        self.readers.iter().map(|r| r.stats()).collect()
    }

    /// Verifies every shard's section checksums
    /// ([`IndexReader::verify`] per shard; first failure wins).
    pub fn verify(&self) -> Result<(), PersistError> {
        for reader in &self.readers {
            reader.verify()?;
        }
        Ok(())
    }
}

impl xks_obs::MetricSource for ShardedCorpus {
    /// Contributes one gauge for the shard count plus every shard
    /// reader's full counter set under `<prefix>shard.<i>.` — so one
    /// snapshot shows per-shard buffer-pool and cache traffic side by
    /// side (shard load skew is exactly what per-shard counters exist
    /// to reveal).
    fn collect_into(&self, prefix: &str, snap: &mut xks_obs::Snapshot) {
        snap.gauge(format!("{prefix}shard_count"), self.readers.len() as u64);
        for (i, reader) in self.readers.iter().enumerate() {
            reader.collect_into(&format!("{prefix}shard.{i}."), snap);
        }
    }
}

impl CorpusSource for ShardedCorpus {
    fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
        self.set.keyword_deweys(keyword)
    }

    fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
        self.set.element(dewey)
    }

    fn element_label(&self, dewey: &Dewey) -> Option<u32> {
        self.set.element_label(dewey)
    }

    fn label_name(&self, label: u32) -> Option<String> {
        self.set.label_name(label)
    }

    fn node_count(&self) -> usize {
        self.manifest.total_elements as usize
    }

    fn keyword_stats(&self, keyword: &str) -> Option<validrtf::plan::KeywordStats> {
        self.set.keyword_stats(keyword)
    }

    fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
        self.set.try_keyword_deweys(keyword)
    }

    fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
        self.set.try_element(dewey)
    }

    fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
        self.set.try_element_label(dewey)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_store::shred;
    use xks_xmltree::fixtures::publications;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("xks-persist-shard-test")
            .join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_publications(name: &str, shards: usize) -> (ShardedWriteSummary, PathBuf) {
        let dir = temp_dir(name);
        let doc = shred(&publications());
        let path = dir.join("corpus.xksm");
        let summary = write_sharded(&IndexWriter::new(), &doc, &path, shards).unwrap();
        (summary, path)
    }

    #[test]
    fn manifest_round_trips() {
        let (summary, _) = write_publications("round-trip", 2);
        let bytes = summary.manifest.encode();
        assert_eq!(ShardManifest::decode(&bytes).unwrap(), summary.manifest);
        assert_eq!(summary.manifest.shards.len(), 2);
        assert_eq!(summary.manifest.shards[0].first_doc, 0);
        assert_eq!(
            summary.total_file_len(),
            summary.per_shard.iter().map(|s| s.file_len).sum::<u64>()
        );
    }

    /// Re-encodes a manifest in the v1 layout: same fixed header with
    /// `version = 1`, entries stopping after the `file_len` varint (no
    /// planner-stats tail), trailing CRC-32.
    fn encode_v1(manifest: &ShardManifest) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(manifest.shards.len() as u32).to_le_bytes());
        out.extend_from_slice(&manifest.total_elements.to_le_bytes());
        out.extend_from_slice(&manifest.total_keywords.to_le_bytes());
        out.extend_from_slice(&manifest.label_count.to_le_bytes());
        for shard in &manifest.shards {
            put_str(&mut out, &shard.file_name);
            out.extend_from_slice(&shard.first_doc.to_le_bytes());
            put_varint(&mut out, shard.doc_count);
            put_varint(&mut out, shard.element_count);
            put_varint(&mut out, shard.keyword_count);
            put_varint(&mut out, shard.file_len);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn v1_manifest_still_opens_without_filters() {
        let (summary, path) = write_publications("v1-compat", 2);

        // Decode of hand-built v1 bytes: topology intact, planner
        // stats absent (zero postings, no filter).
        let v1_bytes = encode_v1(&summary.manifest);
        let decoded = ShardManifest::decode(&v1_bytes).unwrap();
        assert_eq!(decoded.total_elements, summary.manifest.total_elements);
        assert_eq!(decoded.shards.len(), summary.manifest.shards.len());
        for (v1, v2) in decoded.shards.iter().zip(&summary.manifest.shards) {
            assert_eq!(v1.file_name, v2.file_name);
            assert_eq!(v1.first_doc, v2.first_doc);
            assert_eq!(v1.element_count, v2.element_count);
            assert_eq!(v1.postings_total, 0);
            assert_eq!(v1.keyword_filter, None);
            assert!(v2.keyword_filter.is_some());
            assert!(v2.postings_total > 0);
        }

        // A corpus opened through the v1 manifest answers identically
        // to the v2 one — no filters just means no shard skipping.
        let v2_corpus = ShardedCorpus::open(&path).unwrap();
        std::fs::write(&path, &v1_bytes).unwrap();
        let v1_corpus = ShardedCorpus::open(&path).unwrap();
        let set = v1_corpus.shard_set();
        for kw in ["liu", "keyword", "xml", "unobtainium"] {
            assert_eq!(set.shard_skips(kw), 0, "{kw}: v1 manifest has no filters");
            assert_eq!(
                v1_corpus.keyword_deweys(kw),
                v2_corpus.keyword_deweys(kw),
                "{kw}"
            );
            // Per-shard stats come from the shard readers, not the
            // manifest, so the planner still sees sealed stats.
            assert_eq!(
                v1_corpus.keyword_stats(kw),
                v2_corpus.keyword_stats(kw),
                "{kw}"
            );
        }
        let engine = validrtf::engine::SearchEngine::from_shard_set(set);
        let response = engine
            .execute(&validrtf::SearchRequest::parse("liu keyword").unwrap())
            .unwrap();
        assert_eq!(response.hits.len(), 2);
        assert_eq!(response.stats.shards_skipped, 0);
    }

    #[test]
    fn sharded_corpus_matches_memory_backend() {
        let (_, path) = write_publications("differential", 3);
        let corpus = ShardedCorpus::open(&path).unwrap();
        assert_eq!(corpus.shard_count(), 3);
        let doc = shred(&publications());
        let memory = validrtf::source::MemoryCorpus::new(doc.clone());
        for kw in ["liu", "keyword", "xml", "publications", "unobtainium"] {
            assert_eq!(
                corpus.try_keyword_deweys(kw).unwrap(),
                memory.keyword_deweys(kw),
                "{kw}"
            );
        }
        for row in &doc.elements {
            let dewey: Dewey = row.dewey.parse().unwrap();
            assert_eq!(corpus.element(&dewey), memory.element(&dewey), "{dewey}");
        }
        assert_eq!(corpus.node_count(), memory.node_count());
        assert_eq!(corpus.label_name(0), memory.label_name(0));
        corpus.verify().unwrap();
    }

    #[test]
    fn every_shard_is_a_valid_standalone_index() {
        let (summary, path) = write_publications("standalone", 2);
        let dir = path.parent().unwrap();
        let mut elements = 0u64;
        for entry in &summary.manifest.shards {
            let reader = IndexReader::open(&dir.join(&entry.file_name)).unwrap();
            assert_eq!(reader.element_count(), entry.element_count);
            assert_eq!(reader.keyword_count(), entry.keyword_count);
            reader.verify().unwrap();
            elements += reader.element_count();
        }
        assert_eq!(elements, summary.manifest.total_elements);
    }

    #[test]
    fn corrupted_manifest_is_rejected_typed() {
        let (_, path) = write_publications("corrupt", 2);
        let clean = std::fs::read(&path).unwrap();

        // Any single byte flip must be caught (magic, version, or CRC).
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x20;
            let err = ShardManifest::decode(&bytes).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::BadMagic { .. }
                        | PersistError::UnsupportedVersion { .. }
                        | PersistError::ChecksumMismatch { .. }
                        | PersistError::Truncated { .. }
                        | PersistError::Corrupt { .. }
                ),
                "flip at {i} slipped through: {err}"
            );
        }

        // Truncation.
        assert!(matches!(
            ShardManifest::decode(&clean[..clean.len() - 3]),
            Err(PersistError::ChecksumMismatch { .. } | PersistError::Truncated { .. })
        ));

        // A re-sealed manifest with a broken topology is still typed.
        let (summary, _) = write_publications("corrupt-topo", 2);
        let mut manifest = summary.manifest.clone();
        manifest.shards[1].first_doc = 0;
        assert!(matches!(
            ShardManifest::decode(&manifest.encode()),
            Err(PersistError::Corrupt { .. })
        ));
        let mut manifest = summary.manifest.clone();
        manifest.total_elements += 1;
        assert!(matches!(
            ShardManifest::decode(&manifest.encode()),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_shard_file_fails_open() {
        let (summary, path) = write_publications("missing-shard", 2);
        let dir = path.parent().unwrap().to_owned();
        std::fs::remove_file(dir.join(&summary.manifest.shards[1].file_name)).unwrap();
        assert!(matches!(
            ShardedCorpus::open(&path),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn mismatched_shard_file_fails_open() {
        // Swap shard 1 for a foreign index: the manifest cross-check
        // must reject it even though the file itself is valid.
        let (summary, path) = write_publications("swapped-shard", 2);
        let dir = path.parent().unwrap().to_owned();
        IndexWriter::new()
            .write_tree(
                &xks_xmltree::parse("<r><a>alien</a></r>").unwrap(),
                &dir.join(&summary.manifest.shards[1].file_name),
            )
            .unwrap();
        assert!(matches!(
            ShardedCorpus::open(&path),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn shard_count_clamps_to_documents() {
        let (summary, path) = write_publications("clamped", 64);
        assert!(summary.manifest.shards.len() <= 64);
        let corpus = ShardedCorpus::open(&path).unwrap();
        assert_eq!(corpus.shard_count(), summary.manifest.shards.len());
        // Engine over the clamped set still answers.
        let engine = validrtf::engine::SearchEngine::from_shard_set(corpus.shard_set());
        let response = engine
            .execute(&validrtf::SearchRequest::parse("liu keyword").unwrap())
            .unwrap();
        assert_eq!(response.hits.len(), 2);
    }
}
