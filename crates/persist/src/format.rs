//! The `.xks` container layout: header, section directory, constants.
//!
//! See `crates/persist/FORMAT.md` for the byte-level specification. In
//! short: a fixed header in page 0 (magic, version, page size, counts,
//! section directory with per-section CRC-32s, header CRC-32), followed
//! by six page-aligned sections:
//!
//! | id | section          | contents                                    |
//! |----|------------------|---------------------------------------------|
//! | 0  | labels           | label dictionary, id-ordered                 |
//! | 1  | element offsets  | `u64` offset per element row (rel. to §2)   |
//! | 2  | elements         | Dewey, label, level, label path, features    |
//! | 3  | keyword offsets  | `u64` offset per dict entry (rel. to §4)    |
//! | 4  | keyword dict     | keyword, posting count, postings (off, len)  |
//! | 5  | postings         | prefix-delta varint Dewey runs               |

use crate::codec::crc32;
use crate::error::PersistError;

/// File magic: "XKSP" (Xml Keyword Search, Paged).
pub const MAGIC: [u8; 4] = *b"XKSP";

/// Format version this build writes by default. Version 2 appends a
/// per-keyword document-frequency varint to each keyword-dict entry
/// (planner statistics); version 1 files (no stored stats) remain fully
/// readable, with stats derived lazily from the postings on demand.
pub const VERSION: u16 = 2;

/// Oldest format version this build still reads.
pub const MIN_VERSION: u16 = 1;

/// Default page size for writer and buffer pool.
pub const DEFAULT_PAGE_SIZE: u32 = 4096;

/// Smallest allowed page size (the header must fit in page 0).
pub const MIN_PAGE_SIZE: u32 = 512;

/// Largest allowed page size.
pub const MAX_PAGE_SIZE: u32 = 1 << 20;

/// Number of sections in the directory.
pub const SECTION_COUNT: usize = 6;

/// Section indices into [`Header::sections`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Section {
    /// Label dictionary.
    Labels = 0,
    /// Element-row offset array.
    ElementOffsets = 1,
    /// Element rows.
    Elements = 2,
    /// Keyword-dict-entry offset array.
    KeywordOffsets = 3,
    /// Keyword dictionary entries.
    KeywordDict = 4,
    /// Posting-list blob.
    Postings = 5,
}

impl Section {
    /// The section's display name (used in error messages).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Section::Labels => "labels",
            Section::ElementOffsets => "element-offsets",
            Section::Elements => "elements",
            Section::KeywordOffsets => "keyword-offsets",
            Section::KeywordDict => "keyword-dict",
            Section::Postings => "postings",
        }
    }

    /// All sections in directory order.
    #[must_use]
    pub fn all() -> [Section; SECTION_COUNT] {
        [
            Section::Labels,
            Section::ElementOffsets,
            Section::Elements,
            Section::KeywordOffsets,
            Section::KeywordDict,
            Section::Postings,
        ]
    }
}

/// One directory entry: where a section lives and its checksum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionEntry {
    /// Absolute byte offset of the section start (page-aligned).
    pub offset: u64,
    /// Payload length in bytes (excluding alignment padding).
    pub len: u64,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

/// Size of one encoded directory entry.
const SECTION_ENTRY_LEN: usize = 8 + 8 + 4;

/// Size of the encoded header: fixed fields + directory + trailing CRC.
pub const HEADER_LEN: usize = 4 + 2 + 2 + 4 + 8 + 8 + 8 + SECTION_COUNT * SECTION_ENTRY_LEN + 4;

/// The decoded header of an `.xks` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Format version of the file ([`MIN_VERSION`]..=[`VERSION`]).
    /// Determines the keyword-dict entry layout (v2 stores per-keyword
    /// document frequencies; v1 does not).
    pub version: u16,
    /// Page size used for alignment and the buffer pool.
    pub page_size: u32,
    /// Number of element rows.
    pub element_count: u64,
    /// Number of distinct keywords.
    pub keyword_count: u64,
    /// Number of labels in the dictionary.
    pub label_count: u64,
    /// The section directory.
    pub sections: [SectionEntry; SECTION_COUNT],
}

/// Validates a page size (power of two within bounds).
pub fn check_page_size(page_size: u32) -> Result<(), PersistError> {
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) || !page_size.is_power_of_two() {
        return Err(PersistError::BadPageSize { found: page_size });
    }
    Ok(())
}

impl Header {
    /// Serializes the header (exactly [`HEADER_LEN`] bytes, CRC last).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&self.page_size.to_le_bytes());
        out.extend_from_slice(&self.element_count.to_le_bytes());
        out.extend_from_slice(&self.keyword_count.to_le_bytes());
        out.extend_from_slice(&self.label_count.to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&s.offset.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
            out.extend_from_slice(&s.crc.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        out
    }

    /// Parses and validates a header: magic, version, page size, CRC.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated {
                what: "file shorter than the header",
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("sliced 4");
        if magic != MAGIC {
            return Err(PersistError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("sliced 2"));
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let stored_crc = u32::from_le_bytes(
            bytes[HEADER_LEN - 4..HEADER_LEN]
                .try_into()
                .expect("sliced 4"),
        );
        if crc32(&bytes[..HEADER_LEN - 4]) != stored_crc {
            return Err(PersistError::ChecksumMismatch { section: "header" });
        }
        let page_size = u32::from_le_bytes(bytes[8..12].try_into().expect("sliced 4"));
        check_page_size(page_size)?;
        let element_count = u64::from_le_bytes(bytes[12..20].try_into().expect("sliced 8"));
        let keyword_count = u64::from_le_bytes(bytes[20..28].try_into().expect("sliced 8"));
        let label_count = u64::from_le_bytes(bytes[28..36].try_into().expect("sliced 8"));
        let mut sections = [SectionEntry::default(); SECTION_COUNT];
        let mut pos = 36;
        for s in &mut sections {
            s.offset = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("sliced 8"));
            s.len = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("sliced 8"));
            s.crc = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("sliced 4"));
            pos += SECTION_ENTRY_LEN;
        }
        Ok(Header {
            version,
            page_size,
            element_count,
            keyword_count,
            label_count,
            sections,
        })
    }

    /// The directory entry for `section`.
    #[must_use]
    pub fn section(&self, section: Section) -> SectionEntry {
        self.sections[section as usize]
    }
}

/// Rounds `offset` up to the next multiple of `page_size`.
#[must_use]
pub fn align_up(offset: u64, page_size: u64) -> u64 {
    offset.div_ceil(page_size) * page_size
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        let mut sections = [SectionEntry::default(); SECTION_COUNT];
        for (i, s) in sections.iter_mut().enumerate() {
            s.offset = (i as u64 + 1) * 4096;
            s.len = 100 + i as u64;
            s.crc = 0xAB00 + i as u32;
        }
        Header {
            version: VERSION,
            page_size: 4096,
            element_count: 12,
            keyword_count: 34,
            label_count: 5,
            sections,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let h = header();
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = header().encode();
        bytes[0] = b'Z';
        assert!(matches!(
            Header::decode(&bytes),
            Err(PersistError::BadMagic { .. })
        ));
    }

    #[test]
    fn v1_headers_still_decode() {
        let mut h = header();
        h.version = 1;
        let decoded = Header::decode(&h.encode()).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(decoded.version, 1);
    }

    #[test]
    fn wrong_version_detected() {
        let mut h = header().encode();
        h[4] = 99;
        // Re-seal the CRC so only the version is wrong.
        let crc = crc32(&h[..HEADER_LEN - 4]).to_le_bytes();
        h[HEADER_LEN - 4..].copy_from_slice(&crc);
        assert!(matches!(
            Header::decode(&h),
            Err(PersistError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn header_crc_detects_flip() {
        let mut bytes = header().encode();
        bytes[20] ^= 0x40; // flip a bit inside keyword_count
        assert!(matches!(
            Header::decode(&bytes),
            Err(PersistError::ChecksumMismatch { section: "header" })
        ));
    }

    #[test]
    fn truncated_header_detected() {
        let bytes = header().encode();
        assert!(matches!(
            Header::decode(&bytes[..HEADER_LEN - 10]),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn page_size_validation() {
        assert!(check_page_size(4096).is_ok());
        assert!(check_page_size(512).is_ok());
        for bad in [0u32, 100, 511, 513, 3000, 2 << 20] {
            assert!(matches!(
                check_page_size(bad),
                Err(PersistError::BadPageSize { .. })
            ));
        }
    }

    #[test]
    fn align_up_math() {
        assert_eq!(align_up(0, 4096), 0);
        assert_eq!(align_up(1, 4096), 4096);
        assert_eq!(align_up(4096, 4096), 4096);
        assert_eq!(align_up(4097, 4096), 8192);
    }
}
