//! Deterministic fault injection for the durability paths.
//!
//! Every write/fsync boundary in the WAL ([`crate::wal`]) and the
//! compaction pipeline ([`crate::mutable`]) consults an [`Injector`]
//! before touching the file system. A production corpus runs with
//! [`Injector::none`] (one relaxed atomic load per boundary); the
//! crash-matrix tests instead enumerate every boundary with
//! [`Injector::recording`], then re-run the same operation once per
//! `(boundary, fault kind)` pair with [`Injector::arm`] and assert
//! recovery lands on the pre-op or post-op corpus — never a third
//! state.
//!
//! Three fault kinds cover the failure modes a disk can hand back:
//!
//! * [`FaultKind::Error`] — the boundary fails once with an I/O error
//!   and the process *continues* (a transient `EIO`). Later boundaries
//!   succeed; the caller must leave the corpus consistent.
//! * [`FaultKind::ShortWrite`] — a write persists only a prefix of its
//!   buffer, then the process dies (a torn write: the classic
//!   power-loss-mid-sector). Only write boundaries tear; on other
//!   boundaries this degrades to [`FaultKind::Crash`].
//! * [`FaultKind::Crash`] — the boundary and **every boundary after
//!   it** fail (the process is dead). Recovery happens at the next
//!   open.
//!
//! One honest limitation: faults fire on the write path, but bytes
//! already handed to the OS stay in the page cache — an in-process
//! harness cannot un-write them. The matrix therefore validates
//! recovery from every *post-write* on-disk state; losing un-fsynced
//! data needs a block-device simulator and is out of scope (the fsync
//! ordering that makes such loss safe is documented and tested
//! structurally in `docs/DURABILITY.md`).

use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::pool::lock_unpoisoned;

/// What an armed [`Injector`] does when its target boundary is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this one boundary with an I/O error; later boundaries
    /// succeed (a transient error the caller must survive).
    Error,
    /// Persist only a prefix of the write, then die (torn write).
    ShortWrite,
    /// Fail this boundary and every boundary after it (process death).
    Crash,
}

#[derive(Debug, Default)]
struct InjectorState {
    /// `Some((boundary index, kind))` when armed.
    armed: Option<(u64, FaultKind)>,
    /// Boundaries seen so far (the next boundary gets this index).
    next_op: u64,
    /// Set once a `Crash`/`ShortWrite` fault fires: every later
    /// boundary fails.
    dead: bool,
    /// Whether the armed fault has fired at least once.
    fired: bool,
    /// Boundary labels, recorded when `record` is set.
    labels: Vec<String>,
    record: bool,
}

/// A shared, thread-safe fault plan consulted at every durability
/// boundary. Cloning shares the plan (and the boundary counter).
#[derive(Debug, Clone)]
pub struct Injector {
    state: Arc<Mutex<InjectorState>>,
    /// Fast path: `false` means every boundary is a no-op check.
    active: Arc<AtomicBool>,
}

/// What a write boundary should do, as decided by the injector.
enum WriteDirective {
    /// Perform the full write.
    Full,
    /// Persist only this many bytes, then report the injected error.
    Short(usize),
}

impl Default for Injector {
    fn default() -> Self {
        Injector::none()
    }
}

impl Injector {
    fn with_state(state: InjectorState, active: bool) -> Self {
        Injector {
            state: Arc::new(Mutex::new(state)),
            active: Arc::new(AtomicBool::new(active)),
        }
    }

    /// An injector that never fires — the production configuration.
    #[must_use]
    pub fn none() -> Self {
        Injector::with_state(InjectorState::default(), false)
    }

    /// An injector that fires nothing but records every boundary label
    /// it sees — the matrix-enumeration pass.
    #[must_use]
    pub fn recording() -> Self {
        Injector::with_state(
            InjectorState {
                record: true,
                ..InjectorState::default()
            },
            true,
        )
    }

    /// An injector armed to inject `kind` at the `n`-th boundary
    /// (0-based, in the order [`Injector::recording`] reported).
    #[must_use]
    pub fn arm(n: u64, kind: FaultKind) -> Self {
        Injector::with_state(
            InjectorState {
                armed: Some((n, kind)),
                ..InjectorState::default()
            },
            true,
        )
    }

    /// Number of boundaries consulted so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        lock_unpoisoned(&self.state).next_op
    }

    /// True once the armed fault has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        lock_unpoisoned(&self.state).fired
    }

    /// The boundary labels recorded by a [`Injector::recording`] pass,
    /// in hit order.
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        lock_unpoisoned(&self.state).labels.clone()
    }

    /// Consults the plan at a non-write boundary (fsync, rename,
    /// directory sync). `ShortWrite` degrades to `Crash` here — there
    /// is no buffer to tear.
    pub fn check(&self, label: &str) -> io::Result<()> {
        match self.enter(label, 0)? {
            WriteDirective::Full | WriteDirective::Short(_) => Ok(()),
        }
    }

    /// Consults the plan at a write boundary carrying `len` bytes.
    fn enter(&self, label: &str, len: usize) -> io::Result<WriteDirective> {
        if !self.active.load(Ordering::Relaxed) {
            return Ok(WriteDirective::Full);
        }
        let mut state = lock_unpoisoned(&self.state);
        let op = state.next_op;
        state.next_op += 1;
        if state.record {
            state.labels.push(label.to_owned());
        }
        if state.dead {
            return Err(injected(format!("process dead at {label} (op {op})")));
        }
        match state.armed {
            Some((n, kind)) if n == op => {
                state.fired = true;
                match kind {
                    FaultKind::Error => Err(injected(format!("I/O error at {label} (op {op})"))),
                    FaultKind::ShortWrite if len > 0 => {
                        state.dead = true;
                        Ok(WriteDirective::Short(len / 2))
                    }
                    FaultKind::ShortWrite | FaultKind::Crash => {
                        state.dead = true;
                        Err(injected(format!("crash at {label} (op {op})")))
                    }
                }
            }
            _ => Ok(WriteDirective::Full),
        }
    }
}

fn injected(msg: String) -> io::Error {
    io::Error::other(format!("injected fault: {msg}"))
}

/// A file handle whose writes and syncs pass through an [`Injector`].
///
/// Only the durability-critical operations are wrapped; reads go
/// through ordinary handles (fault recovery is about surviving failed
/// *writes*).
#[derive(Debug)]
pub struct FaultFile {
    file: File,
    injector: Injector,
    label: String,
}

impl FaultFile {
    /// Creates (truncating) a file at `path`.
    pub fn create(path: &Path, injector: Injector, label: &str) -> io::Result<Self> {
        Ok(FaultFile {
            file: File::create(path)?,
            injector,
            label: label.to_owned(),
        })
    }

    /// Opens an existing file read-write (append position is the
    /// caller's business via [`FaultFile::set_len`] and sequential
    /// writes).
    pub fn open_rw(path: &Path, injector: Injector, label: &str) -> io::Result<Self> {
        Ok(FaultFile {
            file: File::options().read(true).write(true).open(path)?,
            injector,
            label: label.to_owned(),
        })
    }

    /// Writes the whole buffer, or injects: a short write persists a
    /// prefix and then fails (leaving a genuinely torn tail on disk).
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self
            .injector
            .enter(&format!("{}.write", self.label), buf.len())?
        {
            WriteDirective::Full => self.file.write_all(buf),
            WriteDirective::Short(n) => {
                self.file.write_all(&buf[..n])?;
                let _ = self.file.sync_data(); // make the torn prefix durable
                Err(injected(format!(
                    "short write at {}.write ({n} of {} bytes)",
                    self.label,
                    buf.len()
                )))
            }
        }
    }

    /// `fdatasync` through the injector.
    pub fn sync_data(&self) -> io::Result<()> {
        self.injector.check(&format!("{}.fsync", self.label))?;
        self.file.sync_data()
    }

    /// Truncates (or extends) the file — the torn-tail repair path.
    /// Deliberately *not* injected: it runs while handling a failure,
    /// and the caller treats its error as poisoning.
    pub fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    /// Seeks the underlying handle to `pos` from the start.
    pub fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        use std::io::Seek as _;
        self.file.seek(io::SeekFrom::Start(pos)).map(|_| ())
    }
}

/// Renames `from` over `to` through the injector (the atomic-swap
/// boundary of manifest and WAL replacement).
pub fn fault_rename(injector: &Injector, label: &str, from: &Path, to: &Path) -> io::Result<()> {
    injector.check(label)?;
    std::fs::rename(from, to)
}

/// Fsyncs the directory containing `path` through the injector, making
/// a just-renamed entry durable. A file system that cannot open
/// directories for sync (some non-Unix targets) degrades to a no-op.
pub fn fault_sync_dir(injector: &Injector, label: &str, path: &Path) -> io::Result<()> {
    injector.check(label)?;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        if let Ok(handle) = File::open(dir) {
            handle.sync_all()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let inj = Injector::none();
        for _ in 0..100 {
            inj.check("x").unwrap();
        }
        assert!(!inj.fired());
        assert_eq!(inj.ops(), 0, "inactive injector skips the counter");
    }

    #[test]
    fn recording_captures_labels_in_order() {
        let inj = Injector::recording();
        inj.check("a").unwrap();
        inj.check("b").unwrap();
        assert_eq!(inj.labels(), ["a", "b"]);
        assert_eq!(inj.ops(), 2);
    }

    #[test]
    fn error_fires_once_then_recovers() {
        let inj = Injector::arm(1, FaultKind::Error);
        inj.check("a").unwrap();
        assert!(inj.check("b").is_err());
        inj.check("c").unwrap();
        assert!(inj.fired());
    }

    #[test]
    fn crash_kills_every_later_boundary() {
        let inj = Injector::arm(0, FaultKind::Crash);
        assert!(inj.check("a").is_err());
        assert!(inj.check("b").is_err());
        assert!(inj.check("c").is_err());
    }

    #[test]
    fn short_write_tears_the_file_then_dies() {
        let dir = std::env::temp_dir().join("xks-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        let inj = Injector::arm(0, FaultKind::ShortWrite);
        let mut file = FaultFile::create(&path, inj.clone(), "wal").unwrap();
        let err = file.write_all(&[7u8; 10]).unwrap_err();
        assert!(err.to_string().contains("short write"));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 5);
        assert!(file.write_all(&[7u8; 10]).is_err(), "dead after tearing");
        std::fs::remove_file(&path).unwrap();
    }
}
