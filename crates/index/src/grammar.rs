//! The query operator grammar: phrases, exclusions, label filters.
//!
//! [`Query`] is the *lowered* form the retrieval pipeline consumes — a
//! flat, deduplicated keyword list whose positions are bit indexes.
//! [`QuerySpec`] is the richer surface grown on top of it:
//!
//! | syntax        | meaning                                            |
//! |---------------|----------------------------------------------------|
//! | `word`        | plain keyword (exactly [`Query::parse`] semantics)  |
//! | `"w1 w2"`     | phrase: the words must co-occur in one keyword node |
//! | `-word`       | exclusion: no match may contain the word            |
//! | `label:word`  | the word must be matched by a node labeled `label`  |
//!
//! Parsing **lowers** every positive term (plain, phrase, labeled) into
//! the keyword list of an ordinary [`Query`] — stage 1–4 of the
//! pipeline run unchanged — and records the operators as *post-filter*
//! constraints ([`QuerySpec::phrases`], [`QuerySpec::exclusions`],
//! [`QuerySpec::label_filters`]) that the execution layer applies to
//! the finished fragments. A plain keyword query therefore lowers to
//! exactly the same [`Query`] the legacy path parsed, byte-identical
//! results included.
//!
//! Errors are typed ([`ParseError`]); terms the parser drops or
//! rewrites (duplicates, case folding) are reported in the
//! [`ParseReport`] instead of silently vanishing. [`QuerySpec`]
//! round-trips through its [`fmt::Display`] rendering:
//! `parse(display(spec))` always reproduces `spec`.

use std::fmt;

use xks_xmltree::tokenizer::normalize_keyword;

use crate::query::{Query, QueryError, MAX_KEYWORDS};

/// One normalized term of the operator grammar, in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A plain keyword.
    Word(String),
    /// A quoted phrase: distinct keywords that must co-occur in one
    /// keyword node (normally two or more; a one-word phrase survives
    /// only when unquoting would change how the word re-parses).
    Phrase(Vec<String>),
    /// An excluded keyword (`-word`).
    Exclude(String),
    /// A label-constrained keyword (`label:word`).
    Labeled {
        /// The required element label (normalized; matched
        /// case-insensitively against corpus labels).
        label: String,
        /// The keyword.
        word: String,
    },
}

/// A label constraint on one query keyword: the keyword at
/// [`LabelFilter::position`] must be matched by at least one keyword
/// node whose element label equals [`LabelFilter::label`]
/// (case-insensitively).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelFilter {
    /// Bit position of the constrained keyword in the lowered
    /// [`Query`].
    pub position: usize,
    /// The required label, normalized to lowercase.
    pub label: String,
}

/// What the parser did to terms it did not take verbatim — the
/// "reported dropped/normalized terms" contract: nothing is silently
/// thrown away.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseReport {
    /// Raw terms dropped as duplicates of an earlier term.
    pub dropped: Vec<String>,
    /// `(raw, normalized)` pairs for terms the normalizer rewrote
    /// (case folding, surrounding whitespace).
    pub normalized: Vec<(String, String)>,
}

impl ParseReport {
    /// True when every input term survived verbatim.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.dropped.is_empty() && self.normalized.is_empty()
    }
}

/// Typed failures of the operator grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No positive keywords after normalization (exclusions alone
    /// cannot drive a search).
    Empty,
    /// More than [`MAX_KEYWORDS`] distinct positive keywords.
    TooManyKeywords(usize),
    /// More than [`MAX_KEYWORDS`] distinct exclusions. Exclusions
    /// don't consume keyword bit positions, but each one costs a
    /// posting lookup at execution time, so they are bounded the same
    /// way — an unbounded `-w1 -w2 …` list would be a per-request
    /// amplification vector against a disk backend.
    TooManyExclusions(usize),
    /// A `"` opened a phrase that never closes.
    UnclosedPhrase,
    /// A quoted phrase holds no keywords (`""` or only whitespace).
    EmptyPhrase,
    /// A bare `-` with no keyword to exclude.
    EmptyExclusion,
    /// `-"…"` — phrases cannot be excluded.
    ExcludedPhrase,
    /// `:word` — a label filter with no label.
    MissingLabel {
        /// The word the filter would have constrained.
        word: String,
    },
    /// `label:` — a label filter with no keyword.
    MissingLabelWord {
        /// The label with no word.
        label: String,
    },
    /// A keyword is both required and excluded.
    Contradiction {
        /// The contradicting keyword.
        word: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "query has no keywords"),
            ParseError::TooManyKeywords(n) => {
                write!(f, "query has {n} keywords; the maximum is {MAX_KEYWORDS}")
            }
            ParseError::TooManyExclusions(n) => {
                write!(f, "query has {n} exclusions; the maximum is {MAX_KEYWORDS}")
            }
            ParseError::UnclosedPhrase => write!(f, "unclosed \" in phrase"),
            ParseError::EmptyPhrase => write!(f, "empty phrase \"\""),
            ParseError::EmptyExclusion => write!(f, "`-` with no keyword to exclude"),
            ParseError::ExcludedPhrase => {
                write!(f, "phrases cannot be excluded (drop the `-` or the quotes)")
            }
            ParseError::MissingLabel { word } => {
                write!(f, "label filter `:{word}` is missing its label")
            }
            ParseError::MissingLabelWord { label } => {
                write!(f, "label filter `{label}:` is missing its keyword")
            }
            ParseError::Contradiction { word } => {
                write!(f, "keyword {word:?} is both required and excluded")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Empty => ParseError::Empty,
            QueryError::TooManyKeywords(n) => ParseError::TooManyKeywords(n),
        }
    }
}

/// A parsed operator-grammar query: the lowered flat [`Query`] plus the
/// post-filter constraints and the parse report.
///
/// Equality ignores the [`ParseReport`] (a spec re-parsed from its own
/// [`fmt::Display`] output has nothing left to normalize but denotes
/// the same search).
#[derive(Debug, Clone)]
pub struct QuerySpec {
    terms: Vec<Term>,
    query: Query,
    phrases: Vec<Vec<usize>>,
    label_filters: Vec<LabelFilter>,
    exclusions: Vec<String>,
    report: ParseReport,
}

impl PartialEq for QuerySpec {
    fn eq(&self, other: &Self) -> bool {
        self.terms == other.terms
    }
}

impl Eq for QuerySpec {}

impl QuerySpec {
    /// Parses the operator grammar. See the module docs for the syntax.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut builder = SpecBuilder::default();
        for raw in RawTerms::new(text) {
            builder.push(raw?)?;
        }
        builder.finish()
    }

    /// Wraps an already-lowered [`Query`] as a plain-keyword spec (no
    /// operators) — the adapter for callers holding a `Query`.
    #[must_use]
    pub fn from_query(query: Query) -> Self {
        QuerySpec {
            terms: query
                .keywords()
                .iter()
                .map(|w| Term::Word(w.clone()))
                .collect(),
            query,
            phrases: Vec::new(),
            label_filters: Vec::new(),
            exclusions: Vec::new(),
            report: ParseReport::default(),
        }
    }

    /// The normalized terms, in input order.
    #[must_use]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The lowered flat query (all positive keywords, bit-indexed).
    #[must_use]
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Phrase groups as sorted keyword positions into
    /// [`QuerySpec::query`]: each group's keywords must co-occur in one
    /// keyword node.
    #[must_use]
    pub fn phrases(&self) -> &[Vec<usize>] {
        &self.phrases
    }

    /// The label constraints.
    #[must_use]
    pub fn label_filters(&self) -> &[LabelFilter] {
        &self.label_filters
    }

    /// The excluded keywords (normalized).
    #[must_use]
    pub fn exclusions(&self) -> &[String] {
        &self.exclusions
    }

    /// What the parser dropped or rewrote.
    #[must_use]
    pub fn report(&self) -> &ParseReport {
        &self.report
    }

    /// True when the spec carries no operators — the pipeline needs no
    /// post-filter stage and behaves exactly like the legacy flat path.
    #[must_use]
    pub fn is_plain(&self) -> bool {
        self.phrases.is_empty() && self.label_filters.is_empty() && self.exclusions.is_empty()
    }
}

impl fmt::Display for QuerySpec {
    /// Canonical rendering; [`QuerySpec::parse`] of the output
    /// reproduces the spec (the round-trip property, tested below and
    /// in `tests/grammar_properties.rs`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, term) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            match term {
                Term::Word(w) => f.write_str(w)?,
                Term::Phrase(words) => write!(f, "\"{}\"", words.join(" "))?,
                Term::Exclude(w) => write!(f, "-{w}")?,
                Term::Labeled { label, word } => write!(f, "{label}:{word}")?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- scanner

/// Raw (pre-normalization) terms scanned off the input text.
#[derive(Debug)]
struct RawTerm {
    /// The input slice as typed (for the report).
    raw: String,
    kind: RawKind,
}

#[derive(Debug)]
enum RawKind {
    Word(String),
    Phrase(Vec<String>),
    Exclude(String),
    Labeled { label: String, word: String },
}

/// Iterator of raw terms; quotes group whitespace-separated words into
/// one phrase term, everything else splits at whitespace.
struct RawTerms<'a> {
    rest: &'a str,
}

impl<'a> RawTerms<'a> {
    fn new(text: &'a str) -> Self {
        RawTerms { rest: text }
    }
}

impl Iterator for RawTerms<'_> {
    type Item = Result<RawTerm, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return None;
        }
        if let Some(body) = self.rest.strip_prefix('"') {
            // Phrase: everything up to the closing quote.
            let Some(end) = body.find('"') else {
                self.rest = "";
                return Some(Err(ParseError::UnclosedPhrase));
            };
            let content = &body[..end];
            self.rest = &body[end + 1..];
            let words: Vec<String> = content.split_whitespace().map(str::to_owned).collect();
            if words.is_empty() {
                return Some(Err(ParseError::EmptyPhrase));
            }
            return Some(Ok(RawTerm {
                raw: format!("\"{content}\""),
                kind: RawKind::Phrase(words),
            }));
        }
        // Bare token: up to the next whitespace.
        let end = self
            .rest
            .find(char::is_whitespace)
            .unwrap_or(self.rest.len());
        let token = &self.rest[..end];
        self.rest = &self.rest[end..];
        let raw = token.to_owned();
        if let Some(excluded) = token.strip_prefix('-') {
            if excluded.is_empty() {
                return Some(Err(ParseError::EmptyExclusion));
            }
            if excluded.starts_with('"') {
                return Some(Err(ParseError::ExcludedPhrase));
            }
            return Some(Ok(RawTerm {
                raw,
                kind: RawKind::Exclude(excluded.to_owned()),
            }));
        }
        if let Some((label, word)) = token.split_once(':') {
            if label.is_empty() {
                return Some(Err(ParseError::MissingLabel {
                    word: word.to_owned(),
                }));
            }
            if word.is_empty() {
                return Some(Err(ParseError::MissingLabelWord {
                    label: label.to_owned(),
                }));
            }
            return Some(Ok(RawTerm {
                raw,
                kind: RawKind::Labeled {
                    label: label.to_owned(),
                    word: word.to_owned(),
                },
            }));
        }
        Some(Ok(RawTerm {
            raw,
            kind: RawKind::Word(token.to_owned()),
        }))
    }
}

// ---------------------------------------------------------------- builder

/// Accumulates normalized terms, deduplicating and lowering as it goes.
#[derive(Debug, Default)]
struct SpecBuilder {
    terms: Vec<Term>,
    keywords: Vec<String>,
    phrases: Vec<Vec<usize>>,
    label_filters: Vec<LabelFilter>,
    exclusions: Vec<String>,
    report: ParseReport,
}

impl SpecBuilder {
    /// The bit position of `word`, appending it if new.
    fn position_of(&mut self, word: &str) -> usize {
        match self.keywords.iter().position(|k| k == word) {
            Some(i) => i,
            None => {
                self.keywords.push(word.to_owned());
                self.keywords.len() - 1
            }
        }
    }

    /// Records a raw→normalized rewrite when the normalizer changed the
    /// term's rendering.
    fn note_normalized(&mut self, raw: &str, canonical: &str) {
        if raw != canonical {
            self.report
                .normalized
                .push((raw.to_owned(), canonical.to_owned()));
        }
    }

    fn push(&mut self, term: RawTerm) -> Result<(), ParseError> {
        match term.kind {
            RawKind::Word(w) => {
                let word = normalize_keyword(&w);
                self.note_normalized(&term.raw, &word);
                if self.keywords.contains(&word) {
                    self.report.dropped.push(term.raw);
                    return Ok(());
                }
                self.position_of(&word);
                self.terms.push(Term::Word(word));
            }
            RawKind::Phrase(raw_words) => {
                // Normalize and deduplicate within the phrase; a phrase
                // of one distinct word degrades to a plain word.
                let mut words: Vec<String> = Vec::with_capacity(raw_words.len());
                for w in &raw_words {
                    let norm = normalize_keyword(w);
                    if !words.contains(&norm) {
                        words.push(norm);
                    }
                }
                // A one-word "phrase" is just that word — degrade it,
                // unless unquoting would change how the word re-parses
                // (a leading `-` or an embedded `:` must stay quoted
                // for the Display round-trip).
                if words.len() == 1 && !words[0].starts_with('-') && !words[0].contains(':') {
                    let word = words.pop().expect("one word");
                    self.note_normalized(&term.raw, &word);
                    if self.keywords.contains(&word) {
                        self.report.dropped.push(term.raw);
                        return Ok(());
                    }
                    self.position_of(&word);
                    self.terms.push(Term::Word(word));
                    return Ok(());
                }
                let canonical = format!("\"{}\"", words.join(" "));
                self.note_normalized(&term.raw, &canonical);
                if self
                    .terms
                    .iter()
                    .any(|t| matches!(t, Term::Phrase(ws) if *ws == words))
                {
                    self.report.dropped.push(term.raw);
                    return Ok(());
                }
                let mut group: Vec<usize> = words.iter().map(|w| self.position_of(w)).collect();
                group.sort_unstable();
                self.phrases.push(group);
                self.terms.push(Term::Phrase(words));
            }
            RawKind::Exclude(w) => {
                let word = normalize_keyword(&w);
                self.note_normalized(&term.raw, &format!("-{word}"));
                if self.exclusions.contains(&word) {
                    self.report.dropped.push(term.raw);
                    return Ok(());
                }
                self.exclusions.push(word.clone());
                self.terms.push(Term::Exclude(word));
            }
            RawKind::Labeled { label, word } => {
                let label = normalize_keyword(&label);
                let word = normalize_keyword(&word);
                self.note_normalized(&term.raw, &format!("{label}:{word}"));
                if self
                    .label_filters
                    .iter()
                    .any(|f| f.label == label && self.keywords[f.position] == word)
                {
                    self.report.dropped.push(term.raw);
                    return Ok(());
                }
                let position = self.position_of(&word);
                self.label_filters.push(LabelFilter {
                    position,
                    label: label.clone(),
                });
                self.terms.push(Term::Labeled { label, word });
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<QuerySpec, ParseError> {
        if self.keywords.is_empty() {
            return Err(ParseError::Empty);
        }
        if self.keywords.len() > MAX_KEYWORDS {
            return Err(ParseError::TooManyKeywords(self.keywords.len()));
        }
        if self.exclusions.len() > MAX_KEYWORDS {
            return Err(ParseError::TooManyExclusions(self.exclusions.len()));
        }
        for excluded in &self.exclusions {
            if self.keywords.contains(excluded) {
                return Err(ParseError::Contradiction {
                    word: excluded.clone(),
                });
            }
        }
        // `from_words` re-normalizes (a no-op — words are already
        // normalized and deduplicated) and enforces the Query invariants.
        let query = Query::from_words(&self.keywords)?;
        debug_assert_eq!(query.keywords(), self.keywords);
        Ok(QuerySpec {
            terms: self.terms,
            query,
            phrases: self.phrases,
            label_filters: self.label_filters,
            exclusions: self.exclusions,
            report: self.report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> QuerySpec {
        QuerySpec::parse(s).unwrap()
    }

    #[test]
    fn plain_queries_lower_to_the_legacy_query() {
        let s = spec("  XML   Keyword  search ");
        assert_eq!(s.query(), &Query::parse("xml keyword search").unwrap());
        assert!(s.is_plain());
        assert_eq!(s.to_string(), "xml keyword search");
        // Case folding is reported, not silent.
        assert_eq!(
            s.report().normalized,
            [
                ("XML".to_owned(), "xml".to_owned()),
                ("Keyword".to_owned(), "keyword".to_owned())
            ]
        );
    }

    #[test]
    fn phrase_groups_positions() {
        let s = spec("\"xml keyword\" search");
        assert_eq!(s.query().keywords(), ["xml", "keyword", "search"]);
        assert_eq!(s.phrases(), [vec![0, 1]]);
        assert_eq!(s.to_string(), "\"xml keyword\" search");
    }

    #[test]
    fn phrase_shares_positions_with_plain_words() {
        // "xml" appears first as a plain word; the phrase reuses bit 0.
        let s = spec("xml \"xml keyword\"");
        assert_eq!(s.query().keywords(), ["xml", "keyword"]);
        assert_eq!(s.phrases(), [vec![0, 1]]);
    }

    #[test]
    fn single_word_phrase_degrades_to_word() {
        let s = spec("\"xml\" keyword");
        assert!(s.is_plain());
        assert_eq!(s.to_string(), "xml keyword");
        // The de-quoting is a reported rewrite.
        assert_eq!(
            s.report().normalized,
            [("\"xml\"".to_owned(), "xml".to_owned())]
        );
    }

    #[test]
    fn exclusions_do_not_consume_bit_positions() {
        let s = spec("xml -skyline keyword");
        assert_eq!(s.query().keywords(), ["xml", "keyword"]);
        assert_eq!(s.exclusions(), ["skyline"]);
        assert_eq!(s.to_string(), "xml -skyline keyword");
    }

    #[test]
    fn label_filters_constrain_positions() {
        let s = spec("title:xml keyword");
        assert_eq!(s.query().keywords(), ["xml", "keyword"]);
        assert_eq!(
            s.label_filters(),
            [LabelFilter {
                position: 0,
                label: "title".to_owned()
            }]
        );
        assert_eq!(s.to_string(), "title:xml keyword");
    }

    #[test]
    fn duplicates_are_dropped_and_reported() {
        let s = spec("xml keyword XML -a -a title:x title:x \"p q\" \"p q\"");
        assert_eq!(s.query().keywords(), ["xml", "keyword", "x", "p", "q"]);
        assert_eq!(s.report().dropped, ["XML", "-a", "title:x", "\"p q\""]);
    }

    #[test]
    fn typed_errors() {
        assert_eq!(QuerySpec::parse("   "), Err(ParseError::Empty));
        assert_eq!(QuerySpec::parse("-only"), Err(ParseError::Empty));
        assert_eq!(QuerySpec::parse("\"a b"), Err(ParseError::UnclosedPhrase));
        assert_eq!(QuerySpec::parse("x \"\""), Err(ParseError::EmptyPhrase));
        assert_eq!(QuerySpec::parse("x \"  \""), Err(ParseError::EmptyPhrase));
        assert_eq!(QuerySpec::parse("x -"), Err(ParseError::EmptyExclusion));
        assert_eq!(
            QuerySpec::parse("x -\"a b\""),
            Err(ParseError::ExcludedPhrase)
        );
        assert_eq!(
            QuerySpec::parse("x :word"),
            Err(ParseError::MissingLabel {
                word: "word".to_owned()
            })
        );
        assert_eq!(
            QuerySpec::parse("x label:"),
            Err(ParseError::MissingLabelWord {
                label: "label".to_owned()
            })
        );
        assert_eq!(
            QuerySpec::parse("xml -XML"),
            Err(ParseError::Contradiction {
                word: "xml".to_owned()
            })
        );
        let many: String = (0..65).map(|i| format!("w{i} ")).collect();
        assert_eq!(
            QuerySpec::parse(&many),
            Err(ParseError::TooManyKeywords(65))
        );
        // Exclusions are bounded too: each costs a posting lookup at
        // execution time.
        let many_excluded: String = std::iter::once("x ".to_owned())
            .chain((0..65).map(|i| format!("-w{i} ")))
            .collect();
        assert_eq!(
            QuerySpec::parse(&many_excluded),
            Err(ParseError::TooManyExclusions(65))
        );
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "xml keyword search",
            "\"xml keyword\" search",
            "title:xml -skyline \"a b c\" plain",
            "a:b:c",  // word may contain ':' after the first
            "x -a:b", // exclusions swallow the rest verbatim
            "x --y",  // exclusion of "-y"
        ] {
            let first = spec(text);
            let second = spec(&first.to_string());
            assert_eq!(first, second, "round-trip of {text:?}");
            assert_eq!(first.to_string(), second.to_string());
            assert!(second.report().is_clean(), "second parse is canonical");
        }
    }

    #[test]
    fn from_query_is_plain() {
        let q = Query::parse("xml keyword").unwrap();
        let s = QuerySpec::from_query(q.clone());
        assert_eq!(s.query(), &q);
        assert!(s.is_plain());
        assert_eq!(s.to_string(), "xml keyword");
        assert_eq!(s, spec("xml keyword"));
    }
}
