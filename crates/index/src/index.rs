//! The inverted index and keyword-node resolution.

use std::collections::BTreeMap;

use xks_xmltree::content::node_content;
use xks_xmltree::{Dewey, XmlTree};

use crate::query::Query;

/// Inverted index: word → sorted list of Dewey codes of the nodes whose
/// content `Cv` contains the word.
///
/// The postings are *node-level* (a word occurring three times in one
/// text contributes one posting), which is exactly the `D_i` semantics
/// the LCA algorithms need and the unit of the §5.1 frequency
/// statistics.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: BTreeMap<String, Vec<Dewey>>,
    node_count: usize,
}

impl InvertedIndex {
    /// Builds the index from a document in one pre-order pass.
    #[must_use]
    pub fn build(tree: &XmlTree) -> Self {
        let mut postings: BTreeMap<String, Vec<Dewey>> = BTreeMap::new();
        for id in tree.preorder() {
            let dewey = tree.dewey(id);
            for word in node_content(tree, id) {
                // node_content returns a set, so each (node, word) pair
                // is seen once; postings stay duplicate-free and sorted
                // because preorder visits in Dewey order.
                postings.entry(word).or_default().push(dewey.clone());
            }
        }
        InvertedIndex {
            postings,
            node_count: tree.len(),
        }
    }

    /// Builds the index with a word normalizer applied to every content
    /// word (e.g. `xks_xmltree::stem::light_stem` to reproduce the
    /// paper's Lucene-style loose matching). Apply the same normalizer
    /// to query keywords before [`InvertedIndex::resolve`].
    #[must_use]
    pub fn build_with<F>(tree: &XmlTree, normalize: F) -> Self
    where
        F: Fn(&str) -> String,
    {
        let mut postings: BTreeMap<String, Vec<Dewey>> = BTreeMap::new();
        for id in tree.preorder() {
            let dewey = tree.dewey(id);
            let mut seen: Vec<String> = Vec::new();
            for word in node_content(tree, id) {
                let norm = normalize(&word);
                if seen.contains(&norm) {
                    continue; // normalization can merge distinct words
                }
                postings
                    .entry(norm.clone())
                    .or_default()
                    .push(dewey.clone());
                seen.push(norm);
            }
        }
        InvertedIndex {
            postings,
            node_count: tree.len(),
        }
    }

    /// Builds an index from raw postings (used by tests and by callers
    /// that shredded through `xks-store`). Lists are sorted and deduped.
    #[must_use]
    pub fn from_postings<I>(postings: I, node_count: usize) -> Self
    where
        I: IntoIterator<Item = (String, Vec<Dewey>)>,
    {
        let mut map: BTreeMap<String, Vec<Dewey>> = BTreeMap::new();
        for (word, deweys) in postings {
            map.entry(word).or_default().extend(deweys);
        }
        for deweys in map.values_mut() {
            deweys.sort();
            deweys.dedup();
        }
        InvertedIndex {
            postings: map,
            node_count,
        }
    }

    /// The sorted posting list for `word` (empty slice if absent).
    #[must_use]
    pub fn postings(&self, word: &str) -> &[Dewey] {
        self.postings.get(word).map_or(&[], Vec::as_slice)
    }

    /// Number of keyword nodes for `word` (the frequency figures the
    /// paper lists next to each chosen keyword in §5.1).
    #[must_use]
    pub fn frequency(&self, word: &str) -> usize {
        self.postings.get(word).map_or(0, Vec::len)
    }

    /// Number of distinct indexed words.
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Number of nodes in the indexed document.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Iterates `(word, node-frequency)` in lexical order.
    pub fn frequencies(&self) -> impl Iterator<Item = (&str, usize)> {
        self.postings.iter().map(|(w, d)| (w.as_str(), d.len()))
    }

    /// Resolves a query to its keyword-node sets `D_1..D_k`
    /// (`getKeywordNodes` of Algorithm 1).
    ///
    /// Returns `None` when some keyword has no match at all — then no
    /// fragment can cover the query and every downstream stage would
    /// return empty.
    #[must_use]
    pub fn resolve(&self, query: &Query) -> Option<KeywordNodeSets> {
        let mut sets = Vec::with_capacity(query.len());
        for kw in query.keywords() {
            let list = self.postings(kw);
            if list.is_empty() {
                return None;
            }
            sets.push(list.to_vec());
        }
        Some(KeywordNodeSets {
            query: query.clone(),
            sets,
        })
    }
}

/// The resolved `D_1..D_k` lists for one query — input to `getLCA` and
/// `getRTF`.
#[derive(Debug, Clone)]
pub struct KeywordNodeSets {
    query: Query,
    sets: Vec<Vec<Dewey>>,
}

impl KeywordNodeSets {
    /// Builds directly from pre-computed lists (each will be sorted and
    /// deduped). Panics if `sets.len() != query.len()`.
    ///
    /// Storage backends hand over already-sorted postings, so the
    /// common case is a linear `is_sorted` check — no stable-sort
    /// scratch allocation on the query hot path.
    #[must_use]
    pub fn new(query: Query, mut sets: Vec<Vec<Dewey>>) -> Self {
        assert_eq!(query.len(), sets.len(), "one Dewey list per keyword");
        for s in &mut sets {
            if !s.is_sorted() {
                s.sort_unstable();
            }
            s.dedup();
        }
        KeywordNodeSets { query, sets }
    }

    /// The originating query.
    #[must_use]
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The list `D_i` for keyword index `i`.
    #[must_use]
    pub fn set(&self, i: usize) -> &[Dewey] {
        &self.sets[i]
    }

    /// All lists in keyword order.
    #[must_use]
    pub fn sets(&self) -> &[Vec<Dewey>] {
        &self.sets
    }

    /// Number of keywords.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Always false (queries are non-empty); for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Index of the smallest `D_i` (the driver list of the Indexed
    /// Lookup Eager SLCA algorithm).
    #[must_use]
    pub fn smallest_set(&self) -> usize {
        self.sets
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
            .expect("non-empty query")
    }

    /// Union of all lists, sorted and deduplicated — every keyword node
    /// of the query in document order (what `getRTF` dispatches).
    #[must_use]
    pub fn all_keyword_nodes(&self) -> Vec<Dewey> {
        let mut all: Vec<Dewey> = self.sets.iter().flatten().cloned().collect();
        all.sort();
        all.dedup();
        all
    }

    /// The bitmask of keywords contained by node `dewey` (bit `i` set iff
    /// `dewey ∈ D_i`). This is the per-node `kList` seed of §4.1.
    #[must_use]
    pub fn keyword_mask(&self, dewey: &Dewey) -> u64 {
        let mut mask = 0u64;
        for (i, set) in self.sets.iter().enumerate() {
            if set.binary_search(dewey).is_ok() {
                mask |= 1 << i;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::fixtures::publications;

    fn idx() -> InvertedIndex {
        InvertedIndex::build(&publications())
    }

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn postings_are_sorted_node_level() {
        let i = idx();
        let liu: Vec<String> = i.postings("liu").iter().map(ToString::to_string).collect();
        assert_eq!(liu, ["0.2.0.0.0.0", "0.2.0.3.0"]);
        let title: Vec<String> = i
            .postings("title")
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(title, ["0.0", "0.2.0.1", "0.2.1.1"]);
    }

    #[test]
    fn frequency_counts_nodes() {
        let i = idx();
        assert_eq!(i.frequency("liu"), 2);
        assert_eq!(i.frequency("missing"), 0);
        assert!(i.vocabulary_size() > 10);
        assert_eq!(i.node_count(), publications().len());
    }

    #[test]
    fn resolve_returns_per_keyword_sets() {
        let i = idx();
        let sets = i.resolve(&q("liu keyword")).unwrap();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets.set(0).len(), 2);
        assert_eq!(sets.set(1).len(), 3);
        assert_eq!(sets.smallest_set(), 0);
    }

    #[test]
    fn resolve_fails_on_unmatched_keyword() {
        let i = idx();
        assert!(i.resolve(&q("liu unobtainium")).is_none());
    }

    #[test]
    fn all_keyword_nodes_union() {
        let i = idx();
        let sets = i.resolve(&q("liu keyword")).unwrap();
        let all: Vec<String> = sets
            .all_keyword_nodes()
            .iter()
            .map(ToString::to_string)
            .collect();
        // Union of {name, ref} and {title, abstract, ref}, dedup'd.
        assert_eq!(all, ["0.2.0.0.0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0"]);
    }

    #[test]
    fn keyword_mask_sets_bits() {
        let i = idx();
        let sets = i.resolve(&q("liu keyword")).unwrap();
        let r: Dewey = "0.2.0.3.0".parse().unwrap();
        assert_eq!(sets.keyword_mask(&r), 0b11); // ref contains both
        let n: Dewey = "0.2.0.0.0.0".parse().unwrap();
        assert_eq!(sets.keyword_mask(&n), 0b01); // name contains liu only
        let other: Dewey = "0.1".parse().unwrap();
        assert_eq!(sets.keyword_mask(&other), 0);
    }

    #[test]
    fn from_postings_sorts_and_dedups() {
        let d = |s: &str| s.parse::<Dewey>().unwrap();
        let i = InvertedIndex::from_postings(
            vec![("w".to_owned(), vec![d("0.2"), d("0.1"), d("0.2"), d("0.0")])],
            4,
        );
        let got: Vec<String> = i.postings("w").iter().map(ToString::to_string).collect();
        assert_eq!(got, ["0.0", "0.1", "0.2"]);
        assert_eq!(i.frequency("w"), 3);
    }

    #[test]
    fn keyword_node_sets_new_normalizes() {
        let d = |s: &str| s.parse::<Dewey>().unwrap();
        let sets = KeywordNodeSets::new(
            q("a b"),
            vec![vec![d("0.1"), d("0.0"), d("0.1")], vec![d("0.2")]],
        );
        assert_eq!(sets.set(0).len(), 2);
        assert!(sets.set(0)[0] < sets.set(0)[1]);
    }
}

#[cfg(test)]
mod build_with_tests {
    use super::*;
    use xks_xmltree::parse;

    #[test]
    fn normalizer_merging_words_in_one_node_dedups_postings() {
        // Three surface forms of one stem inside a single text: the
        // posting list must contain the node once.
        let tree = parse("<a><t>query queries querying</t></a>").unwrap();
        let idx = InvertedIndex::build_with(&tree, xks_xmltree::stem::light_stem);
        assert_eq!(idx.postings("query").len(), 1);
    }

    #[test]
    fn build_with_identity_equals_build() {
        let tree = xks_xmltree::fixtures::publications();
        let a = InvertedIndex::build(&tree);
        let b = InvertedIndex::build_with(&tree, str::to_owned);
        assert_eq!(a.vocabulary_size(), b.vocabulary_size());
        for (word, n) in a.frequencies() {
            assert_eq!(b.frequency(word), n, "{word}");
        }
    }
}
