//! Inverted keyword index over XML trees.
//!
//! Stage 1 of both ValidRTF and MaxMatch (`getKeywordNodes`, Algorithm 1)
//! resolves each query keyword `w_i` to the set `D_i` of *keyword nodes*
//! — nodes whose content `Cv` (label + text + attribute words) contains
//! `w_i` — as sorted Dewey-code lists. This crate provides that lookup:
//!
//! * [`Query`] — a parsed keyword query `Q = {w1..wk}`;
//! * [`QuerySpec`] — the operator grammar (quoted phrases, `-word`
//!   exclusions, `label:word` filters) that lowers onto [`Query`];
//! * [`InvertedIndex`] — keyword → sorted Dewey postings, plus the
//!   frequency statistics behind the paper's §5.1 keyword table;
//! * [`KeywordNodeSets`] — the resolved `D_1..D_k` bundle handed to the
//!   LCA algorithms and the RTF construction.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod grammar;
pub mod index;
pub mod query;

pub use grammar::{LabelFilter, ParseError, ParseReport, QuerySpec, Term};
pub use index::{InvertedIndex, KeywordNodeSets};
pub use query::{Query, QueryError};
