//! Keyword queries.

use std::fmt;

use xks_xmltree::tokenizer::normalize_keyword;

/// Maximum number of keywords per query.
///
/// The node data structure of §4.1 encodes a node's tree keyword set as a
/// bit list whose "key number" fits machine arithmetic; we use a `u64`
/// bitmask, so queries carry at most 64 keywords (the paper's largest
/// query has 7).
pub const MAX_KEYWORDS: usize = 64;

/// A parsed keyword query `Q = {w1, …, wk}`.
///
/// Keywords are normalized (lowercased, trimmed) and deduplicated while
/// preserving first-occurrence order; the position of a keyword is its
/// bit index in the `KeySet` masks used downstream.
///
/// `Query` is the *lowered* form the retrieval pipeline consumes. The
/// richer operator grammar — quoted phrases, `-word` exclusions,
/// `label:word` filters — lives in [`crate::grammar::QuerySpec`], which
/// lowers every positive term into one of these flat keyword lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    keywords: Vec<String>,
}

/// Query construction failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No keywords after normalization.
    Empty,
    /// More than [`MAX_KEYWORDS`] distinct keywords.
    TooManyKeywords(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query has no keywords"),
            QueryError::TooManyKeywords(n) => {
                write!(f, "query has {n} keywords; the maximum is {MAX_KEYWORDS}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Parses a whitespace-separated keyword string.
    pub fn parse(text: &str) -> Result<Self, QueryError> {
        Self::from_words(text.split_whitespace())
    }

    /// Builds a query from individual keywords.
    pub fn from_words<I, S>(words: I) -> Result<Self, QueryError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut keywords: Vec<String> = Vec::new();
        for w in words {
            let norm = normalize_keyword(w.as_ref());
            if norm.is_empty() || keywords.contains(&norm) {
                continue;
            }
            keywords.push(norm);
        }
        if keywords.is_empty() {
            return Err(QueryError::Empty);
        }
        if keywords.len() > MAX_KEYWORDS {
            return Err(QueryError::TooManyKeywords(keywords.len()));
        }
        Ok(Query { keywords })
    }

    /// Parses a keyword string, applying `normalize` to every keyword —
    /// pair this with [`InvertedIndex::build_with`] so index and query
    /// agree on normalization (e.g. `xks_xmltree::stem::light_stem`).
    ///
    /// [`InvertedIndex::build_with`]: crate::InvertedIndex::build_with
    pub fn parse_with<F>(text: &str, normalize: F) -> Result<Self, QueryError>
    where
        F: Fn(&str) -> String,
    {
        Self::from_words(text.split_whitespace().map(normalize))
    }

    /// The normalized keywords, in query order (= bit index order).
    #[must_use]
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Number of keywords `k`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Queries are never empty; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The bit index of `keyword`, if present.
    #[must_use]
    pub fn position(&self, keyword: &str) -> Option<usize> {
        self.keywords.iter().position(|k| k == keyword)
    }

    /// A new query extended with one more keyword (used by the
    /// query-monotonicity / query-consistency property checks).
    pub fn with_keyword(&self, keyword: &str) -> Result<Self, QueryError> {
        Self::from_words(
            self.keywords
                .iter()
                .map(String::as_str)
                .chain(std::iter::once(keyword)),
        )
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keywords.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let q = Query::parse("  XML   Keyword  search ").unwrap();
        assert_eq!(q.keywords(), ["xml", "keyword", "search"]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.to_string(), "xml keyword search");
    }

    #[test]
    fn deduplicates_preserving_order() {
        let q = Query::parse("xml keyword XML search keyword").unwrap();
        assert_eq!(q.keywords(), ["xml", "keyword", "search"]);
    }

    #[test]
    fn positions_are_bit_indexes() {
        let q = Query::parse("vldb title xml").unwrap();
        assert_eq!(q.position("vldb"), Some(0));
        assert_eq!(q.position("xml"), Some(2));
        assert_eq!(q.position("missing"), None);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Query::parse("   "), Err(QueryError::Empty));
    }

    #[test]
    fn too_many_rejected() {
        let words: Vec<String> = (0..65).map(|i| format!("w{i}")).collect();
        assert!(matches!(
            Query::from_words(&words),
            Err(QueryError::TooManyKeywords(65))
        ));
        let ok: Vec<String> = (0..64).map(|i| format!("w{i}")).collect();
        assert!(Query::from_words(&ok).is_ok());
    }

    #[test]
    fn with_keyword_extends() {
        let q = Query::parse("liu keyword").unwrap();
        let q2 = q.with_keyword("XML").unwrap();
        assert_eq!(q2.keywords(), ["liu", "keyword", "xml"]);
        // Adding an existing keyword is a no-op.
        let q3 = q.with_keyword("liu").unwrap();
        assert_eq!(q3, q);
    }
}

#[cfg(test)]
mod parse_with_tests {
    use super::*;

    #[test]
    fn parse_with_normalizes_each_keyword() {
        let upper_strip = |w: &str| w.trim_end_matches('s').to_lowercase();
        let q = Query::parse_with("Queries Trees tree", upper_strip).unwrap();
        // "trees" and "tree" collapse to one keyword.
        assert_eq!(q.keywords(), ["querie", "tree"]);
    }

    #[test]
    fn parse_with_identity_matches_parse() {
        let a = Query::parse("xml keyword").unwrap();
        let b = Query::parse_with("xml keyword", |w| w.to_lowercase()).unwrap();
        assert_eq!(a, b);
    }
}
