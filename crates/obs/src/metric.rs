//! Metric primitives: counters, gauges, and log2-bucketed histograms.
//!
//! Every update is a single relaxed atomic RMW on a shared
//! `Arc<AtomicU64>` cell — lock-free and allocation-free, so handles
//! can be hit from the query hot path. Reads (snapshots) are relaxed
//! too: telemetry tolerates torn cross-metric views; each individual
//! cell is still exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one per power of two of `u64` plus a
/// dedicated zero bucket folded into index 0.
pub const BUCKETS: usize = 64;

/// A monotonically increasing event count.
///
/// Cloning shares the underlying cell: all clones observe and update
/// the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (pool capacity, cache
/// occupancy, thread count).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds one (for gauges tracking a live population).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `delta`, saturating at zero on the way down.
    #[inline]
    pub fn add_signed(&self, delta: i64) {
        if delta >= 0 {
            self.0.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            let sub = delta.unsigned_abs();
            let _ = self
                .0
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(sub))
                });
        }
    }
}

/// Bucket index for a recorded value: 0 holds zero, bucket `i >= 1`
/// holds `[2^(i-1), 2^i - 1]`, and the last bucket absorbs everything
/// from `2^62` up (so the index always fits [`BUCKETS`]).
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `i` (the inverse
/// of [`bucket_index`]).
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index out of range");
    if i == 0 {
        (0, 0)
    } else if i == BUCKETS - 1 {
        (1 << (i - 1), u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed distribution of `u64` samples (latencies in
/// nanoseconds, batch sizes, ...). Recording is four relaxed atomic
/// operations; percentiles are derived from a [`HistogramSnapshot`]
/// with bucket-upper-bound precision (at most one power of two above
/// the true quantile, clamped to the observed maximum).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, unregistered histogram with no samples.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let cells = &*self.0;
        cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(v, Ordering::Relaxed);
        cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records an elapsed [`std::time::Duration`] in nanoseconds
    /// (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.0;
        let mut buckets = [0u64; BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(cells.buckets.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            max: cells.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`], from which percentiles are
/// derived deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`] for ranges).
    pub buckets: [u64; BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (useful for means over long windows).
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `p` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(p * count)`-th smallest sample,
    /// clamped to the observed maximum. Zero when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::percentile`] for precision).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Arithmetic mean of all samples (zero when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Non-empty buckets as `(lo, hi, count)` triples in value order —
    /// the serialized form.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every boundary round-trips through bucket_bounds.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi bound of bucket {i}");
        }
    }

    #[test]
    fn percentiles_track_known_distributions() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().p50(), 0, "empty histogram");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // p50 rank is 500, which lands in bucket [256, 511]; the
        // reported value is the bucket upper bound.
        assert_eq!(s.p50(), 511);
        // p99 rank is 990 -> bucket [512, 1023], clamped to max 1000.
        assert_eq!(s.p99(), 1000);
        assert_eq!(s.percentile(1.0), 1000);
        assert_eq!(s.mean(), 500);
    }

    #[test]
    fn zero_and_max_samples_are_representable() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let counter = Counter::new();
        let hist = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        counter.inc();
                        hist.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        let s = hist.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
        assert_eq!(s.max, 79_999);
    }
}
