//! Named metric registry and the process-wide [`global()`] instance.
//!
//! The registry holds one map from metric name to metric. Lookup /
//! registration (`counter` / `gauge` / `histogram`) takes a short
//! mutex and may allocate the name — do it once per component, at
//! construction time, and keep the returned handle: every subsequent
//! update through the handle is a lock-free atomic on the shared cell.
//!
//! Names are dot-separated lowercase paths (`pool.cache_hits`,
//! `search.total_ns`). A name maps to exactly one metric kind; asking
//! for an existing name with a *different* kind returns a fresh
//! detached handle (functional, but never exported in snapshots) so a
//! naming bug can never panic a serving process.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::Snapshot;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics with deterministic (sorted) snapshot
/// order.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry (tests use private instances; production code
    /// shares [`global()`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_register<T>(
        &self,
        name: &str,
        as_kind: impl Fn(&Metric) -> Option<&T>,
        make: impl Fn(T) -> Metric,
    ) -> T
    where
        T: Clone + Default,
    {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = metrics.get(name) {
            if let Some(metric) = as_kind(existing) {
                return metric.clone();
            }
            // Kind mismatch: hand back a detached metric rather than
            // panicking or clobbering the registered one.
            return T::default();
        }
        let metric = T::default();
        metrics.insert(name.to_owned(), make(metric.clone()));
        metric
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_register(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c),
                _ => None,
            },
            Metric::Counter,
        )
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_register(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g),
                _ => None,
            },
            Metric::Gauge,
        )
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_register(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            },
            Metric::Histogram,
        )
    }

    /// Point-in-time copy of every registered metric, in sorted name
    /// order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut snap = Snapshot::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counter(name, c.get()),
                Metric::Gauge(g) => snap.gauge(name, g.get()),
                Metric::Histogram(h) => snap.histogram(name, h.snapshot()),
            }
        }
        snap
    }
}

/// The process-wide registry every subsystem reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let registry = Registry::new();
        // Pre-register the poison counter so a healthy process exports
        // an explicit zero instead of omitting the metric — "no
        // recoveries" and "not instrumented" must look different.
        registry.counter("lock.poison_recovered");
        registry
    })
}

/// Counts a recovered lock poisoning (`lock.poison_recovered` in the
/// global registry). The engine and the persist layer deliberately
/// continue through poisoned mutexes — their guarded state holds no
/// invariants a panic can break mid-update — but a wounded process
/// should be *visible* to operators, not silent.
pub fn count_poison_recovery() {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| global().counter("lock.poison_recovered"))
        .inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_snapshots_are_deterministic() {
        let reg = Registry::new();
        let a = reg.counter("q.total");
        let b = reg.counter("q.total");
        a.inc();
        b.add(2);
        reg.gauge("pool.capacity").set(64);
        reg.histogram("q.latency_ns").record(1500);
        let s1 = reg.snapshot().to_json();
        let s2 = reg.snapshot().to_json();
        assert_eq!(s1, s2, "identical state must serialize identically");
        assert!(s1.contains("\"q.total\":3"));
        assert!(s1.contains("\"pool.capacity\":64"));
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_panicking() {
        let reg = Registry::new();
        let counter = reg.counter("x");
        counter.add(5);
        let gauge = reg.gauge("x"); // same name, wrong kind
        gauge.set(99);
        let snap = reg.snapshot();
        assert_eq!(snap.counters().find(|(n, _)| *n == "x").unwrap().1, 5);
        assert_eq!(snap.gauges().count(), 0, "detached gauge is not exported");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("test.registry_shared");
        let before = c.get();
        global().counter("test.registry_shared").inc();
        assert_eq!(c.get(), before + 1);
    }
}
