//! Telemetry substrate for the read path: a process-wide metrics
//! registry, log2-bucketed latency histograms, and a zero-allocation
//! per-query stage tracer.
//!
//! The crate is deliberately dependency-free (the build environment has
//! no registry access) and splits into three layers:
//!
//! * [`metric`] — the primitives: [`Counter`] and [`Gauge`] are shared
//!   `AtomicU64` cells, [`Histogram`] is a fixed array of 64 log2
//!   buckets. All updates are single relaxed atomic operations — no
//!   lock, no allocation — so they are safe on the query hot path.
//! * [`registry`] — a named [`Registry`] of metrics. Registration
//!   takes a short mutex and may allocate (do it once, at component
//!   construction); the returned handles update lock-free thereafter.
//!   [`global()`] is the process-wide instance every subsystem
//!   (engine, executor, buffer pool, caches) registers into.
//! * [`trace`] + [`snapshot`] — the read side. [`QueryTrace`] records
//!   wall-time spans for each pipeline stage into a preallocated
//!   inline buffer carried inside the per-thread query context;
//!   [`Snapshot`] captures a point-in-time copy of every metric and
//!   serializes it through one hand-rolled, deterministic JSON schema
//!   (`xks-obs/1`).
//!
//! Components that own internal counters outside the registry (e.g.
//! the persist layer's `IndexStats`) implement [`MetricSource`] to
//! contribute them to a snapshot at collection time.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod metric;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use metric::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{count_poison_recovery, global, Registry};
pub use snapshot::{MetricSource, Snapshot};
pub use trace::{QueryTrace, Span, Stage, TRACE_SPAN_CAP};
