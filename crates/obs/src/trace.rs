//! Per-query stage tracing with a preallocated inline span buffer.
//!
//! A [`QueryTrace`] rides inside the per-thread query context. All
//! storage is inline (`[Span; TRACE_SPAN_CAP]` plus a handful of
//! scalars), so enabling tracing on a warm query performs **zero heap
//! allocations** — the counting-allocator proof in
//! `tests/zero_alloc.rs` asserts this. When a query records more spans
//! than the buffer holds (it never does today: a worst-case query
//! produces one span per pipeline stage plus one per keyword), the
//! excess is counted in [`QueryTrace::dropped`] rather than grown.
//!
//! Span timestamps are nanosecond offsets from [`QueryTrace::begin`],
//! so a trace is self-contained and serializes directly to the
//! Chrome-trace-event JSON (`chrome://tracing`, Perfetto) via
//! [`QueryTrace::to_chrome_json`].

use std::time::Instant;

/// Maximum spans one query trace can hold without dropping.
pub const TRACE_SPAN_CAP: usize = 32;

/// The read-path pipeline stages a trace can attribute time to.
///
/// These are finer-grained than `StageTimings` in the core crate: the
/// coarse `get_keyword_nodes` stage splits into per-keyword
/// [`Stage::PostingsDecode`] spans under an umbrella
/// [`Stage::Resolve`], and the fragment loop splits into
/// [`Stage::Construct`] / [`Stage::Prune`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Query-string parsing (recorded by `SearchRequest::parse`).
    Parse,
    /// Whole keyword-resolution stage (`getKeywordNodes`).
    Resolve,
    /// Cost-based plan selection (term ordering, gallop-vs-merge).
    Plan,
    /// One keyword's postings lookup/decode within resolution.
    PostingsDecode,
    /// Posting-list merge plus anchor computation (`getLCA`).
    MergeAnchor,
    /// Anchor-set dispatch into fragment construction (`getRTF`).
    RtfDispatch,
    /// Fragment construction across all anchors.
    Construct,
    /// Fragment pruning (`pruneRTF`).
    Prune,
    /// Post-filter evaluation.
    PostFilter,
    /// Ranking, top-k selection, and hit materialization.
    Rank,
}

impl Stage {
    /// Stable lowercase name used in every serialized form.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Resolve => "resolve",
            Stage::Plan => "plan",
            Stage::PostingsDecode => "postings_decode",
            Stage::MergeAnchor => "merge_anchor",
            Stage::RtfDispatch => "rtf_dispatch",
            Stage::Construct => "construct",
            Stage::Prune => "prune",
            Stage::PostFilter => "post_filter",
            Stage::Rank => "rank",
        }
    }
}

/// One timed stage execution: a `[start, start+dur)` wall-time window
/// relative to the trace origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which pipeline stage this span covers.
    pub stage: Stage,
    /// Nanoseconds from [`QueryTrace::begin`] to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

impl Span {
    const EMPTY: Span = Span {
        stage: Stage::Parse,
        start_ns: 0,
        dur_ns: 0,
    };
}

/// A preallocated per-query span recorder (see the module docs).
///
/// Disabled traces (the default) cost one branch per record call;
/// query contexts carry one permanently and the engine enables it only
/// for traced requests.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    enabled: bool,
    origin: Option<Instant>,
    len: usize,
    dropped: u32,
    spans: [Span; TRACE_SPAN_CAP],
}

impl Default for QueryTrace {
    fn default() -> Self {
        QueryTrace {
            enabled: false,
            origin: None,
            len: 0,
            dropped: 0,
            spans: [Span::EMPTY; TRACE_SPAN_CAP],
        }
    }
}

impl QueryTrace {
    /// A fresh, disabled trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the trace: clears recorded spans and anchors the origin at
    /// now. Called by the engine at the top of a traced query.
    pub fn begin(&mut self) {
        self.enabled = true;
        self.origin = Some(Instant::now());
        self.len = 0;
        self.dropped = 0;
    }

    /// Disarms the trace (record calls become no-ops) and clears any
    /// recorded spans. Called by the engine for untraced queries so a
    /// pooled context never leaks a previous query's trace.
    pub fn disarm(&mut self) {
        self.enabled = false;
        self.len = 0;
        self.dropped = 0;
    }

    /// Whether record calls currently capture spans.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanosecond offset of `at` from the trace origin (saturating to
    /// zero if `at` precedes it; zero when disarmed).
    #[must_use]
    pub fn offset_ns(&self, at: Instant) -> u64 {
        match self.origin {
            Some(origin) => {
                u64::try_from(at.saturating_duration_since(origin).as_nanos()).unwrap_or(u64::MAX)
            }
            None => 0,
        }
    }

    /// Records a span for `stage` covering `started` ..= now. No-op
    /// when disarmed.
    #[inline]
    pub fn record_since(&mut self, stage: Stage, started: Instant) {
        if !self.enabled {
            return;
        }
        let start_ns = self.offset_ns(started);
        let dur_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.push(Span {
            stage,
            start_ns,
            dur_ns,
        });
    }

    /// Records a span from precomputed offsets — for durations
    /// accumulated across a loop (construct/prune interleave per
    /// anchor) or measured before the trace existed (parse time, which
    /// `SearchRequest::parse` captures ahead of execution). No-op when
    /// disarmed.
    #[inline]
    pub fn record_manual(&mut self, stage: Stage, start_ns: u64, dur_ns: u64) {
        if !self.enabled {
            return;
        }
        self.push(Span {
            stage,
            start_ns,
            dur_ns,
        });
    }

    #[inline]
    fn push(&mut self, span: Span) {
        if self.len < TRACE_SPAN_CAP {
            self.spans[self.len] = span;
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded spans, in record order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len]
    }

    /// Spans that did not fit in the buffer (zero today; a nonzero
    /// value means [`TRACE_SPAN_CAP`] needs raising).
    #[must_use]
    pub fn dropped(&self) -> u32 {
        self.dropped
    }

    /// Total recorded nanoseconds attributed to `stage` (sums multiple
    /// spans, e.g. per-keyword postings decodes).
    #[must_use]
    pub fn stage_total_ns(&self, stage: Stage) -> u64 {
        self.spans()
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// The trace as a Chrome-trace-event JSON document (loadable in
    /// `chrome://tracing` or Perfetto): one complete (`"ph":"X"`)
    /// event per span, timestamps in microseconds relative to the
    /// trace origin, the query string attached as metadata.
    #[must_use]
    pub fn to_chrome_json(&self, query: &str) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"xks\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1}}",
                span.stage.as_str(),
                micros(span.start_ns),
                micros(span.dur_ns),
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"query\":");
        crate::snapshot::push_json_string(&mut out, query);
        out.push_str("}}");
        out
    }
}

/// Nanoseconds as a decimal microsecond literal with fixed three
/// fractional digits (Chrome trace timestamps are microseconds).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_traces_record_nothing() {
        let mut trace = QueryTrace::new();
        trace.record_manual(Stage::Resolve, 0, 100);
        trace.record_since(Stage::Parse, Instant::now());
        assert!(!trace.is_enabled());
        assert!(trace.spans().is_empty());
    }

    #[test]
    fn spans_accumulate_in_order_and_cap_without_growing() {
        let mut trace = QueryTrace::new();
        trace.begin();
        for i in 0..(TRACE_SPAN_CAP as u64 + 3) {
            trace.record_manual(Stage::PostingsDecode, i * 10, 5);
        }
        assert_eq!(trace.spans().len(), TRACE_SPAN_CAP);
        assert_eq!(trace.dropped(), 3);
        assert_eq!(trace.spans()[1].start_ns, 10);
        assert_eq!(
            trace.stage_total_ns(Stage::PostingsDecode),
            5 * TRACE_SPAN_CAP as u64
        );
        trace.disarm();
        assert!(trace.spans().is_empty());
    }

    #[test]
    fn chrome_json_has_one_complete_event_per_span() {
        let mut trace = QueryTrace::new();
        trace.begin();
        trace.record_manual(Stage::Parse, 0, 1_500);
        trace.record_manual(Stage::Resolve, 1_500, 42_000);
        let json = trace.to_chrome_json("data \"mining\"");
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"ts\":1.500,\"dur\":42.000"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"query\":\"data \\\"mining\\\"\""));
    }

    #[test]
    fn real_instants_produce_monotonic_offsets() {
        let mut trace = QueryTrace::new();
        trace.begin();
        let t0 = Instant::now();
        std::hint::black_box((0..1000).sum::<u64>());
        trace.record_since(Stage::Resolve, t0);
        let t1 = Instant::now();
        std::hint::black_box((0..1000).sum::<u64>());
        trace.record_since(Stage::MergeAnchor, t1);
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[1].start_ns >= spans[0].start_ns);
    }
}
