//! Point-in-time metric snapshots and the `xks-obs/1` JSON schema.
//!
//! A [`Snapshot`] is an ordinary value: sorted maps of counter, gauge,
//! and histogram readings. It can come from a [`crate::Registry`], from
//! components implementing [`MetricSource`], or both merged into one —
//! the CLI's `xks stats` builds exactly that union. Serialization is
//! hand-rolled (no dependencies), emits keys in sorted order, and skips
//! empty histogram buckets, so identical state always produces
//! byte-identical JSON.

use std::collections::BTreeMap;

use crate::metric::HistogramSnapshot;

/// A component that owns counters outside the registry (e.g. the
/// persist layer's per-reader cache statistics) and can contribute
/// them to a snapshot at collection time.
pub trait MetricSource {
    /// Appends this component's metrics to `snap`, with every name
    /// prefixed by `prefix` (callers pass e.g. `"index."` or
    /// `"index.shard.3."` — including the trailing dot).
    fn collect_into(&self, prefix: &str, snap: &mut Snapshot);
}

/// Frozen metric readings with deterministic ordering and a
/// hand-rolled JSON form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    ratios: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a counter reading (last write wins on duplicate names).
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Records a gauge reading.
    pub fn gauge(&mut self, name: impl Into<String>, value: u64) {
        self.gauges.insert(name.into(), value);
    }

    /// Records a histogram reading.
    pub fn histogram(&mut self, name: impl Into<String>, value: HistogramSnapshot) {
        self.histograms.insert(name.into(), value);
    }

    /// Records a derived ratio (e.g. a cache hit rate in `[0, 1]`) —
    /// the dashboard-ready form of a hits/misses counter pair, emitted
    /// by collectors so consumers never re-derive arithmetic.
    pub fn ratio(&mut self, name: impl Into<String>, value: f64) {
        self.ratios.insert(name.into(), value);
    }

    /// Merges every reading of `other` into `self`.
    pub fn merge(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.ratios.extend(other.ratios);
        self.histograms.extend(other.histograms);
    }

    /// Counter readings in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauge readings in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histogram readings in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Ratio readings in sorted name order.
    pub fn ratios(&self) -> impl Iterator<Item = (&str, f64)> {
        self.ratios.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The snapshot as `xks-obs/1` JSON:
    ///
    /// ```json
    /// {"schema":"xks-obs/1",
    ///  "counters":{"name":value,...},
    ///  "gauges":{"name":value,...},
    ///  "ratios":{"name":0.980392,...},
    ///  "histograms":{"name":{"count":..,"sum":..,"max":..,
    ///                        "p50":..,"p90":..,"p99":..,
    ///                        "buckets":[[lo,hi,count],...]},...}}
    /// ```
    ///
    /// Keys are sorted, empty buckets are skipped, percentiles are
    /// bucket upper bounds clamped to the observed maximum. Ratios are
    /// printed with a fixed six decimal places so identical state stays
    /// byte-identical.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"xks-obs/1\",\"counters\":{");
        push_scalar_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_scalar_map(&mut out, &self.gauges);
        out.push_str("},\"ratios\":{");
        let mut first = true;
        for (name, value) in &self.ratios {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&format!("{value:.6}"));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_string(&mut out, name);
            out.push(':');
            push_histogram(&mut out, hist);
        }
        out.push_str("}}");
        out
    }
}

fn push_scalar_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (name, value) in map {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_string(out, name);
        out.push(':');
        out.push_str(&value.to_string());
    }
}

fn push_histogram(out: &mut String, hist: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        hist.count,
        hist.sum,
        hist.max,
        hist.p50(),
        hist.p90(),
        hist.p99()
    ));
    let mut first = true;
    for (lo, hi, n) in hist.nonzero_buckets() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{lo},{hi},{n}]"));
    }
    out.push_str("]}");
}

/// Appends `s` as a JSON string literal (metric names are plain
/// dot-paths, but escaping is complete so arbitrary names can't
/// corrupt the document).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Histogram;

    #[test]
    fn json_is_deterministic_and_sorted() {
        let mut snap = Snapshot::new();
        snap.counter("zebra", 1);
        snap.counter("alpha", 2);
        snap.gauge("mid", 3);
        let h = Histogram::new();
        h.record(100);
        h.record(200);
        snap.histogram("lat", h.snapshot());

        let json = snap.to_json();
        assert_eq!(json, snap.clone().to_json(), "stable across calls");
        let alpha = json.find("\"alpha\"").unwrap();
        let zebra = json.find("\"zebra\"").unwrap();
        assert!(alpha < zebra, "counter keys sorted");
        assert!(json.starts_with("{\"schema\":\"xks-obs/1\""));
        assert!(json.contains("\"lat\":{\"count\":2,\"sum\":300,\"max\":200"));
        // 100 lands in [64,127], 200 in [128,255]; empty buckets skipped.
        assert!(json.contains("\"buckets\":[[64,127,1],[128,255,1]]"));
    }

    #[test]
    fn merge_unions_and_overwrites() {
        let mut a = Snapshot::new();
        a.counter("x", 1);
        let mut b = Snapshot::new();
        b.counter("x", 5);
        b.gauge("y", 7);
        a.merge(b);
        assert_eq!(a.counters().next(), Some(("x", 5)));
        assert_eq!(a.gauges().next(), Some(("y", 7)));
    }

    #[test]
    fn names_are_escaped() {
        let mut snap = Snapshot::new();
        snap.counter("weird\"name\\with\njunk", 1);
        let json = snap.to_json();
        assert!(json.contains("\"weird\\\"name\\\\with\\njunk\":1"));
    }
}
