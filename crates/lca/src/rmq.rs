//! Sparse-table range-minimum queries.
//!
//! Substrate for the candidate-verification ELCA algorithm
//! ([`crate::elca::elca_candidate_rmq`]): `O(n log n)` construction,
//! `O(1)` per query, immutable after build.

/// A sparse table answering `min(values[l..r])` in constant time.
#[derive(Debug, Clone)]
pub struct Rmq {
    /// `table[j][i]` = min of `values[i .. i + 2^j]`.
    table: Vec<Vec<usize>>,
    len: usize,
}

impl Rmq {
    /// Builds the table over `values`.
    #[must_use]
    pub fn new(values: &[usize]) -> Self {
        let n = values.len();
        let mut table = vec![values.to_vec()];
        let mut width = 1usize;
        while width * 2 <= n {
            let prev = table.last().expect("at least one level");
            let mut level = Vec::with_capacity(n - width * 2 + 1);
            for i in 0..=(n - width * 2) {
                level.push(prev[i].min(prev[i + width]));
            }
            table.push(level);
            width *= 2;
        }
        Rmq { table, len: n }
    }

    /// Number of underlying values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table covers no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Minimum of `values[l..r]` (half-open). `None` when the range is
    /// empty or out of bounds.
    #[must_use]
    pub fn min(&self, l: usize, r: usize) -> Option<usize> {
        if l >= r || r > self.len {
            return None;
        }
        let span = r - l;
        let j = usize::BITS as usize - 1 - span.leading_zeros() as usize;
        let level = &self.table[j];
        Some(level[l].min(level[r - (1 << j)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases() {
        let rmq = Rmq::new(&[5, 3, 8, 1, 9, 2]);
        assert_eq!(rmq.min(0, 6), Some(1));
        assert_eq!(rmq.min(0, 3), Some(3));
        assert_eq!(rmq.min(2, 3), Some(8));
        assert_eq!(rmq.min(4, 6), Some(2));
        assert_eq!(rmq.min(3, 4), Some(1));
    }

    #[test]
    fn degenerate_ranges() {
        let rmq = Rmq::new(&[7]);
        assert_eq!(rmq.min(0, 1), Some(7));
        assert_eq!(rmq.min(0, 0), None);
        assert_eq!(rmq.min(1, 1), None);
        assert_eq!(rmq.min(0, 2), None);
        let empty = Rmq::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.min(0, 1), None);
    }

    #[test]
    fn agrees_with_linear_scan() {
        // Deterministic pseudo-random values.
        let values: Vec<usize> = (0..200usize)
            .map(|i| (i.wrapping_mul(2654435761)) % 1000)
            .collect();
        let rmq = Rmq::new(&values);
        for l in 0..values.len() {
            for r in (l + 1)..=values.len().min(l + 40) {
                let expected = *values[l..r].iter().min().unwrap();
                assert_eq!(rmq.min(l, r), Some(expected), "[{l},{r})");
            }
        }
    }
}
