//! ELCA computation — the paper's `getLCA` stage.
//!
//! ValidRTF anchors its RTFs at **all interesting LCA nodes**, i.e. the
//! ELCA set of Xu & Papakonstantinou (EDBT 2008), computed there by the
//! *Indexed Stack* algorithm. We implement an output-equivalent
//! single-pass algorithm over the merged, document-ordered keyword-node
//! stream, maintaining a stack that mirrors the Dewey path of the
//! current node (one entry per path component).
//!
//! Each stack entry tracks two keyword bitmasks for the corresponding
//! path node:
//!
//! * `raw`  — keywords occurring anywhere in the node's subtree
//!   (decides CA-ness);
//! * `excl` — keywords occurring in the subtree **excluding** the
//!   subtrees of CA descendants (decides ELCA-ness: the witness
//!   condition says a witness shadowed by a CA proper descendant does
//!   not count).
//!
//! When an entry is popped (the scan has left its subtree), it is an
//! ELCA iff `excl` covers the query; it contributes `raw` to its
//! parent's `raw`, and to the parent's `excl` **only when it is not
//! itself CA** (a CA child's occurrences are all shadowed for every
//! ancestor).
//!
//! Complexity: `O(Σ|D_i| · depth)` time, `O(depth)` stack space — the
//! same asymptotics Indexed Stack achieves on these inputs; the
//! substitution is documented in `DESIGN.md` §2.

use xks_xmltree::Dewey;

use crate::common::{full_mask, merge_postings_into};

#[derive(Debug)]
struct Entry {
    /// Keywords in the subtree (so far).
    raw: u64,
    /// Keywords in the subtree excluding CA-descendant subtrees (so far).
    excl: u64,
}

/// Reusable working memory for [`elca_from_merged`]. A warm scratch
/// (capacities grown by an earlier query) makes the ELCA pass perform
/// **zero heap allocations** for documents up to the warmed depth —
/// asserted by the workspace's counting-allocator test.
#[derive(Debug, Default)]
pub struct ElcaScratch {
    /// The mask stack, one entry per component of the current path.
    entries: Vec<Entry>,
    /// The current path's components (mirrors `entries`), so a result
    /// code is built by slicing instead of collecting a fresh vector.
    path: Vec<u32>,
}

/// Computes the ELCA set from an already-merged document-ordered
/// `(dewey, keyword-bitmask)` stream (see
/// [`crate::common::merge_postings_into`]) into `results`, reusing
/// every buffer involved.
///
/// `k` is the number of query keywords. The caller must guarantee the
/// stream covers all `k` lists' postings; empty input yields empty
/// results.
pub fn elca_from_merged(
    merged: &[(Dewey, u64)],
    k: usize,
    scratch: &mut ElcaScratch,
    results: &mut Vec<Dewey>,
) {
    results.clear();
    if merged.is_empty() || k == 0 {
        return;
    }
    let full = full_mask(k);
    scratch.entries.clear();
    scratch.path.clear();

    for (dewey, mask) in merged {
        let components = dewey.components();
        // Length of the common prefix between the stack path and this
        // node's path.
        let mut common = 0usize;
        while common < scratch.path.len()
            && common < components.len()
            && scratch.path[common] == components[common]
        {
            common += 1;
        }
        // Leave the subtrees we are no longer inside.
        pop_to(scratch, common, full, results);
        // Enter the new path components.
        for &c in &components[common..] {
            scratch.entries.push(Entry { raw: 0, excl: 0 });
            scratch.path.push(c);
        }
        // The node itself carries `mask`.
        let top = scratch
            .entries
            .last_mut()
            .expect("path has at least one component");
        top.raw |= mask;
        top.excl |= mask;
    }
    pop_to(scratch, 0, full, results);
    results.sort_unstable();
}

/// Computes the ELCA set of the keyword-node lists, in document order.
///
/// `sets[i]` is the sorted Dewey list `D_i`; any empty list (or no lists)
/// yields an empty result, since no node can cover the query.
///
/// Convenience wrapper allocating its own buffers; hot callers hold a
/// scratch and use [`elca_from_merged`] instead.
#[must_use]
pub fn elca_stack(sets: &[Vec<Dewey>]) -> Vec<Dewey> {
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let mut merged = Vec::new();
    merge_postings_into(sets, &mut merged);
    let mut scratch = ElcaScratch::default();
    let mut results = Vec::new();
    elca_from_merged(&merged, sets.len(), &mut scratch, &mut results);
    results
}

/// Pops stack entries until `entries.len() == target`, finalizing each
/// popped node: report it when its exclusive mask covers the query, and
/// fold its masks into the parent. The popped node's Dewey code is the
/// scratch path up to and including its component — built by slicing,
/// which stays allocation-free for codes within `Dewey::INLINE_CAP`.
fn pop_to(scratch: &mut ElcaScratch, target: usize, full: u64, results: &mut Vec<Dewey>) {
    while scratch.entries.len() > target {
        let entry = scratch.entries.pop().expect("len > target >= 0");
        if entry.excl & full == full {
            results.push(Dewey::from_slice(&scratch.path));
        }
        scratch.path.pop();
        if let Some(parent) = scratch.entries.last_mut() {
            parent.raw |= entry.raw;
            if entry.raw & full != full {
                // Not a CA subtree: its occurrences stay visible to
                // ancestors.
                parent.excl |= entry.raw;
            }
        }
    }
}

/// The candidate + range-minimum-verification ELCA algorithm — a second
/// fast implementation in the spirit of ref. \[12\]'s Indexed Stack (smallest
/// list drives candidate generation; each candidate is verified with
/// indexed probes instead of re-scans).
///
/// How it works:
///
/// 1. **Candidates.** Every ELCA `u` has, in each `D_i`, a witness
///    whose *deepest covering-combination LCA* is exactly `u`
///    (a deeper one would be a CA node shadowing the witness). So the
///    set `{deepest-combination-LCA(v) : v ∈ smallest list}` covers all
///    ELCAs — `O(|S_1| · k)` binary searches.
/// 2. **Shadow depths.** A node `n` is shadowed w.r.t. an ancestor `u`
///    iff some CA node sits strictly between them; since every CA node
///    is an ancestor-or-self of an SLCA, that holds iff
///    `max_s len(lca(n, s)) > len(u)` over the SLCA set — again a
///    neighbor (`lm`/`rm`) property, precomputed per posting.
/// 3. **Verification.** `u` is an ELCA iff every `D_i` holds a witness
///    in `[u, end(u))` whose shadow depth is `≤ len(u)` — a
///    range-*minimum* probe over the precomputed depths, `O(1)` per
///    `(candidate, keyword)` after building one sparse table per list.
///
/// Output-equivalent to [`elca_stack`] (differentially tested); the
/// trade-off is `O(Σ|D_i| log)` preprocessing against the stack's
/// strictly-streaming pass — the ablation bench compares them.
#[must_use]
pub fn elca_candidate_rmq(sets: &[Vec<Dewey>]) -> Vec<Dewey> {
    use crate::common::{deepest_combination_len, deepest_lca_len};
    use crate::rmq::Rmq;
    use crate::slca::indexed_lookup_eager;

    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        return Vec::new();
    }

    let slcas = indexed_lookup_eager(sets);

    // Shadow depth per posting, plus one RMQ table per list.
    let tables: Vec<Rmq> = sets
        .iter()
        .map(|list| {
            let depths: Vec<usize> = list.iter().map(|n| deepest_lca_len(&slcas, n)).collect();
            Rmq::new(&depths)
        })
        .collect();

    // Candidates from the smallest list.
    let driver = sets.iter().min_by_key(|s| s.len()).expect("non-empty sets");
    let mut candidates: Vec<Dewey> = driver
        .iter()
        .map(|v| Dewey::from_slice(&v.components()[..deepest_combination_len(v, sets)]))
        .collect();
    candidates.sort_unstable();
    candidates.dedup();

    // Verify each candidate against every list.
    let mut out = Vec::with_capacity(candidates.len());
    'cand: for u in candidates {
        let Some(ub) = u.subtree_upper_bound() else {
            continue;
        };
        for (list, table) in sets.iter().zip(&tables) {
            let l = list.partition_point(|d| d < &u);
            let r = list.partition_point(|d| d < &ub);
            match table.min(l, r) {
                Some(min_depth) if min_depth <= u.len() => {}
                _ => continue 'cand, // empty range or all shadowed
            }
        }
        out.push(u);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_elca;

    fn list(items: &[&str]) -> Vec<Dewey> {
        items.iter().map(|s| s.parse().unwrap()).collect()
    }

    fn strs(v: &[Dewey]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    fn check(sets: &[Vec<Dewey>], expected: &[&str]) {
        assert_eq!(strs(&elca_stack(sets)), expected, "elca_stack");
        assert_eq!(strs(&naive_elca(sets)), expected, "naive oracle");
    }

    #[test]
    fn paper_q2_two_interesting_lcas() {
        // Example 3/4: "liu keyword" on Figure 1(a) → {0.2.0, 0.2.0.3.0}.
        let sets = vec![
            list(&["0.2.0.0.0.0", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
        ];
        check(&sets, &["0.2.0", "0.2.0.3.0"]);
    }

    #[test]
    fn paper_q3_root_only() {
        let sets = vec![
            list(&["0.0"]),
            list(&["0.0", "0.2.0.1", "0.2.1.1"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
        ];
        check(&sets, &["0"]);
    }

    #[test]
    fn ca_shadowing_blocks_ancestor() {
        // The subtle case: d = 0.0 is CA but not ELCA; its witnesses are
        // shadowed for the root, which therefore is not ELCA either.
        let sets = vec![list(&["0.0.0.0", "0.0.1"]), list(&["0.0.0.1", "0.1"])];
        check(&sets, &["0.0.0"]);
    }

    #[test]
    fn independent_witnesses_keep_ancestor() {
        let sets = vec![list(&["0.0.0", "0.1"]), list(&["0.0.1", "0.2"])];
        check(&sets, &["0", "0.0"]);
    }

    #[test]
    fn keyword_node_is_its_own_elca() {
        let sets = vec![list(&["0.3"]), list(&["0.3"])];
        check(&sets, &["0.3"]);
    }

    #[test]
    fn nested_full_nodes() {
        // ref-style chain: node contains all keywords, ancestor has
        // another full child: both ELCAs.
        let sets = vec![list(&["0.0.0", "0.1.0"]), list(&["0.0.0", "0.1.1"])];
        check(&sets, &["0.0.0", "0.1"]);
    }

    #[test]
    fn empty_inputs() {
        assert!(elca_stack(&[]).is_empty());
        let sets = vec![list(&["0.1"]), vec![]];
        assert!(elca_stack(&sets).is_empty());
    }

    #[test]
    fn single_keyword_every_node_elca() {
        let sets = vec![list(&["0.0", "0.0.0", "0.2"])];
        check(&sets, &["0.0", "0.0.0", "0.2"]);
    }

    #[test]
    fn results_sorted_in_document_order() {
        let sets = vec![
            list(&["0.0.0", "0.2.0", "0.1.0"]),
            list(&["0.0.1", "0.2.1", "0.1.1"]),
        ];
        let got = elca_stack(&sets);
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(got, sorted);
    }
}
