//! Shared helpers over sorted Dewey lists.

use xks_xmltree::Dewey;

/// `lm(S, v)`: the right-most node in sorted `S` that is `<= v`
/// (the *left match* of Xu & Papakonstantinou).
#[must_use]
pub fn left_match<'a>(list: &'a [Dewey], v: &Dewey) -> Option<&'a Dewey> {
    match list.binary_search(v) {
        Ok(i) => Some(&list[i]),
        Err(0) => None,
        Err(i) => Some(&list[i - 1]),
    }
}

/// `rm(S, v)`: the left-most node in sorted `S` that is `>= v`
/// (the *right match*).
#[must_use]
pub fn right_match<'a>(list: &'a [Dewey], v: &Dewey) -> Option<&'a Dewey> {
    match list.binary_search(v) {
        Ok(i) => Some(&list[i]),
        Err(i) => list.get(i),
    }
}

/// The deeper (longer) of two optional LCA results; ties broken toward
/// `a`. Both inputs being `None` yields `None`.
#[must_use]
pub fn deeper(a: Option<Dewey>, b: Option<Dewey>) -> Option<Dewey> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if y.len() > x.len() { y } else { x }),
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

/// Pushes one SLCA-style candidate onto a document-ordered *frontier* —
/// the incremental form of `removeAncestorNodes`. Maintains the
/// invariant that `out` is sorted in document order and contains no
/// ancestor pairs, in O(1) amortized per push.
///
/// The eager candidate generators satisfy the precondition this relies
/// on: each new candidate is either `>=` the last kept one in document
/// order, or an ancestor of it (for driver nodes `v < v'`, the
/// candidate of `v'` that precedes the candidate of `v` must contain
/// `v' > v` in its subtree, hence be its ancestor). Hands the candidate
/// back as `Err` without pushing when the precondition is violated —
/// callers fall back to the sort-based path.
///
/// # Errors
/// `Err(cand)` when `cand` precedes the kept frontier without being an
/// ancestor of its last element (out-of-order unrelated candidate).
pub fn push_frontier(out: &mut Vec<Dewey>, cand: Dewey) -> Result<(), Dewey> {
    while let Some(last) = out.last() {
        if *last == cand || cand.is_ancestor_of(last) {
            return Ok(()); // duplicate, or ancestor of a kept deeper node
        }
        if last.is_ancestor_of(&cand) {
            out.pop(); // kept node was an ancestor of the new candidate
            continue;
        }
        if *last < cand {
            break;
        }
        return Err(cand); // out-of-order unrelated candidate
    }
    out.push(cand);
    Ok(())
}

/// Removes from a candidate multiset every node that is a proper
/// ancestor of another candidate, plus duplicates. Returns the result in
/// document order. This is `removeAncestorNodes` of Xu &
/// Papakonstantinou: applied to the SLCA candidate list it yields the
/// SLCA set.
///
/// A document-ordered input (what the eager candidate generators
/// produce) is processed in a single O(n) pass; unordered input costs
/// one `sort_unstable` first.
#[must_use]
pub fn remove_ancestors(mut candidates: Vec<Dewey>) -> Vec<Dewey> {
    if !candidates.is_sorted() {
        candidates.sort_unstable();
    }
    // Sorted input satisfies the `push_frontier` precondition trivially
    // (each candidate is >= its predecessor, so >= the last kept one).
    let mut out: Vec<Dewey> = Vec::with_capacity(candidates.len());
    for cand in candidates {
        let pushed = push_frontier(&mut out, cand);
        debug_assert!(pushed.is_ok(), "sorted input cannot violate order");
    }
    out
}

/// Merges sorted per-keyword posting lists into one document-ordered
/// stream of `(dewey, keyword-bitmask)` pairs, OR-ing the masks of nodes
/// that appear in several lists. Reuses `out`'s capacity and performs no
/// other heap allocation (`sort_unstable` + in-place mask folding), so a
/// warm caller holding its buffer merges allocation-free.
pub fn merge_postings_into(sets: &[Vec<Dewey>], out: &mut Vec<(Dewey, u64)>) {
    out.clear();
    for (i, list) in sets.iter().enumerate() {
        out.extend(list.iter().map(|d| (d.clone(), 1u64 << i)));
    }
    sort_fold_masks(out);
}

/// Sorts a `(dewey, keyword-bitmask)` stream into document order and
/// folds equal codes in place, OR-ing the masks of duplicates into
/// their first occurrence. The tail of [`merge_postings_into`], shared
/// with the planner's anchored extraction
/// ([`crate::gallop::extract_anchored_into`]) so both paths fold masks
/// identically.
pub fn sort_fold_masks(out: &mut Vec<(Dewey, u64)>) {
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    // `w` trails over the deduplicated prefix.
    let mut w = 0usize;
    for r in 1..out.len() {
        if out[r].0 == out[w].0 {
            out[w].1 |= out[r].1;
        } else {
            w += 1;
            out.swap(w, r);
        }
    }
    out.truncate(if out.is_empty() { 0 } else { w + 1 });
}

/// Allocating convenience wrapper over [`merge_postings_into`].
#[must_use]
pub fn merge_postings(sets: &[Vec<Dewey>]) -> Vec<(Dewey, u64)> {
    let mut out = Vec::new();
    merge_postings_into(sets, &mut out);
    out
}

/// The deepest `lca(v, ·)` length achievable against a sorted list —
/// attained at `v`'s document-order neighbors (`lm`/`rm`), so two
/// binary searches suffice. Returns 0 for an empty list.
#[must_use]
pub fn deepest_lca_len(list: &[Dewey], v: &Dewey) -> usize {
    let l = left_match(list, v).map_or(0, |m| v.lca(m).len());
    let r = right_match(list, v).map_or(0, |m| v.lca(m).len());
    l.max(r)
}

/// Length (code length = depth + 1) of the deepest covering-combination
/// LCA through `v`: one pick per keyword list, `v` included. This is
/// the quantity Definition 2's third rule compares anchors against, and
/// the candidate generator of the verification-based ELCA algorithm.
#[must_use]
pub fn deepest_combination_len(v: &Dewey, sets: &[Vec<Dewey>]) -> usize {
    let mut best = v.len();
    for list in sets {
        best = best.min(deepest_lca_len(list, v));
    }
    best
}

/// The full-query bitmask for `k` keywords.
#[must_use]
pub fn full_mask(k: usize) -> u64 {
    debug_assert!((1..=64).contains(&k));
    if k == 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn list(items: &[&str]) -> Vec<Dewey> {
        items.iter().map(|s| d(s)).collect()
    }

    #[test]
    fn left_and_right_match() {
        let l = list(&["0.0", "0.2", "0.4"]);
        assert_eq!(left_match(&l, &d("0.2")), Some(&d("0.2")));
        assert_eq!(left_match(&l, &d("0.3")), Some(&d("0.2")));
        assert_eq!(left_match(&l, &d("0")), None);
        assert_eq!(right_match(&l, &d("0.2")), Some(&d("0.2")));
        assert_eq!(right_match(&l, &d("0.3")), Some(&d("0.4")));
        assert_eq!(right_match(&l, &d("0.5")), None);
    }

    #[test]
    fn deeper_picks_longer() {
        assert_eq!(deeper(Some(d("0.1")), Some(d("0.1.2"))), Some(d("0.1.2")));
        assert_eq!(deeper(Some(d("0.1.2")), Some(d("0.1"))), Some(d("0.1.2")));
        assert_eq!(deeper(None, Some(d("0"))), Some(d("0")));
        assert_eq!(deeper(None, None), None);
        // Ties keep the first argument.
        assert_eq!(deeper(Some(d("0.1")), Some(d("0.2"))), Some(d("0.1")));
    }

    #[test]
    fn remove_ancestors_keeps_deepest() {
        let got = remove_ancestors(list(&["0", "0.2.0", "0.2", "0.3", "0.2.0"]));
        assert_eq!(got, list(&["0.2.0", "0.3"]));
    }

    #[test]
    fn remove_ancestors_empty_and_single() {
        assert!(remove_ancestors(vec![]).is_empty());
        assert_eq!(remove_ancestors(list(&["0.1"])), list(&["0.1"]));
    }

    #[test]
    fn merge_postings_ors_masks() {
        let sets = vec![list(&["0.1", "0.3"]), list(&["0.2", "0.3"])];
        let merged = merge_postings(&sets);
        let rendered: Vec<(String, u64)> =
            merged.iter().map(|(d, m)| (d.to_string(), *m)).collect();
        assert_eq!(
            rendered,
            vec![
                ("0.1".to_owned(), 0b01),
                ("0.2".to_owned(), 0b10),
                ("0.3".to_owned(), 0b11),
            ]
        );
    }

    #[test]
    fn full_mask_widths() {
        assert_eq!(full_mask(1), 0b1);
        assert_eq!(full_mask(3), 0b111);
        assert_eq!(full_mask(64), u64::MAX);
    }
}
