//! SLCA algorithms (Xu & Papakonstantinou, SIGMOD 2005).
//!
//! Both algorithms compute, for each node `v` of the smallest keyword
//! list, the candidate `slca({v}, S_2, …, S_k)` — the deepest LCA
//! reachable from `v` using the *closest* match in every other list —
//! and then drop candidates that are ancestors of other candidates
//! (`removeAncestorNodes`). They differ only in how the closest matches
//! are found:
//!
//! * [`indexed_lookup_eager`] uses binary search (`lm`/`rm`) per lookup —
//!   `O(|S_1| · k · log |S_max|)`;
//! * [`scan_eager`] advances one cursor per list monotonically —
//!   `O(Σ|S_i|)` total scanning, better when list sizes are comparable.
//!
//! The original MaxMatch retrieves its SLCA anchors this way; ValidRTF
//! replaces this stage with the ELCA computation in [`crate::elca`].

use xks_xmltree::Dewey;

use crate::common::{deeper, left_match, push_frontier, remove_ancestors, right_match};

/// One step of the candidate computation: the deepest LCA of `x` with
/// the closest match in `list`.
fn closest_lca(x: &Dewey, list: &[Dewey]) -> Option<Dewey> {
    let l = left_match(list, x).map(|m| x.lca(m));
    let r = right_match(list, x).map(|m| x.lca(m));
    deeper(l, r)
}

/// Folds a freshly computed candidate into the result frontier. The
/// eager generators emit candidates satisfying the
/// [`push_frontier`] precondition, so this is O(1) amortized; the
/// release-mode fallback (dirty flag) keeps the function total should
/// the precondition ever break.
fn fold_candidate(out: &mut Vec<Dewey>, cand: Dewey, dirty: &mut bool) {
    if *dirty {
        out.push(cand);
    } else if let Err(rejected) = push_frontier(out, cand) {
        debug_assert!(false, "eager candidates violated frontier order");
        out.push(rejected);
        *dirty = true;
    }
}

/// The Indexed Lookup Eager SLCA algorithm, writing the SLCA set into a
/// caller-owned buffer. With a warm buffer the whole pass performs no
/// Dewey-related heap allocation: candidates are folded into the result
/// frontier incrementally (`removeAncestorNodes` as a single on-line
/// O(n) pass) instead of materializing a candidate list first.
pub fn indexed_lookup_eager_into(sets: &[Vec<Dewey>], out: &mut Vec<Dewey>) {
    out.clear();
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        return;
    }
    let driver = sets
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.len())
        .map(|(i, _)| i)
        .expect("non-empty sets");

    let mut dirty = false;
    'outer: for v in &sets[driver] {
        let mut x = v.clone();
        for (i, list) in sets.iter().enumerate() {
            if i == driver {
                continue;
            }
            match closest_lca(&x, list) {
                Some(next) => x = next,
                None => continue 'outer,
            }
        }
        fold_candidate(out, x, &mut dirty);
    }
    if dirty {
        *out = remove_ancestors(std::mem::take(out));
    }
}

/// The Indexed Lookup Eager SLCA algorithm.
///
/// `sets` are the sorted keyword-node lists `D_1..D_k`; the result is the
/// SLCA set in document order. Empty input (or any empty list) yields an
/// empty result.
#[must_use]
pub fn indexed_lookup_eager(sets: &[Vec<Dewey>]) -> Vec<Dewey> {
    let mut out = Vec::new();
    indexed_lookup_eager_into(sets, &mut out);
    out
}

/// The Scan Eager SLCA algorithm: identical candidates, found with
/// monotone cursors instead of binary searches.
#[must_use]
pub fn scan_eager(sets: &[Vec<Dewey>]) -> Vec<Dewey> {
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let driver = sets
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.len())
        .map(|(i, _)| i)
        .expect("non-empty sets");

    // One cursor per non-driver list pointing at the first element >= the
    // last probed position. Because driver nodes are processed in
    // increasing order and the probe anchor `x` never moves left of the
    // driver node's left neighborhood, cursors only advance.
    let mut cursors = vec![0usize; sets.len()];
    let mut out = Vec::with_capacity(sets[driver].len());
    let mut dirty = false;

    'outer: for v in &sets[driver] {
        let mut x = v.clone();
        for (i, list) in sets.iter().enumerate() {
            if i == driver {
                continue;
            }
            // Advance the cursor past everything < v (monotone in v, so
            // amortized linear over the whole run). The closest match
            // for the *current anchor* x is then found by a bounded
            // local scan around the cursor.
            while cursors[i] < list.len() && list[cursors[i]] < *v {
                cursors[i] += 1;
            }
            let lm = if cursors[i] > 0 {
                Some(&list[cursors[i] - 1])
            } else {
                None
            };
            let rm = list.get(cursors[i]);
            let l = lm.map(|m| x.lca(m));
            let r = rm.map(|m| x.lca(m));
            match deeper(l, r) {
                Some(next) => x = next,
                None => continue 'outer,
            }
        }
        fold_candidate(&mut out, x, &mut dirty);
    }
    if dirty {
        out = remove_ancestors(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_slca;

    fn list(items: &[&str]) -> Vec<Dewey> {
        items.iter().map(|s| s.parse().unwrap()).collect()
    }

    fn strs(v: &[Dewey]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    fn check_all(sets: &[Vec<Dewey>], expected: &[&str]) {
        assert_eq!(strs(&indexed_lookup_eager(sets)), expected, "ILE");
        assert_eq!(strs(&scan_eager(sets)), expected, "ScanEager");
        assert_eq!(strs(&naive_slca(sets)), expected, "naive");
    }

    #[test]
    fn paper_q2_slca() {
        let sets = vec![
            list(&["0.2.0.0.0.0", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
        ];
        check_all(&sets, &["0.2.0.3.0"]);
    }

    #[test]
    fn paper_q3_slca_is_root() {
        // Q3 on Figure 1(a): VLDB only at 0.0, rest under 0.2 — SLCA = 0.
        let sets = vec![
            list(&["0.0"]),
            list(&["0.0", "0.2.0.1", "0.2.1.1"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
        ];
        check_all(&sets, &["0"]);
    }

    #[test]
    fn multiple_slcas_across_siblings() {
        // Two articles, each containing both keywords.
        let sets = vec![list(&["0.0.0", "0.1.0"]), list(&["0.0.1", "0.1.1"])];
        check_all(&sets, &["0.0", "0.1"]);
    }

    #[test]
    fn keyword_node_containing_all() {
        let sets = vec![list(&["0.3"]), list(&["0.3"])];
        check_all(&sets, &["0.3"]);
    }

    #[test]
    fn empty_inputs() {
        assert!(indexed_lookup_eager(&[]).is_empty());
        assert!(scan_eager(&[]).is_empty());
        let sets = vec![list(&["0.1"]), vec![]];
        assert!(indexed_lookup_eager(&sets).is_empty());
        assert!(scan_eager(&sets).is_empty());
    }

    #[test]
    fn single_list_slca_is_deepest_nodes() {
        let sets = vec![list(&["0.0", "0.0.0", "0.1"])];
        check_all(&sets, &["0.0.0", "0.1"]);
    }

    #[test]
    fn ancestor_candidates_removed() {
        // Driver nodes produce nested candidates; only deepest survive.
        let sets = vec![list(&["0.0.0.0", "0.5"]), list(&["0.0.0.1", "0.5.0"])];
        check_all(&sets, &["0.0.0", "0.5"]);
    }
}
