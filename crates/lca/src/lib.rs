//! LCA computation substrate: SLCA and ELCA algorithms.
//!
//! Stage 2 of the paper's pipeline (`getLCA`, Algorithm 1) computes
//! *all the interesting LCA nodes* of the keyword-node sets `D_1..D_k` —
//! the ELCA semantics of Xu & Papakonstantinou (EDBT 2008, the "Indexed
//! Stack" algorithm the paper reuses verbatim). MaxMatch in its original
//! form instead computes the SLCA subset (Xu & Papakonstantinou, SIGMOD
//! 2005).
//!
//! This crate implements both semantics, each with more than one
//! algorithm so they can be differential-tested and ablated:
//!
//! * [`slca::indexed_lookup_eager`] — binary-search driven SLCA;
//! * [`slca::scan_eager`] — cursor-scan SLCA (same candidates, different
//!   lookup strategy);
//! * [`elca::elca_stack`] — single-pass Dewey-path stack computing the
//!   ELCA set in merged document order (output-equivalent to Indexed
//!   Stack; see the module docs for the substitution note);
//! * [`elca::elca_candidate_rmq`] — a second fast ELCA implementation
//!   (smallest-list candidates + range-minimum verification, the
//!   indexed-probing spirit of Indexed Stack);
//! * [`naive`] — brute-force oracles for both semantics, used by the
//!   property tests.
//!
//! Throughout, the inputs are the sorted Dewey posting lists produced by
//! `xks-index`, and outputs are sorted in document order.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod common;
pub mod context;
pub mod elca;
pub mod gallop;
pub mod naive;
pub mod rmq;
pub mod slca;

pub use common::{
    merge_postings, merge_postings_into, push_frontier, remove_ancestors, sort_fold_masks,
};
pub use context::{
    elca_into_context, planned_elca_into_context, planned_slca_into_context, slca_into_context,
    QueryContext,
};
pub use elca::{elca_candidate_rmq, elca_from_merged, elca_stack, ElcaScratch};
pub use gallop::{extract_anchored_into, gallop_elca, GallopScratch};
pub use slca::{indexed_lookup_eager, indexed_lookup_eager_into, scan_eager};
