//! Per-thread query working memory: the mutable half of the read path.
//!
//! The concurrency model of the workspace splits every query into two
//! halves: a shared **immutable** index handle (`CorpusSource` backends
//! — safe to share across threads behind an `Arc`) and a per-thread
//! [`QueryContext`] owning every buffer a query mutates — the merged
//! posting stream, the anchor list, the ELCA mask stack, and a decode
//! arena for backends that materialize posting runs per query. One
//! context per thread means the anchor pipeline stays allocation-free
//! when warm (asserted by the workspace's counting-allocator test)
//! *without* any lock on the hot path.
//!
//! The context lives in this crate — the lowest layer that owns the
//! scratch-taking algorithms — so [`elca_into_context`] and
//! [`slca_into_context`] can accept it directly and higher layers
//! (`validrtf`'s engine and executor) reuse the same type.

use xks_xmltree::{Dewey, DeweyListBuf};

use crate::common::merge_postings_into;
use crate::elca::{elca_from_merged, ElcaScratch};
use crate::gallop::{extract_anchored_into, gallop_elca, GallopScratch};
use crate::slca::indexed_lookup_eager_into;

/// Working buffers reused across queries by **one thread** (or one
/// single-threaded engine).
///
/// All fields are public: they are plumbing buffers, and callers such
/// as the counting-allocator test need to warm and inspect them
/// directly. Contents are transient per query — nothing here survives
/// as an answer; results are copied out by the caller.
#[derive(Debug, Default)]
pub struct QueryContext {
    /// Merged `(dewey, keyword-bitmask)` posting stream in document
    /// order — computed once per query, consumed by both `getLCA` and
    /// `getRTF`.
    pub merged: Vec<(Dewey, u64)>,
    /// The anchor nodes of the current query (ELCA or SLCA set).
    pub anchors: Vec<Dewey>,
    /// The ELCA stack's mask/path buffers.
    pub elca: ElcaScratch,
    /// Per-context postings decode arena. Disk backends expose a
    /// cache-bypassing decode into a caller-owned arena
    /// (`xks-persist`'s `IndexReader::keyword_postings_into`); callers
    /// that want per-thread isolation from the shared postings LRU
    /// (e.g. vocabulary scans that would churn it) decode into this
    /// buffer instead — a warm arena re-decodes without allocating and
    /// without taking any cache lock.
    ///
    /// Sharded scatter-gather leans on the same arena: a resolve
    /// worker sweeping its share of (keyword × shard) lookups decodes
    /// **every shard's** run through this one buffer (cleared between
    /// tasks, capacity retained), so visiting `S` shards costs the
    /// same scratch memory as visiting one and leaves each shard's
    /// shared postings cache untouched.
    pub postings: DeweyListBuf,
    /// Scratch buffers for the planner's galloping anchor pass
    /// ([`planned_elca_into_context`]); untouched on the legacy merge
    /// path.
    pub gallop: GallopScratch,
    /// Per-query stage tracer. Storage is inline (a fixed span array),
    /// so carrying it costs nothing when disarmed and recording into
    /// it allocates nothing when armed — the engine arms it for traced
    /// requests and disarms it otherwise, preserving the context's
    /// zero-allocation warm path either way.
    pub trace: xks_obs::QueryTrace,
}

impl QueryContext {
    /// A fresh context (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the buffered capacity (e.g. after an unusually large
    /// query, to return memory to the allocator).
    pub fn shrink(&mut self) {
        *self = Self::default();
    }
}

/// Merges the posting sets into `ctx.merged` and computes the **ELCA**
/// anchors into `ctx.anchors` — the context-taking form of
/// [`merge_postings_into`] + [`elca_from_merged`]. The merged stream is
/// left in the context for `getRTF` to consume.
///
/// Empty input (no sets, or any empty set) clears both buffers: no
/// node can cover the query.
pub fn elca_into_context(sets: &[Vec<Dewey>], ctx: &mut QueryContext) {
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        ctx.merged.clear();
        ctx.anchors.clear();
        return;
    }
    merge_postings_into(sets, &mut ctx.merged);
    elca_from_merged(&ctx.merged, sets.len(), &mut ctx.elca, &mut ctx.anchors);
}

/// Merges the posting sets into `ctx.merged` and computes the **SLCA**
/// anchors into `ctx.anchors` — the context-taking form of
/// [`indexed_lookup_eager_into`] (the merged stream is still produced,
/// because `getRTF` dispatches keyword nodes over it).
pub fn slca_into_context(sets: &[Vec<Dewey>], ctx: &mut QueryContext) {
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        ctx.merged.clear();
        ctx.anchors.clear();
        return;
    }
    merge_postings_into(sets, &mut ctx.merged);
    indexed_lookup_eager_into(sets, &mut ctx.anchors);
}

/// Planned form of [`elca_into_context`]: computes the same ELCA
/// anchors by galloping from the `driver` (rarest) list
/// ([`gallop_elca`]) and rebuilds `ctx.merged` restricted to the
/// anchors' subtrees ([`extract_anchored_into`]) — the only nodes
/// `getRTF` keeps anyway, so downstream results are byte-identical to
/// the merge path.
pub fn planned_elca_into_context(sets: &[Vec<Dewey>], driver: usize, ctx: &mut QueryContext) {
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        ctx.merged.clear();
        ctx.anchors.clear();
        return;
    }
    gallop_elca(sets, driver, &mut ctx.gallop, &mut ctx.anchors);
    extract_anchored_into(sets, &ctx.anchors, &mut ctx.merged);
}

/// Planned form of [`slca_into_context`]: the SLCA anchors already come
/// from a binary-search driven lookup, so only the merge is replaced by
/// the anchored extraction.
pub fn planned_slca_into_context(sets: &[Vec<Dewey>], ctx: &mut QueryContext) {
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        ctx.merged.clear();
        ctx.anchors.clear();
        return;
    }
    indexed_lookup_eager_into(sets, &mut ctx.anchors);
    extract_anchored_into(sets, &ctx.anchors, &mut ctx.merged);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elca::elca_stack;
    use crate::slca::indexed_lookup_eager;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn sets() -> Vec<Vec<Dewey>> {
        vec![
            vec![d("0.0"), d("0.2.0.0.0.0"), d("0.2.0.3.0")],
            vec![d("0.2.0.1"), d("0.2.1.1")],
        ]
    }

    #[test]
    fn context_forms_match_free_functions() {
        let sets = sets();
        let mut ctx = QueryContext::new();
        elca_into_context(&sets, &mut ctx);
        assert_eq!(ctx.anchors, elca_stack(&sets));
        assert!(!ctx.merged.is_empty());

        slca_into_context(&sets, &mut ctx);
        assert_eq!(ctx.anchors, indexed_lookup_eager(&sets));
    }

    #[test]
    fn empty_input_clears_buffers() {
        let mut ctx = QueryContext::new();
        elca_into_context(&sets(), &mut ctx);
        assert!(!ctx.anchors.is_empty());
        elca_into_context(&[], &mut ctx);
        assert!(ctx.anchors.is_empty() && ctx.merged.is_empty());

        slca_into_context(&sets(), &mut ctx);
        slca_into_context(&[vec![d("0.1")], vec![]], &mut ctx);
        assert!(ctx.anchors.is_empty() && ctx.merged.is_empty());
    }

    #[test]
    fn planned_forms_match_legacy_forms() {
        let sets = sets();
        let mut legacy = QueryContext::new();
        let mut planned = QueryContext::new();

        elca_into_context(&sets, &mut legacy);
        for driver in 0..sets.len() {
            planned_elca_into_context(&sets, driver, &mut planned);
            assert_eq!(planned.anchors, legacy.anchors, "driver {driver}");
            // Every under-anchor node of the legacy merge survives with
            // an identical mask; the planned stream has nothing else.
            let filtered: Vec<(Dewey, u64)> = legacy
                .merged
                .iter()
                .filter(|(node, _)| legacy.anchors.iter().any(|a| a.is_ancestor_or_self(node)))
                .cloned()
                .collect();
            assert_eq!(planned.merged, filtered);
        }

        slca_into_context(&sets, &mut legacy);
        planned_slca_into_context(&sets, &mut planned);
        assert_eq!(planned.anchors, legacy.anchors);

        planned_elca_into_context(&[], 0, &mut planned);
        assert!(planned.anchors.is_empty() && planned.merged.is_empty());
        planned_slca_into_context(&[vec![d("0.1")], vec![]], &mut planned);
        assert!(planned.anchors.is_empty() && planned.merged.is_empty());
    }

    #[test]
    fn contexts_are_independent_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<QueryContext>();

        let sets = sets();
        let mut a = QueryContext::new();
        let mut b = QueryContext::new();
        elca_into_context(&sets, &mut a);
        slca_into_context(&sets, &mut b);
        assert_eq!(a.anchors, elca_stack(&sets));
        assert_eq!(b.anchors, indexed_lookup_eager(&sets));
    }
}
