//! Galloping (binary-search driven) anchor computation for planned
//! queries — the rarest-first alternative to the full k-way merge.
//!
//! The legacy anchor pass ([`crate::elca_into_context`]) merges *every*
//! posting of *every* keyword into one document-ordered stream and runs
//! a stack pass over it, so a single stop-word-ish keyword dominates
//! latency regardless of how selective the other terms are. This module
//! computes the same ELCA set without materializing the merge:
//!
//! 1. the **SLCA frontier** comes from the eager indexed lookup
//!    ([`crate::indexed_lookup_eager_into`]), which is already driven by
//!    the smallest list and probes the others by binary search;
//! 2. **candidates** are the deepest covering-combination LCA prefixes
//!    of the *rarest* list's nodes ([`deepest_combination_len`]) — by
//!    the witness argument documented at [`crate::elca_candidate_rmq`],
//!    every ELCA `u` has in *each* list (hence in the driver list) a
//!    witness whose deepest combination LCA is exactly `u`, so this
//!    candidate set is complete for any choice of driver;
//! 3. each candidate is **verified** exactly against the ELCA
//!    definition: `u` is an ELCA iff every list has a witness inside
//!    `subtree(u)` but outside the *shadow* of `u` — the union of the
//!    subtrees of `u`'s children that contain an SLCA strictly below
//!    `u` (every common ancestor strictly below `u` is ancestor-or-self
//!    of such an SLCA and therefore inside one of those child subtrees,
//!    and conversely each such child is itself a common ancestor, so
//!    its whole subtree is shadowed). The witness check walks the gaps
//!    between consecutive child subtrees with `partition_point` range
//!    probes — `O(#children · log |list|)` per list, never touching the
//!    postings in between.
//!
//! Total cost is `O(|driver| · k · depth · log N)` instead of the
//! merge's `O(N log N + N · depth)`, a large win when the driver list
//! is small and some other list is huge. [`extract_anchored_into`]
//! then rebuilds the merged stream `getRTF` consumes, restricted to
//! the postings inside the anchors' subtrees — everything outside is
//! an orphan the RTF dispatch would drop anyway, so downstream results
//! are byte-identical to the merge path (differential-tested here and
//! at the engine layer).

use xks_xmltree::Dewey;

use crate::common::{deepest_combination_len, sort_fold_masks};
use crate::slca::indexed_lookup_eager_into;

/// Reusable buffers for the galloping anchor pass, owned by
/// [`crate::QueryContext`] so a warm planned query allocates nothing.
#[derive(Debug, Default)]
pub struct GallopScratch {
    /// The SLCA frontier of the current query (document order).
    pub slcas: Vec<Dewey>,
    /// Candidate anchors derived from the driver list.
    pub candidates: Vec<Dewey>,
    /// Children of the candidate under verification that contain an
    /// SLCA strictly below it (the shadow roots).
    pub children: Vec<Dewey>,
}

impl GallopScratch {
    /// A fresh scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the **ELCA** anchor set of `sets` into `out` (document
/// order, deduplicated) by galloping from the driver list instead of
/// merging all postings. Output-equivalent to [`crate::elca_stack`];
/// `driver` should be the index of the smallest list (any index is
/// correct, the smallest is fastest).
///
/// Nodes whose subtree upper bound overflows (`u32::MAX` ordinals —
/// unreachable for real corpora) are skipped, mirroring
/// [`crate::elca_candidate_rmq`].
///
/// # Panics
/// Panics when `driver >= sets.len()` on non-empty input.
pub fn gallop_elca(
    sets: &[Vec<Dewey>],
    driver: usize,
    scratch: &mut GallopScratch,
    out: &mut Vec<Dewey>,
) {
    out.clear();
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        return;
    }
    let GallopScratch {
        slcas,
        candidates,
        children,
    } = scratch;
    indexed_lookup_eager_into(sets, slcas);

    candidates.clear();
    for v in &sets[driver] {
        let len = deepest_combination_len(v, sets);
        if len == 0 {
            continue; // no common prefix with some list: not a node
        }
        candidates.push(Dewey::from_slice(&v.components()[..len]));
    }
    candidates.sort_unstable();
    candidates.dedup();

    for u in candidates.iter() {
        if is_elca(u, sets, slcas, children) {
            out.push(u.clone());
        }
    }
}

/// Exact ELCA verification of one candidate `u` against the SLCA
/// frontier: every list must have a witness in `subtree(u)` outside the
/// shadow of `u`'s SLCA-bearing children.
fn is_elca(u: &Dewey, sets: &[Vec<Dewey>], slcas: &[Dewey], children: &mut Vec<Dewey>) -> bool {
    let Some(ub) = u.subtree_upper_bound() else {
        return false;
    };
    // SLCAs strictly below u occupy the document-order interval (u, ub).
    let lo = slcas.partition_point(|s| s <= u);
    let hi = slcas.partition_point(|s| s < &ub);
    children.clear();
    for s in &slcas[lo..hi] {
        let c = Dewey::from_slice(&s.components()[..u.len() + 1]);
        if children.last() != Some(&c) {
            children.push(c); // slcas sorted => consecutive dedup works
        }
    }
    'lists: for list in sets {
        let mut pos = list.partition_point(|d| d < u);
        for c in children.iter() {
            // Gap before this child's subtree: [pos, first >= c).
            if list.partition_point(|d| d < c) > pos {
                continue 'lists; // witness found
            }
            match c.subtree_upper_bound() {
                Some(cub) => pos = list.partition_point(|d| d < &cub),
                None => {
                    // c's ordinal is u32::MAX: no later sibling can
                    // exist, so subtree(c) runs to the end of
                    // subtree(u) and shadows everything after it.
                    pos = list.partition_point(|d| d < &ub);
                    break;
                }
            }
        }
        // Final gap: after the last child subtree, before ub.
        if list.partition_point(|d| d < &ub) > pos {
            continue 'lists;
        }
        return false; // some list has every witness shadowed
    }
    true
}

/// Rebuilds the merged `(dewey, keyword-bitmask)` stream for `getRTF`,
/// restricted to postings inside the subtrees of `anchors` (sorted,
/// deduplicated — as produced by the anchor passes). Per maximal
/// (outermost) anchor, each list contributes its document-order run
/// `[anchor, subtree upper bound)` found by two binary searches; the
/// shared [`sort_fold_masks`] tail then folds masks exactly like
/// [`crate::merge_postings_into`], so for every node that survives the
/// filter the emitted `(dewey, mask)` pair is identical to the full
/// merge's. Nodes outside every anchor's subtree are exactly the
/// orphans the RTF dispatch drops, hence downstream fragments are
/// byte-identical.
///
/// When an anchor's subtree upper bound overflows (unreachable
/// ordinals), its runs extend to the end of each list — a superset
/// that only adds orphans, preserving correctness.
pub fn extract_anchored_into(sets: &[Vec<Dewey>], anchors: &[Dewey], out: &mut Vec<(Dewey, u64)>) {
    out.clear();
    let mut i = 0;
    while i < anchors.len() {
        let a = &anchors[i];
        let ub = a.subtree_upper_bound();
        for (ki, list) in sets.iter().enumerate() {
            let lo = list.partition_point(|d| d < a);
            let hi = match &ub {
                Some(ub) => list.partition_point(|d| d < ub),
                None => list.len(),
            };
            out.extend(list[lo..hi].iter().map(|d| (d.clone(), 1u64 << ki)));
        }
        i += 1;
        match &ub {
            // Skip nested anchors: their subtrees are already covered.
            Some(ub) => {
                while i < anchors.len() && anchors[i] < *ub {
                    i += 1;
                }
            }
            None => break, // runs above already reached the list ends
        }
    }
    sort_fold_masks(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::merge_postings;
    use crate::elca::elca_stack;
    use crate::naive::naive_elca;
    use crate::slca::indexed_lookup_eager;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn list(items: &[&str]) -> Vec<Dewey> {
        items.iter().map(|s| d(s)).collect()
    }

    fn paper_sets() -> Vec<Vec<Dewey>> {
        vec![
            vec![d("0.0"), d("0.2.0.0.0.0"), d("0.2.0.3.0")],
            vec![d("0.2.0.1"), d("0.2.1.1")],
        ]
    }

    /// Deterministic pseudo-random posting lists sharing the document
    /// root, exercising nesting, duplicates across lists, and skew.
    fn random_sets(seed: u64, k: usize, max_len: usize) -> Vec<Vec<Dewey>> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound.max(1)
        };
        (0..k)
            .map(|_| {
                let len = next(max_len as u64) as usize + 1;
                let mut l: Vec<Dewey> = (0..len)
                    .map(|_| {
                        let depth = next(5) as usize + 1;
                        let mut comps = vec![0u32];
                        for _ in 0..depth {
                            comps.push(next(4) as u32);
                        }
                        Dewey::from_slice(&comps)
                    })
                    .collect();
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect()
    }

    #[test]
    fn matches_stack_on_paper_sets() {
        let sets = paper_sets();
        let mut scratch = GallopScratch::new();
        let mut out = Vec::new();
        for driver in 0..sets.len() {
            gallop_elca(&sets, driver, &mut scratch, &mut out);
            assert_eq!(out, elca_stack(&sets), "driver {driver}");
        }
    }

    #[test]
    fn matches_stack_and_naive_on_random_sets() {
        for seed in 0..200u64 {
            let k = (seed % 4 + 1) as usize;
            let sets = random_sets(seed, k, 24);
            let expected = elca_stack(&sets);
            assert_eq!(expected, naive_elca(&sets), "oracle disagrees, seed {seed}");
            let driver = (seed % k as u64) as usize;
            let mut scratch = GallopScratch::new();
            let mut out = Vec::new();
            gallop_elca(&sets, driver, &mut scratch, &mut out);
            assert_eq!(out, expected, "seed {seed} driver {driver}");
        }
    }

    #[test]
    fn single_list_yields_the_list() {
        // ELCA of one list is the list itself: each node is its own
        // unshadowed witness.
        let sets = vec![list(&["0.1", "0.1.0", "0.3"])];
        let mut scratch = GallopScratch::new();
        let mut out = Vec::new();
        gallop_elca(&sets, 0, &mut scratch, &mut out);
        assert_eq!(out, list(&["0.1", "0.1.0", "0.3"]));
        assert_eq!(out, elca_stack(&sets));
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        let mut scratch = GallopScratch::new();
        let mut out = vec![d("0.9")];
        gallop_elca(&[], 0, &mut scratch, &mut out);
        assert!(out.is_empty());
        gallop_elca(&[list(&["0.1"]), vec![]], 0, &mut scratch, &mut out);
        assert!(out.is_empty());

        // Disjoint subtrees: the only common ancestor is the root.
        let sets = vec![list(&["0.0.1"]), list(&["0.1.2"])];
        gallop_elca(&sets, 0, &mut scratch, &mut out);
        assert_eq!(out, elca_stack(&sets));
        assert_eq!(out, list(&["0"]));
    }

    #[test]
    fn fully_overlapping_lists() {
        let l = list(&["0.0", "0.0.1", "0.2"]);
        let sets = vec![l.clone(), l.clone(), l];
        let mut scratch = GallopScratch::new();
        let mut out = Vec::new();
        gallop_elca(&sets, 1, &mut scratch, &mut out);
        assert_eq!(out, elca_stack(&sets));
    }

    #[test]
    fn extraction_equals_filtered_merge() {
        for seed in 0..200u64 {
            let k = (seed % 4 + 1) as usize;
            let sets = random_sets(seed.wrapping_add(7_777), k, 24);
            let anchors = elca_stack(&sets);
            let mut got = Vec::new();
            extract_anchored_into(&sets, &anchors, &mut got);
            let expected: Vec<(Dewey, u64)> = merge_postings(&sets)
                .into_iter()
                .filter(|(node, _)| anchors.iter().any(|a| a.is_ancestor_or_self(node)))
                .collect();
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn extraction_over_slca_anchors() {
        // The SLCA path uses the same extraction with a sparser anchor
        // set: still exactly the under-anchor slice of the full merge.
        let sets = paper_sets();
        let anchors = indexed_lookup_eager(&sets);
        let mut got = Vec::new();
        extract_anchored_into(&sets, &anchors, &mut got);
        let expected: Vec<(Dewey, u64)> = merge_postings(&sets)
            .into_iter()
            .filter(|(node, _)| anchors.iter().any(|a| a.is_ancestor_or_self(node)))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn extraction_with_no_anchors_is_empty() {
        let sets = paper_sets();
        let mut got = vec![(d("0"), 1u64)];
        extract_anchored_into(&sets, &[], &mut got);
        assert!(got.is_empty());
    }

    #[test]
    fn scratch_buffers_are_reused() {
        let sets = paper_sets();
        let mut scratch = GallopScratch::new();
        let mut out = Vec::new();
        gallop_elca(&sets, 0, &mut scratch, &mut out);
        let caps = (
            scratch.slcas.capacity(),
            scratch.candidates.capacity(),
            scratch.children.capacity(),
        );
        gallop_elca(&sets, 0, &mut scratch, &mut out);
        assert_eq!(
            caps,
            (
                scratch.slcas.capacity(),
                scratch.candidates.capacity(),
                scratch.children.capacity(),
            )
        );
    }
}
