//! Brute-force oracles for the SLCA and ELCA semantics.
//!
//! These are deliberately simple (quadratic and worse) and are the
//! ground truth the fast algorithms are differential-tested against.
//! Definitions, following Xu & Papakonstantinou:
//!
//! * `ca`   — nodes whose subtree contains at least one node from every
//!   `D_i` ("common ancestors" containing the whole query).
//! * `slca` — CA nodes none of whose proper descendants is a CA node.
//! * `elca` — nodes `v` with witnesses `n_i ∈ D_i` under `v` such that no
//!   witness lies in the subtree of a CA node that is a proper
//!   descendant of `v`. These are the paper's "interesting LCA nodes"
//!   returned by `getLCA`.

use std::collections::BTreeSet;

use xks_xmltree::Dewey;

/// All candidate ancestors of any keyword node (each CA/ELCA node is an
/// ancestor-or-self of some keyword node).
fn candidate_nodes(sets: &[Vec<Dewey>]) -> BTreeSet<Dewey> {
    let mut cands = BTreeSet::new();
    for list in sets {
        for d in list {
            cands.insert(d.clone());
            for a in d.ancestors() {
                cands.insert(a);
            }
        }
    }
    cands
}

/// `true` iff the subtree of `v` contains some node of `list`.
fn subtree_hits(list: &[Dewey], v: &Dewey) -> bool {
    list.iter().any(|d| v.is_ancestor_or_self(d))
}

/// The CA set: nodes whose subtree covers every keyword, in document
/// order.
#[must_use]
pub fn naive_ca(sets: &[Vec<Dewey>]) -> Vec<Dewey> {
    candidate_nodes(sets)
        .into_iter()
        .filter(|v| sets.iter().all(|list| subtree_hits(list, v)))
        .collect()
}

/// The SLCA set by definition: CA nodes with no CA proper descendant.
#[must_use]
pub fn naive_slca(sets: &[Vec<Dewey>]) -> Vec<Dewey> {
    let ca = naive_ca(sets);
    ca.iter()
        .filter(|v| !ca.iter().any(|u| v.is_ancestor_of(u)))
        .cloned()
        .collect()
}

/// The ELCA set by the witness definition.
#[must_use]
pub fn naive_elca(sets: &[Vec<Dewey>]) -> Vec<Dewey> {
    let ca = naive_ca(sets);
    ca.iter()
        .filter(|v| {
            sets.iter().all(|list| {
                list.iter().any(|n| {
                    v.is_ancestor_or_self(n)
                        && !ca
                            .iter()
                            .any(|u| v.is_ancestor_of(u) && u.is_ancestor_or_self(n))
                })
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn list(items: &[&str]) -> Vec<Dewey> {
        items.iter().map(|s| d(s)).collect()
    }

    fn strs(v: &[Dewey]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    /// The paper's Example 3 shape: Q2 = "liu keyword" on Figure 1(a).
    /// D1 = {name 0.2.0.0.0.0, ref 0.2.0.3.0};
    /// D2 = {title 0.2.0.1, abstract 0.2.0.2, ref 0.2.0.3.0}.
    fn q2_sets() -> Vec<Vec<Dewey>> {
        vec![
            list(&["0.2.0.0.0.0", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
        ]
    }

    #[test]
    fn q2_ca_set() {
        // CA: ref itself, and every ancestor of ref; 0.2.0 also qualifies
        // via (name, title).
        let ca = strs(&naive_ca(&q2_sets()));
        assert_eq!(ca, ["0", "0.2", "0.2.0", "0.2.0.3", "0.2.0.3.0"]);
    }

    #[test]
    fn q2_slca_is_ref_only() {
        assert_eq!(strs(&naive_slca(&q2_sets())), ["0.2.0.3.0"]);
    }

    #[test]
    fn q2_elca_matches_paper_example_3() {
        // Example 3/4: exactly two interesting LCAs — the ref node and
        // the article 0.2.0. "0.2.0.3 (references)" is CA but has no
        // witness outside ref; same for 0.2 and 0.
        assert_eq!(strs(&naive_elca(&q2_sets())), ["0.2.0", "0.2.0.3.0"]);
    }

    #[test]
    fn elca_excludes_ca_shadowed_witnesses() {
        // v → d → e chain: e is full; d adds k1 only; v adds k2 only.
        // d is CA (raw subtree covers both), so v's k1 witness under d
        // is shadowed: ELCA = {e} only.
        let sets = vec![
            list(&["0.0.0.0", "0.0.1"]), // k1: under e, under d
            list(&["0.0.0.1", "0.1"]),   // k2: under e, under v
        ];
        // Tree: v=0, d=0.0, e=0.0.0 with children 0.0.0.0 (k1), 0.0.0.1
        // (k2); d child 0.0.1 (k1); v child 0.1 (k2).
        assert_eq!(strs(&naive_elca(&sets)), ["0.0.0"]);
        assert_eq!(strs(&naive_slca(&sets)), ["0.0.0"]);
        let ca = strs(&naive_ca(&sets));
        assert_eq!(ca, ["0", "0.0", "0.0.0"]);
    }

    #[test]
    fn elca_keeps_independent_parent() {
        // Parent has its own unshadowed witnesses for both keywords.
        let sets = vec![
            list(&["0.0.0", "0.1"]), // k1 under c and directly under root
            list(&["0.0.1", "0.2"]), // k2 under c and directly under root
        ];
        // c = 0.0 is full; root also covers via 0.1/0.2 (not under any CA
        // descendant).
        assert_eq!(strs(&naive_elca(&sets)), ["0", "0.0"]);
        assert_eq!(strs(&naive_slca(&sets)), ["0.0"]);
    }

    #[test]
    fn single_keyword_semantics() {
        // k = 1: every keyword node is CA; SLCA = deepest ones; ELCA =
        // every keyword node (witness = itself, shadowed only if a
        // descendant is also a keyword node... which makes the ancestor
        // lose its own occurrence only when it has none of its own).
        let sets = vec![list(&["0.0", "0.0.0"])];
        assert_eq!(strs(&naive_slca(&sets)), ["0.0.0"]);
        assert_eq!(strs(&naive_elca(&sets)), ["0.0", "0.0.0"]);
    }

    #[test]
    fn disjoint_subtrees_yield_root_lca() {
        let sets = vec![list(&["0.0"]), list(&["0.1"])];
        assert_eq!(strs(&naive_slca(&sets)), ["0"]);
        assert_eq!(strs(&naive_elca(&sets)), ["0"]);
    }
}
