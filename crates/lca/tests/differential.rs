//! Differential property tests: every fast algorithm must agree with the
//! brute-force oracle on random trees and random keyword-node sets.

use std::collections::HashMap;

use proptest::prelude::*;
use xks_lca::naive::{naive_elca, naive_slca};
use xks_lca::{
    elca_candidate_rmq, elca_stack, extract_anchored_into, gallop_elca, indexed_lookup_eager,
    merge_postings, scan_eager, GallopScratch,
};
use xks_xmltree::Dewey;

/// Builds a random tree from parent-choice bytes: node 0 is the root;
/// node i+1 attaches to the node selected by `choices[i] % (i+1)`.
/// Returns all node Dewey codes in creation order.
fn random_tree(choices: &[u8]) -> Vec<Dewey> {
    let mut nodes: Vec<Dewey> = vec![Dewey::root()];
    let mut child_count: HashMap<Dewey, u32> = HashMap::new();
    for &c in choices {
        let parent = nodes[(c as usize) % nodes.len()].clone();
        let n = child_count.entry(parent.clone()).or_insert(0);
        let child = parent.child(*n);
        *n += 1;
        nodes.push(child);
    }
    nodes
}

/// Selects the keyword-node lists: keyword `i` matches node `j` when bit
/// `i` of `marks[j]` is set. Guarantees nothing about non-emptiness.
fn keyword_sets(nodes: &[Dewey], marks: &[u8], k: usize) -> Vec<Vec<Dewey>> {
    (0..k)
        .map(|i| {
            let mut list: Vec<Dewey> = nodes
                .iter()
                .zip(marks.iter().cycle())
                .filter(|(_, m)| (*m >> i) & 1 == 1)
                .map(|(d, _)| d.clone())
                .collect();
            list.sort();
            list.dedup();
            list
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn slca_algorithms_agree_with_oracle(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let expected = naive_slca(&sets);
        prop_assert_eq!(&indexed_lookup_eager(&sets), &expected, "ILE mismatch");
        prop_assert_eq!(&scan_eager(&sets), &expected, "ScanEager mismatch");
    }

    #[test]
    fn elca_stack_agrees_with_oracle(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        prop_assert_eq!(elca_stack(&sets), naive_elca(&sets));
    }

    #[test]
    fn elca_candidate_rmq_agrees_with_oracle(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        prop_assert_eq!(elca_candidate_rmq(&sets), naive_elca(&sets));
    }

    #[test]
    fn gallop_agrees_with_merge_for_every_driver(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 2usize..5,
    ) {
        // The planner's galloping intersection must produce the exact
        // ELCA anchor set of the full k-way merge — for ANY driver
        // list, not just the rarest one the planner picks — and its
        // anchored extraction must keep exactly the merged postings
        // that fall inside some anchor's subtree (the only ones
        // `getRTF` dispatches).
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let expected = elca_stack(&sets);
        let mut scratch = GallopScratch::default();
        let mut anchors = Vec::new();
        for driver in 0..sets.len() {
            gallop_elca(&sets, driver, &mut scratch, &mut anchors);
            prop_assert_eq!(&anchors, &expected, "driver {} diverges", driver);
        }
        let mut extracted = Vec::new();
        extract_anchored_into(&sets, &expected, &mut extracted);
        let anchored: Vec<(Dewey, u64)> = merge_postings(&sets)
            .into_iter()
            .filter(|(d, _)| expected.iter().any(|a| a.is_ancestor_or_self(d)))
            .collect();
        prop_assert_eq!(extracted, anchored);
    }

    #[test]
    fn gallop_handles_disjoint_and_identical_lists(
        choices in prop::collection::vec(any::<u8>(), 1..60),
        k in 2usize..5,
        seed in any::<u8>(),
    ) {
        let nodes = random_tree(&choices);
        let mut scratch = GallopScratch::default();
        let mut anchors = Vec::new();

        // Fully-overlapping: every list identical. ELCAs = the nodes
        // themselves (each node covers all keywords at itself).
        let mut shared: Vec<Dewey> = nodes.iter()
            .skip((seed as usize) % nodes.len())
            .cloned().collect();
        shared.sort();
        shared.dedup();
        prop_assume!(!shared.is_empty());
        let identical: Vec<Vec<Dewey>> = vec![shared.clone(); k];
        let expected = elca_stack(&identical);
        for driver in 0..k {
            gallop_elca(&identical, driver, &mut scratch, &mut anchors);
            prop_assert_eq!(&anchors, &expected, "identical lists, driver {}", driver);
        }

        // Disjoint: round-robin the nodes across k lists. Anchors can
        // only sit at common ancestors; both algorithms must agree.
        let mut disjoint: Vec<Vec<Dewey>> = vec![Vec::new(); k];
        for (i, d) in nodes.iter().enumerate() {
            disjoint[i % k].push(d.clone());
        }
        for list in &mut disjoint {
            list.sort();
            list.dedup();
        }
        prop_assume!(disjoint.iter().all(|s| !s.is_empty()));
        let expected = elca_stack(&disjoint);
        for driver in 0..k {
            gallop_elca(&disjoint, driver, &mut scratch, &mut anchors);
            prop_assert_eq!(&anchors, &expected, "disjoint lists, driver {}", driver);
        }

        // Empty input: any empty list means no anchors from either.
        let mut with_empty = disjoint;
        with_empty[0].clear();
        gallop_elca(&with_empty, 1, &mut scratch, &mut anchors);
        prop_assert!(anchors.is_empty());
        prop_assert!(elca_stack(&with_empty).is_empty());
    }

    #[test]
    fn slca_subset_of_elca(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        // The SLCA nodes are always interesting LCAs (the paper's claim
        // that RTFs generalize the SLCA fragments).
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let slca = indexed_lookup_eager(&sets);
        let elca = elca_stack(&sets);
        for s in &slca {
            prop_assert!(elca.contains(s), "SLCA {} missing from ELCA set", s);
        }
    }

    #[test]
    fn elca_nodes_cover_query(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        // Every reported ELCA's subtree contains every keyword.
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        for e in elca_stack(&sets) {
            for (i, list) in sets.iter().enumerate() {
                prop_assert!(
                    list.iter().any(|d| e.is_ancestor_or_self(d)),
                    "ELCA {} misses keyword {}",
                    e,
                    i
                );
            }
        }
    }
}
