//! Differential property tests: every fast algorithm must agree with the
//! brute-force oracle on random trees and random keyword-node sets.

use std::collections::HashMap;

use proptest::prelude::*;
use xks_lca::naive::{naive_elca, naive_slca};
use xks_lca::{elca_candidate_rmq, elca_stack, indexed_lookup_eager, scan_eager};
use xks_xmltree::Dewey;

/// Builds a random tree from parent-choice bytes: node 0 is the root;
/// node i+1 attaches to the node selected by `choices[i] % (i+1)`.
/// Returns all node Dewey codes in creation order.
fn random_tree(choices: &[u8]) -> Vec<Dewey> {
    let mut nodes: Vec<Dewey> = vec![Dewey::root()];
    let mut child_count: HashMap<Dewey, u32> = HashMap::new();
    for &c in choices {
        let parent = nodes[(c as usize) % nodes.len()].clone();
        let n = child_count.entry(parent.clone()).or_insert(0);
        let child = parent.child(*n);
        *n += 1;
        nodes.push(child);
    }
    nodes
}

/// Selects the keyword-node lists: keyword `i` matches node `j` when bit
/// `i` of `marks[j]` is set. Guarantees nothing about non-emptiness.
fn keyword_sets(nodes: &[Dewey], marks: &[u8], k: usize) -> Vec<Vec<Dewey>> {
    (0..k)
        .map(|i| {
            let mut list: Vec<Dewey> = nodes
                .iter()
                .zip(marks.iter().cycle())
                .filter(|(_, m)| (*m >> i) & 1 == 1)
                .map(|(d, _)| d.clone())
                .collect();
            list.sort();
            list.dedup();
            list
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn slca_algorithms_agree_with_oracle(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let expected = naive_slca(&sets);
        prop_assert_eq!(&indexed_lookup_eager(&sets), &expected, "ILE mismatch");
        prop_assert_eq!(&scan_eager(&sets), &expected, "ScanEager mismatch");
    }

    #[test]
    fn elca_stack_agrees_with_oracle(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        prop_assert_eq!(elca_stack(&sets), naive_elca(&sets));
    }

    #[test]
    fn elca_candidate_rmq_agrees_with_oracle(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        prop_assert_eq!(elca_candidate_rmq(&sets), naive_elca(&sets));
    }

    #[test]
    fn slca_subset_of_elca(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        // The SLCA nodes are always interesting LCAs (the paper's claim
        // that RTFs generalize the SLCA fragments).
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let slca = indexed_lookup_eager(&sets);
        let elca = elca_stack(&sets);
        for s in &slca {
            prop_assert!(elca.contains(s), "SLCA {} missing from ELCA set", s);
        }
    }

    #[test]
    fn elca_nodes_cover_query(
        choices in prop::collection::vec(any::<u8>(), 0..60),
        marks in prop::collection::vec(any::<u8>(), 1..61),
        k in 1usize..5,
    ) {
        // Every reported ELCA's subtree contains every keyword.
        let nodes = random_tree(&choices);
        let sets = keyword_sets(&nodes, &marks, k);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        for e in elca_stack(&sets) {
            for (i, list) in sets.iter().enumerate() {
                prop_assert!(
                    list.iter().any(|d| e.is_ancestor_or_self(d)),
                    "ELCA {} misses keyword {}",
                    e,
                    i
                );
            }
        }
    }
}
