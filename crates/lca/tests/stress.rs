//! Stress and shape tests for the LCA algorithms: deep chains, broad
//! fan-out, and fully-overlapping lists — shapes that exercise stack
//! depth, cursor monotonicity, and mask merging beyond what random
//! trees typically produce.

use xks_lca::naive::{naive_elca, naive_slca};
use xks_lca::{elca_candidate_rmq, elca_stack, indexed_lookup_eager, scan_eager};
use xks_xmltree::Dewey;

fn chain(depth: usize) -> Dewey {
    Dewey::from_components(vec![0; depth + 1])
}

#[test]
fn deep_chain_alternating_keywords() {
    // A 2,000-deep chain with k1 on even depths and k2 on odd depths:
    // every node above the last pair is CA; SLCA is the deepest pair's
    // LCA; ELCA must not blow the stack.
    let depth = 2_000;
    let k1: Vec<Dewey> = (0..=depth).step_by(2).map(chain).collect();
    let k2: Vec<Dewey> = (1..=depth).step_by(2).map(chain).collect();
    let sets = vec![k1, k2];

    let slca = indexed_lookup_eager(&sets);
    assert_eq!(slca.len(), 1);
    assert_eq!(slca[0], chain(depth - 1), "deepest covering node");
    assert_eq!(scan_eager(&sets), slca);

    let elca = elca_stack(&sets);
    // Every node 0..=depth-1 contains both keywords below it, but all
    // witnesses except the deepest pair are shadowed: only the deepest
    // CA is an ELCA.
    assert_eq!(elca, vec![chain(depth - 1)]);
    assert_eq!(elca_candidate_rmq(&sets), elca);
}

#[test]
fn broad_fanout_each_child_full() {
    // Root with 5,000 children, each containing both keywords: each
    // child is an SLCA/ELCA; the root is shadowed everywhere.
    let n = 5_000u32;
    let root = Dewey::root();
    let k1: Vec<Dewey> = (0..n).map(|i| root.child(i).child(0)).collect();
    let k2: Vec<Dewey> = (0..n).map(|i| root.child(i).child(1)).collect();
    let sets = vec![k1, k2];

    let slca = indexed_lookup_eager(&sets);
    assert_eq!(slca.len(), n as usize);
    assert_eq!(scan_eager(&sets), slca);
    let elca = elca_stack(&sets);
    assert_eq!(elca, slca);
    assert_eq!(elca_candidate_rmq(&sets), elca);
}

#[test]
fn identical_lists_every_node_is_its_own_anchor() {
    // D1 == D2: every keyword node covers the query by itself.
    let root = Dewey::root();
    let nodes: Vec<Dewey> = (0..100).map(|i| root.child(i)).collect();
    let sets = vec![nodes.clone(), nodes.clone()];
    assert_eq!(elca_stack(&sets), nodes);
    assert_eq!(elca_candidate_rmq(&sets), nodes);
    assert_eq!(indexed_lookup_eager(&sets), nodes);
}

#[test]
fn skewed_list_sizes() {
    // One singleton list against a huge list: ILE must drive from the
    // singleton; all algorithms agree with the oracles.
    let root = Dewey::root();
    let single = vec![root.child(500).child(0)];
    let huge: Vec<Dewey> = (0..2_000).map(|i| root.child(i).child(1)).collect();
    let sets = vec![single, huge];

    let slca = indexed_lookup_eager(&sets);
    assert_eq!(slca, naive_slca(&sets));
    assert_eq!(scan_eager(&sets), slca);
    assert_eq!(slca, vec![root.child(500)]);

    let elca = elca_stack(&sets);
    assert_eq!(elca, naive_elca(&sets));
    // The root is *not* an ELCA: its only k1 witness lives under the CA
    // node 0.500 and is therefore shadowed.
    assert_eq!(elca, vec![root.child(500)]);
}

#[test]
fn three_way_overlap() {
    // Three keywords sharing some nodes pairwise.
    let d = |s: &str| s.parse::<Dewey>().unwrap();
    let sets = vec![
        vec![d("0.0"), d("0.1.0"), d("0.2")],
        vec![d("0.0"), d("0.1.1")],
        vec![d("0.1.0"), d("0.1.1"), d("0.3")],
    ];
    assert_eq!(indexed_lookup_eager(&sets), naive_slca(&sets));
    assert_eq!(scan_eager(&sets), naive_slca(&sets));
    assert_eq!(elca_stack(&sets), naive_elca(&sets));
}

#[test]
fn sixty_four_keywords() {
    // The mask width limit: 64 lists, one node each, all under the root.
    let root = Dewey::root();
    let sets: Vec<Vec<Dewey>> = (0..64).map(|i| vec![root.child(i)]).collect();
    assert_eq!(elca_stack(&sets), vec![root.clone()]);
    assert_eq!(indexed_lookup_eager(&sets), vec![root]);
}
