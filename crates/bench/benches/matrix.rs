//! Workload-matrix sweep: every scenario cell of
//! `xks_datagen::scenario::ScenarioSpec::matrix` is run on all three
//! backends (memory tables, monolithic `.xks`, 4-shard `.xksm`), per
//! query class (plain / phrase / exclusion / label / adversarial), and
//! every cell is additionally *quality-scored*: ValidRTF vs revised
//! MaxMatch vs SLCA-MaxMatch through `validrtf::quality` (precision /
//! recall / F1 against the paper's Definition-4 semantics plus the
//! four-axiom violation pass). The sweep refuses to emit numbers for a
//! cell whose backends disagree on fragment totals, and asserts that
//! ValidRTF's combined score dominates both baselines — the
//! speed-*and*-quality gate future planner/ingest PRs must pass.
//!
//! Results land in `BENCH_matrix.json` (schema `xks-matrix/1`) at the
//! workspace root: per cell × backend × class throughput and latency
//! percentiles, plus per-algorithm quality scores.
//!
//! ```sh
//! cargo bench -p xks-bench --bench matrix            # full 12-cell run
//! cargo bench -p xks-bench --bench matrix -- --test  # CI smoke subset
//! ```
//!
//! Smoke mode sweeps only `ScenarioSpec::smoke` (the scale-1 cells,
//! still covering every shape/skew/tenancy axis) with single-sweep
//! timing, and writes to `target/BENCH_matrix.json` so a test run
//! never dirties the committed numbers.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use validrtf::engine::{AlgorithmKind, SearchEngine};
use validrtf::quality::{assess_all, QualityConfig, QualityReport};
use validrtf::wire::obj;
use validrtf::{MemoryCorpus, SearchRequest};
use xks_datagen::scenario::{QueryClass, Scenario, ScenarioSpec};
use xks_index::Query;
use xks_obs::Histogram;
use xks_persist::{write_sharded, IndexReader, IndexWriter, ShardedCorpus};
use xks_store::json::Value;
use xks_store::shred;

/// Shards for the sharded backend (matches the committed shards bench).
const SHARDS: usize = 4;

/// Per-(backend, class) timing budget after the warm-up sweep.
const BUDGET: Duration = Duration::from_millis(300);

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("XKS_BENCH_OUT") {
        return PathBuf::from(path);
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    if smoke {
        workspace.join("target").join("BENCH_matrix.json")
    } else {
        workspace.join("BENCH_matrix.json")
    }
}

/// One timed sweep: executes every request, recording per-query
/// latency, and returns the fragment total (the cross-backend
/// differential signal).
fn sweep(engine: &SearchEngine, requests: &[SearchRequest], hist: Option<&Histogram>) -> usize {
    let mut fragments = 0usize;
    for request in requests {
        let t = Instant::now();
        let response = engine.execute(request).expect("matrix request succeeds");
        if let Some(h) = hist {
            h.record_duration(t.elapsed());
        }
        fragments += response.hits.len();
    }
    fragments
}

/// Warm-up sweep, then timed sweeps until the budget is spent (smoke:
/// exactly one). Returns `(qps, latency histogram)`.
fn measure(engine: &SearchEngine, requests: &[SearchRequest], smoke: bool) -> (f64, Histogram) {
    std::hint::black_box(sweep(engine, requests, None));
    let hist = Histogram::new();
    let budget = if smoke { Duration::ZERO } else { BUDGET };
    let start = Instant::now();
    let mut sweeps = 0usize;
    loop {
        std::hint::black_box(sweep(engine, requests, Some(&hist)));
        sweeps += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let qps = (requests.len() * sweeps) as f64 / start.elapsed().as_secs_f64();
    (qps, hist)
}

fn latency_json(hist: &Histogram) -> Value {
    let snap = hist.snapshot();
    Value::Obj(obj([
        ("count", Value::Num(snap.count)),
        ("p50_us", Value::Num(snap.p50())),
        ("p90_us", Value::Num(snap.p90())),
        ("p99_us", Value::Num(snap.p99())),
        ("max_us", Value::Num(snap.max)),
    ]))
}

fn float(v: f64) -> Value {
    if v.is_finite() {
        Value::Float((v * 1e4).round() / 1e4)
    } else {
        Value::Null
    }
}

fn quality_json(name: &str, report: &QualityReport) -> Value {
    Value::Obj(obj([
        ("algorithm", Value::Str(name.to_owned())),
        ("queries", Value::Num(report.queries as u64)),
        ("precision", float(report.precision)),
        ("recall", float(report.recall)),
        ("f1", float(report.f1)),
        ("axiom_checks", Value::Num(report.axioms.checks as u64)),
        (
            "axiom_violations",
            Value::Num(report.axioms.violations() as u64),
        ),
        ("score", float(report.score())),
    ]))
}

/// Keyword-only queries for the quality pass: the `Algorithm` contract
/// (tree + index + `Query`) speaks plain conjunctions, so the grammar
/// classes collapse to their keyword sets here; the full grammar is
/// exercised by the throughput sweep above.
fn quality_queries(scenario: &Scenario) -> Vec<Query> {
    let mut queries = Vec::new();
    for class in [QueryClass::Plain, QueryClass::Adversarial] {
        for text in scenario.queries_of(class) {
            if let Ok(q) = Query::parse(text) {
                queries.push(q);
            }
        }
    }
    queries
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let dir = std::env::temp_dir().join("xks-matrix-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let specs = if smoke {
        ScenarioSpec::smoke()
    } else {
        ScenarioSpec::matrix()
    };

    let mut cells: Vec<Value> = Vec::new();
    for spec in &specs {
        let name = spec.name();
        let scenario = spec.generate();
        let doc = shred(&scenario.tree);

        let mono_path = dir.join(format!("{name}.xks"));
        IndexWriter::new().write(&doc, &mono_path).unwrap();
        let manifest_path = dir.join(format!("{name}.xksm"));
        write_sharded(&IndexWriter::new(), &doc, &manifest_path, SHARDS).unwrap();

        let backends: Vec<(&str, SearchEngine)> = vec![
            (
                "memory",
                SearchEngine::from_owned_source(MemoryCorpus::new(doc.clone())),
            ),
            (
                "disk",
                SearchEngine::from_owned_source(IndexReader::open(&mono_path).unwrap()),
            ),
            (
                "sharded",
                SearchEngine::from_shard_set(
                    ShardedCorpus::open(&manifest_path).unwrap().shard_set(),
                ),
            ),
        ];

        let mut backend_rows: Vec<Value> = Vec::new();
        for (backend, engine) in &backends {
            let mut class_rows: Vec<Value> = Vec::new();
            for class in QueryClass::ALL {
                let requests: Vec<SearchRequest> = scenario
                    .queries_of(class)
                    .iter()
                    .map(|q| {
                        SearchRequest::parse(q)
                            .unwrap()
                            .algorithm(AlgorithmKind::ValidRtf)
                    })
                    .collect();
                assert!(!requests.is_empty(), "{name}: no {} queries", class.name());

                // Differential before timing: every backend must agree
                // with memory on the fragment total for this class.
                let fragments = sweep(engine, &requests, None);
                let expect = sweep(&backends[0].1, &requests, None);
                assert_eq!(
                    fragments,
                    expect,
                    "{name}/{backend}/{} differs from memory",
                    class.name()
                );

                let (qps, hist) = measure(engine, &requests, smoke);
                println!(
                    "bench matrix/{name}/{backend}/{}: {qps:.0} q/s ({fragments} fragments)",
                    class.name()
                );
                class_rows.push(Value::Obj(obj([
                    ("class", Value::Str(class.name().to_owned())),
                    ("queries", Value::Num(requests.len() as u64)),
                    ("fragments", Value::Num(fragments as u64)),
                    ("qps", float(qps)),
                    ("latency", latency_json(&hist)),
                ])));
            }
            backend_rows.push(Value::Obj(obj([
                ("backend", Value::Str((*backend).to_owned())),
                ("classes", Value::Arr(class_rows)),
            ])));
        }

        // Quality pass: score the three algorithms on this cell and
        // enforce the gate — ValidRTF must dominate both baselines.
        let queries = quality_queries(&scenario);
        let cfg = QualityConfig::for_tree(&scenario.tree);
        let reports = assess_all(&scenario.tree, &queries, &cfg);
        let valid_score = reports[0].1.score();
        for (algo, report) in &reports[1..] {
            assert!(
                valid_score >= report.score(),
                "{name}: {algo} scored {} above valid_rtf {valid_score}",
                report.score()
            );
        }
        println!(
            "bench matrix/{name}/quality: valid_rtf {valid_score:.4}, {} {:.4}, {} {:.4}",
            reports[1].0,
            reports[1].1.score(),
            reports[2].0,
            reports[2].1.score(),
        );

        cells.push(Value::Obj(obj([
            ("scenario", Value::Str(name.clone())),
            ("scale", Value::Num(u64::from(spec.scale))),
            ("shape", Value::Str(spec.shape.token().to_owned())),
            ("skew", Value::Str(spec.skew.token().to_owned())),
            ("tenancy", Value::Str(spec.tenancy.token())),
            ("records", Value::Num(scenario.records as u64)),
            ("elements", Value::Num(scenario.tree.len() as u64)),
            ("query_count", Value::Num(scenario.queries.len() as u64)),
            ("backends", Value::Arr(backend_rows)),
            (
                "quality",
                Value::Arr(
                    reports
                        .iter()
                        .map(|(algo, r)| quality_json(algo, r))
                        .collect(),
                ),
            ),
        ])));
    }

    let mut root: BTreeMap<String, Value> = obj([
        ("bench", Value::Str("matrix".to_owned())),
        ("schema", Value::Str("xks-matrix/1".to_owned())),
        (
            "mode",
            Value::Str(if smoke { "smoke" } else { "full" }.to_owned()),
        ),
        ("seed", Value::Num(xks_datagen::scenario::MATRIX_SEED)),
        ("shards", Value::Num(SHARDS as u64)),
        ("available_parallelism", Value::Num(parallelism as u64)),
    ]);
    root.insert("cells".to_owned(), Value::Arr(cells));

    let path = output_path(smoke);
    let json = xks_store::json::to_string(&Value::Obj(root));
    std::fs::write(&path, format!("{json}\n")).unwrap();
    println!("wrote {}", path.display());
}
