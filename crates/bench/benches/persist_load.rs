//! Cold-start bench: how fast can a query session come up from a
//! prebuilt corpus?
//!
//! Compares the two persistence paths over the same DBLP-scale shredded
//! corpus:
//!
//! * **JSON snapshot** (`xks-store`): parse the whole snapshot, rebuild
//!   the derived keyword index, answer one query;
//! * **`xks-persist`** (`.xks`): open the paged binary index (header +
//!   label dictionary only) and answer the same query from buffer-pool
//!   reads.
//!
//! ```sh
//! cargo bench -p xks-bench --bench persist_load
//! ```

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use validrtf::engine::{AlgorithmKind, SearchEngine};
use validrtf::{MemoryCorpus, SearchRequest};
use xks_datagen::{generate_dblp, DblpConfig};
use xks_persist::{IndexReader, IndexWriter};
use xks_store::{shred, snapshot};

const RECORDS: usize = 2_000;
const SEED: u64 = 2009;
const QUERY: &str = "data algorithm";

fn prepare() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join("xks-persist-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("dblp.json");
    let xks_path = dir.join("dblp.xks");
    let doc = shred(&generate_dblp(&DblpConfig::with_records(RECORDS, SEED)));
    snapshot::save(&doc, &json_path).unwrap();
    IndexWriter::new().write(&doc, &xks_path).unwrap();
    eprintln!(
        "corpus: {} elements / {} value rows; snapshot {} bytes, index {} bytes",
        doc.elements.len(),
        doc.values.len(),
        std::fs::metadata(&json_path).unwrap().len(),
        std::fs::metadata(&xks_path).unwrap().len(),
    );
    (json_path, xks_path)
}

fn cold_load(c: &mut Criterion) {
    let (json_path, xks_path) = prepare();
    let request = SearchRequest::parse(QUERY)
        .unwrap()
        .algorithm(AlgorithmKind::ValidRtf);

    let mut group = c.benchmark_group("cold_load");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("json_snapshot_then_query", |b| {
        b.iter(|| {
            let doc = snapshot::load(black_box(&json_path)).expect("snapshot loads");
            let engine = SearchEngine::from_owned_source(MemoryCorpus::new(doc));
            black_box(
                engine
                    .execute(&request)
                    .expect("bench query runs")
                    .hits
                    .len(),
            )
        })
    });
    group.bench_function("xks_open_then_query", |b| {
        b.iter(|| {
            let reader = IndexReader::open(black_box(&xks_path)).expect("index opens");
            let engine = SearchEngine::from_owned_source(reader);
            black_box(
                engine
                    .execute(&request)
                    .expect("bench query runs")
                    .hits
                    .len(),
            )
        })
    });
    // The steady-state comparison: keep the reader (and its warm pool)
    // across queries, as a server would.
    let reader = IndexReader::open(&xks_path).expect("index opens");
    let engine = SearchEngine::from_owned_source(reader);
    group.bench_function("xks_warm_query", |b| {
        b.iter(|| {
            black_box(
                engine
                    .execute(&request)
                    .expect("bench query runs")
                    .hits
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, cold_load);
criterion_main!(benches);
