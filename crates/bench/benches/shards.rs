//! Shard-count sweep: aggregate queries/sec over the 43-query
//! Figure 5/6 workload against partitioned `.xks` corpora at 1/2/4/8
//! shards, on two sharded execution paths:
//!
//! * **scatter** — `SearchEngine::from_shard_set` fanning keyword
//!   resolution and fragment construction out across shards (fan-out
//!   = min(shard count, available parallelism));
//! * **routed** — the same `ShardedCorpus` as a serial routing
//!   `CorpusSource` (`SearchEngine::from_source`), isolating the cost
//!   of the shard indirection itself.
//!
//! The recorded **single-shard baseline** is the unsharded monolithic
//! `.xks` reader on the same corpora — the number the sweep is judged
//! against. Every configuration is sanity-checked to return the same
//! fragment total before anything is timed (byte-level equality is the
//! job of `tests/sharded_differential.rs`).
//!
//! Results land in `BENCH_shards.json` at the workspace root together
//! with `available_parallelism` — on a 1-core container scatter ≈
//! routed ≈ baseline (the sweep still proves correctness under the
//! fan-out); multi-core runners show the scatter path pulling ahead as
//! shards add I/O parallelism.
//!
//! ```sh
//! cargo bench -p xks-bench --bench shards            # full run
//! cargo bench -p xks-bench --bench shards -- --test  # smoke (1 pass)
//! ```
//!
//! Smoke mode writes to `target/BENCH_shards.json` instead, so a test
//! run never dirties the committed numbers.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use validrtf::engine::{AlgorithmKind, SearchEngine};
use validrtf::SearchRequest;
use xks_datagen::queries::{dblp_workload, xmark_workload};
use xks_datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks_persist::{write_sharded, IndexReader, IndexWriter, ShardedCorpus};
use xks_store::shred;

const DBLP_RECORDS: usize = 2_000;
const XMARK_BASE_ITEMS: usize = 40;
const SEED: u64 = 2009;
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Corpus {
    name: &'static str,
    doc: xks_store::ShreddedDoc,
    requests: Vec<SearchRequest>,
}

fn corpora() -> Vec<Corpus> {
    let mut out = Vec::new();
    for (name, tree, workload) in [
        (
            "dblp",
            generate_dblp(&DblpConfig::with_records(DBLP_RECORDS, SEED)),
            dblp_workload(),
        ),
        (
            "xmark",
            generate_xmark(&XmarkConfig::sized(
                XmarkSize::Standard,
                XMARK_BASE_ITEMS,
                SEED,
            )),
            xmark_workload(),
        ),
    ] {
        out.push(Corpus {
            name,
            doc: shred(&tree),
            requests: workload
                .iter()
                .map(|(_, keywords)| {
                    SearchRequest::parse(keywords)
                        .unwrap()
                        .algorithm(AlgorithmKind::ValidRtf)
                })
                .collect(),
        });
    }
    out
}

/// One sweep: every workload query once through each corpus's engine.
fn sweep(engines: &[(SearchEngine, &[SearchRequest])]) -> usize {
    let mut fragments = 0usize;
    for (engine, requests) in engines {
        for request in *requests {
            fragments += engine
                .execute(request)
                .expect("bench request succeeds")
                .hits
                .len();
        }
    }
    fragments
}

/// Timing protocol shared with `hotpath_mt`: one untimed warm-up sweep,
/// then repeated sweeps until the budget is spent.
fn measure(label: &str, per_sweep: usize, smoke: bool, one_sweep: impl Fn() -> usize) -> f64 {
    std::hint::black_box(one_sweep());
    let budget = if smoke {
        Duration::ZERO
    } else {
        Duration::from_secs(2)
    };
    let start = Instant::now();
    let mut sweeps = 0usize;
    loop {
        std::hint::black_box(one_sweep());
        sweeps += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    let qps = (per_sweep * sweeps) as f64 / elapsed.as_secs_f64();
    println!(
        "bench shards/{label}: {qps:.0} queries/sec  \
         ({sweeps} sweeps x {per_sweep} queries in {elapsed:?})"
    );
    qps
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("XKS_BENCH_OUT") {
        return PathBuf::from(path);
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    if smoke {
        workspace.join("target").join("BENCH_shards.json")
    } else {
        workspace.join("BENCH_shards.json")
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let dir = std::env::temp_dir().join("xks-shards-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let corpora = corpora();
    let total_queries: usize = corpora.iter().map(|c| c.requests.len()).sum();
    assert_eq!(total_queries, 43, "the Figure 5/6 workload has 43 queries");
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Unsharded baseline: one monolithic .xks per corpus.
    let baseline_engines: Vec<(SearchEngine, &[SearchRequest])> = corpora
        .iter()
        .map(|c| {
            let path = dir.join(format!("{}-mono.xks", c.name));
            IndexWriter::new().write(&c.doc, &path).unwrap();
            (
                SearchEngine::from_owned_source(IndexReader::open(&path).unwrap()),
                c.requests.as_slice(),
            )
        })
        .collect();
    let expect = sweep(&baseline_engines);
    let baseline = measure("baseline/mono-1shard", total_queries, smoke, || {
        sweep(&baseline_engines)
    });

    let mut rows = String::new();
    for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
        let mut scatter_engines: Vec<(SearchEngine, &[SearchRequest])> = Vec::new();
        let mut routed_engines: Vec<(SearchEngine, &[SearchRequest])> = Vec::new();
        let mut total_bytes = 0u64;
        let mut actual_shards = 0usize;
        for c in &corpora {
            let manifest = dir.join(format!("{}-{shards}.xksm", c.name));
            let summary = write_sharded(&IndexWriter::new(), &c.doc, &manifest, shards).unwrap();
            total_bytes += summary.total_file_len();
            actual_shards = actual_shards.max(summary.manifest.shards.len());
            let corpus = ShardedCorpus::open(&manifest).unwrap();
            scatter_engines.push((
                SearchEngine::from_shard_set(corpus.shard_set()),
                c.requests.as_slice(),
            ));
            routed_engines.push((
                SearchEngine::from_owned_source(corpus),
                c.requests.as_slice(),
            ));
        }
        // Sanity before timing: both sharded paths agree with baseline.
        assert_eq!(expect, sweep(&scatter_engines), "{shards} shards scatter");
        assert_eq!(expect, sweep(&routed_engines), "{shards} shards routed");

        let scatter = measure(
            &format!("{shards}shards/scatter"),
            total_queries,
            smoke,
            || sweep(&scatter_engines),
        );
        let routed = measure(
            &format!("{shards}shards/routed"),
            total_queries,
            smoke,
            || sweep(&routed_engines),
        );
        let sep = if i + 1 == SHARD_SWEEP.len() { "" } else { "," };
        let _ = writeln!(
            rows,
            "    {{ \"shards\": {shards}, \"actual_shards\": {actual_shards}, \
             \"scatter_qps\": {}, \"routed_qps\": {}, \
             \"scatter_vs_baseline\": {}, \"total_index_bytes\": {total_bytes} }}{sep}",
            jnum(scatter),
            jnum(routed),
            jnum(scatter / baseline),
        );
    }

    let path = output_path(smoke);
    let json = format!(
        "{{\n  \"bench\": \"shards\",\n  \"algorithm\": \"ValidRtf\",\n  \
         \"smoke\": {smoke},\n  \
         \"available_parallelism\": {parallelism},\n  \
         \"workload\": {{\n    \"queries\": {total_queries},\n    \
         \"dblp_records\": {DBLP_RECORDS},\n    \
         \"xmark_base_items\": {XMARK_BASE_ITEMS},\n    \"seed\": {SEED}\n  }},\n  \
         \"baseline_unsharded_qps\": {base},\n  \
         \"shard_sweep\": [\n{rows}  ],\n  \
         \"note\": \"scatter = from_shard_set fan-out (min(shards, cores) threads/query); \
         routed = serial ShardedCorpus source; baseline = monolithic .xks. \
         Expect scatter ≈ baseline on 1 core and scatter > baseline as cores and shards grow; \
         results are byte-identical in every configuration (tests/sharded_differential.rs).\"\n}}\n",
        base = jnum(baseline),
    );
    std::fs::write(&path, json).unwrap();
    println!("bench shards: wrote {}", path.display());
}
