//! Closed-loop load generation against a live `xks-serve` instance
//! over real sockets: N client threads issue the 43-query Figure 5/6
//! workload back-to-back (one request in flight per client), sweeping
//! N upward to chart delivered throughput and latency percentiles vs
//! offered load, find the saturation point, and count what admission
//! control sheds once the offered load exceeds the service capacity.
//!
//! Every latency percentile is exact (computed from the full sorted
//! sample vector, never a histogram approximation), and a `429` is
//! recorded as a shed, not an error — shedding under overload is the
//! server *working*.
//!
//! ```sh
//! cargo bench -p xks-bench --bench serve            # full sweep
//! cargo bench -p xks-bench --bench serve -- --test  # smoke (tiny)
//! ```
//!
//! Results land in `BENCH_serve.json` at the workspace root (smoke
//! mode writes to `target/BENCH_serve.json`; `XKS_BENCH_OUT`
//! overrides).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use validrtf::engine::SearchEngine;
use xks_datagen::queries::dblp_workload;
use xks_datagen::{generate_dblp, DblpConfig};
use xks_persist::{IndexReader, IndexWriter};
use xks_serve::{client, Server, ServerConfig};
use xks_store::shred;

const DBLP_RECORDS: usize = 2_000;
const SEED: u64 = 2009;
// Small enough that the top of the client sweep overruns it — the
// shed-rate column must show admission control actually firing.
const QUEUE_DEPTH: usize = 16;

/// Offered-load sweep: concurrent closed-loop clients per level.
const CLIENT_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];
const SMOKE_SWEEP: [usize; 2] = [1, 4];

struct LevelResult {
    clients: usize,
    completed: u64,
    shed: u64,
    errors: u64,
    elapsed: Duration,
    /// Sorted request latencies, nanoseconds (completed requests only).
    latencies: Vec<u64>,
}

impl LevelResult {
    fn qps(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Exact percentile from the sorted sample vector.
    fn percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let rank = ((self.latencies.len() as f64) * p).ceil() as usize;
        self.latencies[rank.clamp(1, self.latencies.len()) - 1]
    }
}

/// One closed-loop level: `clients` threads, each with one request in
/// flight at a time, cycling through the workload bodies.
fn run_level(
    addr: std::net::SocketAddr,
    bodies: &Arc<Vec<Vec<u8>>>,
    clients: usize,
    smoke: bool,
) -> LevelResult {
    let stop = Arc::new(AtomicBool::new(false));
    let shed = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = Arc::clone(bodies);
            let stop = Arc::clone(&stop);
            let shed = Arc::clone(&shed);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut i = c; // stagger the query mix across clients
                               // Smoke mode: a fixed handful of requests per client;
                               // full mode: run until the timer stops the level.
                let budget = if smoke { 5 } else { u64::MAX };
                let mut done = 0u64;
                while done < budget && !stop.load(Ordering::Relaxed) {
                    let body = &bodies[i % bodies.len()];
                    i += 1;
                    let sent = Instant::now();
                    match client::request(addr, "POST", "/search", body) {
                        Ok(response) if response.status == 200 => {
                            latencies.push(sent.elapsed().as_nanos() as u64);
                            done += 1;
                        }
                        Ok(response) if response.status == 429 => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            // Closed loop with immediate retry would
                            // hammer the acceptor; yield briefly.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Ok(_) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies
            })
        })
        .collect();
    if !smoke {
        std::thread::sleep(Duration::from_secs(3));
        stop.store(true, Ordering::Relaxed);
    }
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().expect("client thread"));
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    LevelResult {
        clients,
        completed: latencies.len() as u64,
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        latencies,
    }
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("XKS_BENCH_OUT") {
        return PathBuf::from(path);
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    if smoke {
        workspace.join("target").join("BENCH_serve.json")
    } else {
        workspace.join("BENCH_serve.json")
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let dir = std::env::temp_dir().join("xks-serve-bench");
    std::fs::create_dir_all(&dir).unwrap();

    // A monolithic on-disk index — the deployment shape a resident
    // server exists for.
    let tree = generate_dblp(&DblpConfig::with_records(DBLP_RECORDS, SEED));
    let index_path = dir.join("dblp.xks");
    IndexWriter::new()
        .write(&shred(&tree), &index_path)
        .unwrap();
    let engine = SearchEngine::from_owned_source(IndexReader::open(&index_path).unwrap());

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 16));
    let config = ServerConfig {
        workers,
        queue_depth: QUEUE_DEPTH,
        ..ServerConfig::default()
    };
    let server = Server::bind(engine, config).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
        dblp_workload()
            .iter()
            .map(|(_, keywords)| format!("{{\"query\":{keywords:?}}}").into_bytes())
            .collect(),
    );

    let sweep: &[usize] = if smoke { &SMOKE_SWEEP } else { &CLIENT_SWEEP };
    let mut levels = Vec::new();
    for &clients in sweep {
        let level = run_level(addr, &bodies, clients, smoke);
        println!(
            "bench serve/{clients}clients: {:.0} req/sec  p50 {}µs  p99 {}µs  \
             ({} ok, {} shed, {} errors in {:?})",
            level.qps(),
            level.percentile(0.50) / 1_000,
            level.percentile(0.99) / 1_000,
            level.completed,
            level.shed,
            level.errors,
            level.elapsed,
        );
        assert_eq!(
            level.errors, 0,
            "load generation must see only 200s and 429s"
        );
        levels.push(level);
    }

    shutdown.shutdown();
    let report = server_thread.join().expect("server thread");
    assert!(report.drained_cleanly, "bench server must drain cleanly");

    let saturation = levels
        .iter()
        .max_by(|a, b| a.qps().total_cmp(&b.qps()))
        .map(|l| l.clients)
        .unwrap_or(0);
    let mut rows = String::new();
    for (i, level) in levels.iter().enumerate() {
        let sep = if i + 1 == levels.len() { "" } else { "," };
        let _ = writeln!(
            rows,
            "    {{ \"clients\": {}, \"delivered_qps\": {:.1}, \
             \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
             \"completed\": {}, \"shed_429\": {} }}{sep}",
            level.clients,
            level.qps(),
            level.percentile(0.50) / 1_000,
            level.percentile(0.90) / 1_000,
            level.percentile(0.99) / 1_000,
            level.latencies.last().copied().unwrap_or(0) / 1_000,
            level.completed,
            level.shed,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {smoke},\n  \
         \"workers\": {workers},\n  \"queue_depth\": {QUEUE_DEPTH},\n  \
         \"workload\": {{\n    \"queries\": {queries},\n    \
         \"dblp_records\": {DBLP_RECORDS},\n    \"seed\": {SEED}\n  }},\n  \
         \"saturation_clients\": {saturation},\n  \
         \"server_report\": {{ \"served\": {served}, \"shed\": {shed}, \
         \"timeouts\": {timeouts} }},\n  \
         \"levels\": [\n{rows}  ]\n}}\n",
        queries = bodies.len(),
        served = report.served,
        shed = report.shed,
        timeouts = report.timeouts,
    );
    let path = output_path(smoke);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, json).unwrap();
    println!("bench serve: wrote {}", path.display());
}
