//! Substrate-cost benches: the stages *before* the timing boundary of
//! Figure 5 (the paper measures after keyword-node retrieval; a
//! downstream user still cares what parsing, shredding, and indexing
//! cost on realistic corpora).
//!
//! ```sh
//! cargo bench -p xks-bench --bench substrates
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xks_datagen::{generate_dblp, DblpConfig};
use xks_index::InvertedIndex;
use xks_xmltree::writer::to_xml_compact;

fn substrates(c: &mut Criterion) {
    let tree = generate_dblp(&DblpConfig::with_records(2_000, 7));
    let xml = to_xml_compact(&tree);

    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(criterion::Throughput::Bytes(xml.len() as u64));

    group.bench_function("parse_dblp_2k", |b| {
        b.iter(|| xks_xmltree::parse(black_box(&xml)).expect("parses"))
    });
    group.bench_function("shred_dblp_2k", |b| {
        b.iter(|| xks_store::shred(black_box(&tree)))
    });
    group.bench_function("index_dblp_2k", |b| {
        b.iter(|| InvertedIndex::build(black_box(&tree)))
    });
    group.bench_function("serialize_dblp_2k", |b| {
        b.iter(|| to_xml_compact(black_box(&tree)))
    });
    group.finish();
}

criterion_group!(benches, substrates);
criterion_main!(benches);
