//! Figures 5(b)–5(d): per-query elapsed time of ValidRTF vs revised
//! MaxMatch on the XMark-alike ladder (standard / data1 / data2).
//!
//! ```sh
//! cargo bench -p xks-bench --bench fig5_xmark
//! # one panel:
//! cargo bench -p xks-bench --bench fig5_xmark -- fig5b_xmark_standard
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use validrtf::engine::AlgorithmKind;
use validrtf::SearchRequest;
use xks_bench::{xmark_engine, Scale};
use xks_datagen::queries::xmark_workload;
use xks_datagen::XmarkSize;

fn panel(c: &mut Criterion, group_name: &str, size: XmarkSize) {
    let engine = xmark_engine(Scale::Small, size);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));

    for (abbrev, keywords) in xmark_workload() {
        let base = SearchRequest::parse(&keywords).expect("workload query parses");
        let mm = base.clone().algorithm(AlgorithmKind::MaxMatchRtf);
        let valid = base.algorithm(AlgorithmKind::ValidRtf);
        group.bench_with_input(BenchmarkId::new("maxmatch", abbrev), &mm, |b, request| {
            b.iter(|| engine.execute(request))
        });
        group.bench_with_input(
            BenchmarkId::new("validrtf", abbrev),
            &valid,
            |b, request| b.iter(|| engine.execute(request)),
        );
    }
    group.finish();
}

fn bench_fig5_xmark(c: &mut Criterion) {
    panel(c, "fig5b_xmark_standard", XmarkSize::Standard);
    panel(c, "fig5c_xmark_data1", XmarkSize::Data1);
    panel(c, "fig5d_xmark_data2", XmarkSize::Data2);
}

criterion_group!(benches, bench_fig5_xmark);
criterion_main!(benches);
