//! Ablation benches for the design choices `DESIGN.md` calls out:
//!
//! * `ablate_lca` — ELCA stack vs naive oracle; Indexed Lookup Eager vs
//!   Scan Eager (the paper reuses [12]'s algorithm precisely because
//!   naive LCA enumeration does not scale);
//! * `ablate_knum` — `u64` key-number bitmask comparison vs a hash-set
//!   representation of tree keyword sets (the §4.1 data structure's
//!   reason to exist);
//! * `ablate_cid` — `(min, max)` content features vs exact content-set
//!   comparison for rule 2(b) (§4.1: "the computation following this
//!   idea is expensive", justifying the approximate cID);
//! * `ablate_getrtf_check` — cost of the Definition-2 dispatch check
//!   the paper's pseudo-code omits (EXPERIMENTS.md, Findings #2);
//! * `ablate_pipeline` — end-to-end comparison of the three algorithm
//!   variants on one heavy query.
//!
//! ```sh
//! cargo bench -p xks-bench --bench ablations
//! ```

use std::collections::{BTreeSet, HashSet};
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use validrtf::engine::AlgorithmKind;
use xks_bench::{xmark_engine, Scale};
use xks_datagen::XmarkSize;
use xks_index::Query;
use xks_lca::naive::naive_elca;
use xks_lca::{elca_candidate_rmq, elca_stack, indexed_lookup_eager, scan_eager};
use xks_xmltree::content::node_content;

fn heavy_sets(
    engine: &validrtf::engine::SearchEngine,
    keywords: &str,
) -> xks_index::KeywordNodeSets {
    let query = Query::parse(keywords).expect("parses");
    engine.index().resolve(&query).expect("keywords present")
}

fn ablate_lca(c: &mut Criterion) {
    let engine = xmark_engine(Scale::Small, XmarkSize::Standard);
    // A moderate query for the naive oracle, a heavy one for the others.
    let light = heavy_sets(&engine, "particle threshold");
    let heavy = heavy_sets(&engine, "preventions description order");

    let mut group = c.benchmark_group("ablate_lca");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function("elca_stack/light", |b| {
        b.iter(|| elca_stack(black_box(light.sets())))
    });
    group.bench_function("naive_elca/light", |b| {
        b.iter(|| naive_elca(black_box(light.sets())))
    });
    group.bench_function("elca_stack/heavy", |b| {
        b.iter(|| elca_stack(black_box(heavy.sets())))
    });
    group.bench_function("elca_candidate_rmq/heavy", |b| {
        b.iter(|| elca_candidate_rmq(black_box(heavy.sets())))
    });
    group.bench_function("ile_slca/heavy", |b| {
        b.iter(|| indexed_lookup_eager(black_box(heavy.sets())))
    });
    group.bench_function("scan_eager_slca/heavy", |b| {
        b.iter(|| scan_eager(black_box(heavy.sets())))
    });
    group.finish();
}

fn ablate_knum(c: &mut Criterion) {
    // Subset checks over sibling keyword sets: bitmask vs HashSet.
    let masks: Vec<u64> = (0..512u64).map(|i| i.wrapping_mul(0x9e37) & 0x3f).collect();
    let sets: Vec<HashSet<usize>> = masks
        .iter()
        .map(|m| (0..6).filter(|i| (m >> i) & 1 == 1).collect())
        .collect();

    let mut group = c.benchmark_group("ablate_knum");
    group.bench_function("bitmask_subset_scan", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for (i, a) in masks.iter().enumerate() {
                let covered = masks
                    .iter()
                    .enumerate()
                    .any(|(j, b)| i != j && a != b && a & b == *a);
                if !covered {
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });
    group.bench_function("hashset_subset_scan", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for (i, a) in sets.iter().enumerate() {
                let covered = sets
                    .iter()
                    .enumerate()
                    .any(|(j, b)| i != j && a != b && a.is_subset(b));
                if !covered {
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });
    group.finish();
}

fn ablate_cid(c: &mut Criterion) {
    // Rule 2(b) equality: (min,max) feature vs full content-set compare,
    // over the description texts of the XMark corpus.
    let engine = xmark_engine(Scale::Small, XmarkSize::Standard);
    let tree = engine.tree();
    let contents: Vec<BTreeSet<String>> = tree
        .preorder()
        .filter(|&id| tree.label_name(id) == "text")
        .take(400)
        .map(|id| node_content(tree, id))
        .collect();
    let features: Vec<(String, String)> = contents
        .iter()
        .map(|c| {
            (
                c.iter().next().cloned().unwrap_or_default(),
                c.iter().next_back().cloned().unwrap_or_default(),
            )
        })
        .collect();

    let mut group = c.benchmark_group("ablate_cid");
    group.bench_function("cid_feature_dedup", |b| {
        b.iter(|| {
            let mut seen: HashSet<&(String, String)> = HashSet::new();
            let mut kept = 0usize;
            for f in &features {
                if seen.insert(f) {
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });
    group.bench_function("exact_content_dedup", |b| {
        b.iter(|| {
            let mut seen: Vec<&BTreeSet<String>> = Vec::new();
            let mut kept = 0usize;
            for c in &contents {
                if !seen.contains(&c) {
                    seen.push(c);
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });
    group.finish();
}

fn ablate_getrtf_check(c: &mut Criterion) {
    // Cost of the Definition-2 deepest-combination check that the
    // paper's literal pseudo-code omits (EXPERIMENTS.md Findings #2):
    // two binary searches per keyword node.
    use validrtf::{get_rtf, get_rtf_unchecked};
    use xks_lca::elca_stack;

    let engine = xmark_engine(Scale::Small, XmarkSize::Standard);
    let sets = heavy_sets(&engine, "preventions description order");
    let anchors = elca_stack(sets.sets());

    let mut group = c.benchmark_group("ablate_getrtf_check");
    group.bench_function("get_rtf_checked", |b| {
        b.iter(|| get_rtf(black_box(&anchors), black_box(&sets)))
    });
    group.bench_function("get_rtf_unchecked", |b| {
        b.iter(|| get_rtf_unchecked(black_box(&anchors), black_box(&sets)))
    });
    group.finish();
}

fn ablate_pipeline(c: &mut Criterion) {
    use validrtf::SearchRequest;
    let engine = xmark_engine(Scale::Small, XmarkSize::Standard);
    let request = SearchRequest::parse("preventions description order").expect("parses");

    let mut group = c.benchmark_group("ablate_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, kind) in [
        ("validrtf_end_to_end", AlgorithmKind::ValidRtf),
        ("maxmatch_end_to_end", AlgorithmKind::MaxMatchRtf),
        ("slca_variant_end_to_end", AlgorithmKind::MaxMatchSlca),
    ] {
        let request = request.clone().algorithm(kind);
        group.bench_function(label, |b| b.iter(|| engine.execute(black_box(&request))));
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_lca,
    ablate_knum,
    ablate_cid,
    ablate_getrtf_check,
    ablate_pipeline
);
criterion_main!(benches);
