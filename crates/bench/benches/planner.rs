//! Cost-based planner sweep: aggregate queries/sec on a Zipf-skewed
//! adversarial workload and a uniform control workload, with the
//! planner live (sealed `.xks` v2 stats → rarest-first galloping
//! intersection) versus forced legacy merge (the same reader behind a
//! wrapper that hides `keyword_stats`, so the planner falls back to
//! the full k-way merge — exactly the MutableSource-delta fallback
//! path).
//!
//! The skewed corpus plants a `freq::zipf_counts` vocabulary whose
//! head ranks *saturate*: every block contains every stop word, the
//! way the head of a Zipf vocabulary appears in essentially every
//! document of a real corpus. The tail is nearly absent. The
//! `queries::adversarial_queries` workload pairs every stop word with
//! every rare word — the regime where galloping the rare list through
//! the stop list beats merging both — plus the all-stop query and the
//! single-rare queries that pin the other side of the cost model.
//!
//! Each workload is split by the strategy the planner actually picks
//! (`SearchStats::plan_strategy`): the **gallop subset** (stop × rare
//! pairs) carries the headline speedup; the **merge subset**
//! (all-stop, single-rare — no skew to exploit) must be within noise,
//! as must the whole uniform corpus (exponent 0: equal lists never
//! clear the gallop threshold).
//!
//! Every configuration is sanity-checked to return identical fragment
//! totals before anything is timed (the byte-level differential lives
//! in the engine's unit tests). Results land in `BENCH_planner.json`
//! at the workspace root.
//!
//! ```sh
//! cargo bench -p xks-bench --bench planner            # full run
//! cargo bench -p xks-bench --bench planner -- --test  # smoke (1 pass)
//! ```
//!
//! Smoke mode writes to `target/BENCH_planner.json` instead, so a test
//! run never dirties the committed numbers.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use validrtf::engine::{AlgorithmKind, SearchEngine};
use validrtf::source::{CorpusSource, SourceElement, SourceError};
use validrtf::{PlanStrategy, SearchRequest};
use xks_datagen::freq::zipf_counts;
use xks_datagen::queries::adversarial_queries;
use xks_persist::{IndexReader, IndexWriter};
use xks_store::shred;
use xks_xmltree::Dewey;

const SEED: u64 = 2009;

/// Hides the reader's sealed statistics from the planner: with
/// `keyword_stats` back at the trait default (`None`), every query
/// takes the legacy full-merge path — the same fallback a mutable
/// overlay forces. Everything else delegates, so the comparison times
/// the intersection strategy and nothing else.
#[derive(Debug)]
struct NoStats(IndexReader);

impl CorpusSource for NoStats {
    fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
        self.0.keyword_deweys(keyword)
    }
    fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
        CorpusSource::element(&self.0, dewey)
    }
    fn element_label(&self, dewey: &Dewey) -> Option<u32> {
        self.0.element_label(dewey)
    }
    fn label_name(&self, label: u32) -> Option<String> {
        self.0.label_name(label)
    }
    fn node_count(&self) -> usize {
        self.0.node_count()
    }
    fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
        CorpusSource::try_keyword_deweys(&self.0, keyword)
    }
    fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
        CorpusSource::try_element(&self.0, dewey)
    }
    fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
        CorpusSource::try_element_label(&self.0, dewey)
    }
}

struct Workload {
    name: &'static str,
    tree: xks_xmltree::XmlTree,
    queries: Vec<String>,
}

/// Builds a `<lib><b><t>…</t></b>…</lib>` corpus over a
/// `zipf_counts(vocab, total, exponent)` vocabulary. The first
/// `stop_ranks` keywords saturate — they appear in *every* block, as
/// the head of a skewed vocabulary does in real corpora — and every
/// other rank `r` lands in `counts[r]` blocks (exact sampling for the
/// tail, Bernoulli for mid ranks where exactness is irrelevant).
/// Saturation is what makes the workload adversarial end to end: any
/// query containing a stop word anchors inside blocks, so the
/// measured difference is the intersection strategy, not a one-off
/// giant root fragment both strategies would pay for identically.
fn skewed_corpus(
    prefix: &str,
    blocks: usize,
    vocab: usize,
    total: u64,
    exponent: f64,
    stop_ranks: usize,
) -> (xks_xmltree::XmlTree, Vec<String>, Vec<String>) {
    let counts = zipf_counts(vocab, total, exponent);
    let keywords: Vec<String> = (0..vocab).map(|r| format!("{prefix}kw{r}")).collect();
    let stop: Vec<String> = keywords[..stop_ranks].to_vec();
    let rare: Vec<String> = keywords[vocab - 6..].to_vec();

    let mut rng = StdRng::seed_from_u64(SEED);
    let mut block_words: Vec<Vec<&str>> = (0..blocks)
        .map(|_| stop.iter().map(String::as_str).collect())
        .collect();
    for (r, kw) in keywords.iter().enumerate().skip(stop_ranks) {
        let count = (counts[r] as usize).min(blocks);
        if count * 4 >= blocks {
            // Mid ranks: Bernoulli membership, expectation `count`.
            for words in &mut block_words {
                if rng.gen_range(0..blocks) < count {
                    words.push(kw);
                }
            }
        } else {
            // Tail ranks: exactly `count` distinct blocks, so the
            // rare query lists are never empty.
            let mut placed = 0usize;
            while placed < count {
                let b = rng.gen_range(0..blocks);
                if block_words[b].last() != Some(&kw.as_str()) {
                    block_words[b].push(kw);
                    placed += 1;
                }
            }
        }
    }

    let mut xml = String::with_capacity(blocks * 64);
    xml.push_str("<lib>");
    for words in &block_words {
        let _ = write!(xml, "<b><t>{} filler</t></b>", words.join(" "));
    }
    xml.push_str("</lib>");
    (xks_xmltree::parse(&xml).unwrap(), stop, rare)
}

fn workloads() -> Vec<Workload> {
    // Adversarial: exponent 2.0 concentrates the mass in a saturated
    // 3-word head — every stop list has one posting per block, every
    // tail list a handful, a ratio far beyond GALLOP_MIN_RATIO.
    let (skewed_tree, stop, rare) = skewed_corpus("s", 20_000, 60, 80_000, 2.0, 3);
    // Control: exponent 0 gives equal lists — no pair clears the
    // gallop threshold, so the planner must stay on merge throughout.
    let (uniform_tree, u_stop, u_rare) = skewed_corpus("u", 5_000, 16, 24_000, 0.0, 2);
    vec![
        Workload {
            name: "skewed",
            tree: skewed_tree,
            queries: adversarial_queries(&stop, &rare),
        },
        Workload {
            name: "uniform",
            tree: uniform_tree,
            queries: adversarial_queries(&u_stop, &u_rare[..4]),
        },
    ]
}

fn sweep(engine: &SearchEngine, requests: &[SearchRequest]) -> usize {
    let mut fragments = 0usize;
    for request in requests {
        fragments += engine
            .execute(request)
            .expect("bench request succeeds")
            .hits
            .len();
    }
    fragments
}

/// Timing protocol shared with the shards sweep: one untimed warm-up
/// sweep, then repeated sweeps until the budget is spent.
fn measure(label: &str, per_sweep: usize, smoke: bool, one_sweep: impl Fn() -> usize) -> f64 {
    std::hint::black_box(one_sweep());
    let budget = if smoke {
        Duration::ZERO
    } else {
        Duration::from_secs(2)
    };
    let start = Instant::now();
    let mut sweeps = 0usize;
    loop {
        std::hint::black_box(one_sweep());
        sweeps += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    let qps = (per_sweep * sweeps) as f64 / elapsed.as_secs_f64();
    println!(
        "bench planner/{label}: {qps:.0} queries/sec  \
         ({sweeps} sweeps x {per_sweep} queries in {elapsed:?})"
    );
    qps
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("XKS_BENCH_OUT") {
        return PathBuf::from(path);
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    if smoke {
        workspace.join("target").join("BENCH_planner.json")
    } else {
        workspace.join("BENCH_planner.json")
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let dir = std::env::temp_dir().join("xks-planner-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows = String::new();
    let workloads = workloads();
    let mut first_row = true;
    for w in &workloads {
        let doc = shred(&w.tree);
        let path = dir.join(format!("{}.xks", w.name));
        IndexWriter::new().write(&doc, &path).unwrap();
        let planned = SearchEngine::from_owned_source(IndexReader::open(&path).unwrap());
        let merge = SearchEngine::from_owned_source(NoStats(IndexReader::open(&path).unwrap()));
        let requests: Vec<SearchRequest> = w
            .queries
            .iter()
            .map(|q| {
                SearchRequest::parse(q)
                    .unwrap()
                    .algorithm(AlgorithmKind::ValidRtf)
            })
            .collect();

        // Sanity before timing: both strategies agree on every query.
        let expect = sweep(&merge, &requests);
        assert_eq!(expect, sweep(&planned, &requests), "{} differs", w.name);

        // Split by the strategy the planner actually picked, and pin
        // the expectation: the skewed pairs gallop, everything else
        // (all-stop, single-rare, the whole uniform corpus) merges.
        let (gallop, fallback): (Vec<SearchRequest>, Vec<SearchRequest>) = requests
            .into_iter()
            .partition(|r| planned.execute(r).unwrap().stats.plan_strategy == PlanStrategy::Gallop);
        if w.name == "skewed" {
            assert!(!gallop.is_empty(), "skewed pairs must gallop");
        } else {
            assert!(gallop.is_empty(), "uniform workload must stay on merge");
        }

        for (subset, reqs) in [("gallop", &gallop), ("merge-fallback", &fallback)] {
            if reqs.is_empty() {
                continue;
            }
            let planned_qps = measure(
                &format!("{}/{subset}/planned", w.name),
                reqs.len(),
                smoke,
                || sweep(&planned, reqs),
            );
            let merge_qps = measure(
                &format!("{}/{subset}/merge", w.name),
                reqs.len(),
                smoke,
                || sweep(&merge, reqs),
            );
            let sep = if first_row { "" } else { ",\n" };
            first_row = false;
            let _ = write!(
                rows,
                "{sep}    {{\"corpus\": \"{}\", \"subset\": \"{subset}\", \"queries\": {}, \
                 \"planned_qps\": {}, \"merge_qps\": {}, \"speedup\": {}}}",
                w.name,
                reqs.len(),
                jnum(planned_qps),
                jnum(merge_qps),
                jnum(planned_qps / merge_qps),
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"planner\",\n  \"mode\": \"{}\",\n  \
         \"available_parallelism\": {parallelism},\n  \"workloads\": [\n{rows}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
    );
    let path = output_path(smoke);
    std::fs::write(&path, &json).unwrap();
    println!("wrote {}", path.display());
}
