//! Concurrent query-throughput bench: aggregate queries/sec over the
//! 43-query Figure 5/6 workload with the work-stealing executor
//! (`validrtf::executor::run_batch`) sweeping 1/2/4/8 worker threads on
//! both engine backends:
//!
//! * **memory** — `MemoryCorpus` over the shredded tables;
//! * **disk** — an `xks-persist` `.xks` index read through the sharded
//!   buffer pool (ONE reader shared by every thread).
//!
//! This is the scaling companion to `hotpath` (single-thread warm
//! throughput): the engines are identical and warm; only the thread
//! count varies. Results land in `BENCH_concurrency.json` at the
//! workspace root together with the machine's available parallelism —
//! on a 1-core container the sweep still runs (proving correctness
//! under contention) but speedups hover around 1×; read the numbers
//! next to `available_parallelism`.
//!
//! ```sh
//! cargo bench -p xks-bench --bench hotpath_mt            # full run
//! cargo bench -p xks-bench --bench hotpath_mt -- --test  # smoke (1 pass)
//! ```
//!
//! Smoke mode (also what `cargo test` triggers on bench targets) runs a
//! single pass per configuration and writes the JSON to
//! `target/BENCH_concurrency.json` instead, so a test run never dirties
//! the committed numbers.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use validrtf::engine::{AlgorithmKind, SearchEngine};
use validrtf::executor::run_batch;
use validrtf::{MemoryCorpus, SearchRequest};
use xks_datagen::queries::{dblp_workload, xmark_workload};
use xks_datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks_persist::{IndexReader, IndexWriter};
use xks_store::shred;

const DBLP_RECORDS: usize = 2_000;
const XMARK_BASE_ITEMS: usize = 40;
const SEED: u64 = 2009;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    memory: SearchEngine,
    disk: SearchEngine,
    requests: Vec<SearchRequest>,
}

fn build_workloads() -> Vec<Workload> {
    let dir = std::env::temp_dir().join("xks-hotpath-mt-bench");
    std::fs::create_dir_all(&dir).unwrap();

    let mut out = Vec::new();
    for (corpus, tree, workload) in [
        (
            "dblp",
            generate_dblp(&DblpConfig::with_records(DBLP_RECORDS, SEED)),
            dblp_workload(),
        ),
        (
            "xmark",
            generate_xmark(&XmarkConfig::sized(
                XmarkSize::Standard,
                XMARK_BASE_ITEMS,
                SEED,
            )),
            xmark_workload(),
        ),
    ] {
        let doc = shred(&tree);
        let path = dir.join(format!("{corpus}.xks"));
        IndexWriter::new().write(&doc, &path).unwrap();
        let requests = workload
            .iter()
            .map(|(_, keywords)| {
                SearchRequest::parse(keywords)
                    .unwrap()
                    .algorithm(AlgorithmKind::ValidRtf)
            })
            .collect();
        out.push(Workload {
            memory: SearchEngine::from_owned_source(MemoryCorpus::new(doc)),
            disk: SearchEngine::from_owned_source(IndexReader::open(&path).unwrap()),
            requests,
        });
    }
    out
}

/// One full sweep: every workload query through the executor with the
/// given fan-out. Returns the fragment total (a cheap checksum).
fn sweep(
    pick: impl Fn(&Workload) -> &SearchEngine,
    workloads: &[Workload],
    threads: usize,
) -> usize {
    let mut fragments = 0usize;
    for w in workloads {
        let results = run_batch(pick(w), &w.requests, threads);
        fragments += results
            .iter()
            .map(|r| r.as_ref().expect("bench request succeeds").hits.len())
            .sum::<usize>();
    }
    fragments
}

/// Measures aggregate queries/sec of `one_sweep` (which must run every
/// workload query once): one untimed warm-up sweep, then repeated
/// sweeps until the budget is spent. All timed configurations —
/// executor at every thread count *and* the plain-loop reference — go
/// through this one timing protocol, so their ratios are comparable.
fn measure(label: &str, per_sweep: usize, smoke: bool, one_sweep: impl Fn() -> usize) -> f64 {
    std::hint::black_box(one_sweep()); // warm-up
    let budget = if smoke {
        Duration::ZERO
    } else {
        Duration::from_secs(2)
    };
    let start = Instant::now();
    let mut sweeps = 0usize;
    loop {
        std::hint::black_box(one_sweep());
        sweeps += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    let qps = (per_sweep * sweeps) as f64 / elapsed.as_secs_f64();
    println!(
        "bench hotpath_mt/{label}: {qps:.0} queries/sec  \
         ({sweeps} sweeps x {per_sweep} queries in {elapsed:?})"
    );
    qps
}

fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("XKS_BENCH_OUT") {
        return PathBuf::from(path);
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    if smoke {
        workspace.join("target").join("BENCH_concurrency.json")
    } else {
        workspace.join("BENCH_concurrency.json")
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let workloads = build_workloads();
    let total_queries: usize = workloads.iter().map(|w| w.requests.len()).sum();
    assert_eq!(total_queries, 43, "the Figure 5/6 workload has 43 queries");
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Sanity: backends and thread counts all agree before timing.
    let expect = sweep(|w| &w.memory, &workloads, 1);
    for threads in THREAD_SWEEP {
        assert_eq!(expect, sweep(|w| &w.memory, &workloads, threads));
        assert_eq!(expect, sweep(|w| &w.disk, &workloads, threads));
    }

    // Reference: the plain `engine.execute` loop (what the
    // single-thread `hotpath` bench times), measured in THIS process
    // and under the same timing protocol, so the "executor adds no
    // single-thread overhead" comparison is immune to cross-run
    // machine noise.
    let reference: Vec<f64> = [("memory", 0), ("disk", 1)]
        .into_iter()
        .map(|(label, which)| {
            measure(
                &format!("{label}/loop-reference"),
                total_queries,
                smoke,
                || {
                    let mut fragments = 0usize;
                    for w in &workloads {
                        let engine = if which == 0 { &w.memory } else { &w.disk };
                        for request in &w.requests {
                            fragments += engine
                                .execute(request)
                                .expect("bench request succeeds")
                                .hits
                                .len();
                        }
                    }
                    fragments
                },
            )
        })
        .collect();

    let mut memory = Vec::new();
    let mut disk = Vec::new();
    for threads in THREAD_SWEEP {
        memory.push(measure(
            &format!("memory/{threads}t"),
            total_queries,
            smoke,
            || sweep(|w| &w.memory, &workloads, threads),
        ));
        disk.push(measure(
            &format!("disk/{threads}t"),
            total_queries,
            smoke,
            || sweep(|w| &w.disk, &workloads, threads),
        ));
    }

    let mut backends = String::new();
    for (label, series) in [("memory", &memory), ("disk", &disk)] {
        let _ = write!(backends, "    \"{label}\": {{ ");
        for (i, threads) in THREAD_SWEEP.iter().enumerate() {
            let sep = if i + 1 == THREAD_SWEEP.len() {
                ""
            } else {
                ", "
            };
            let _ = write!(backends, "\"{threads}\": {}{sep}", jnum(series[i]));
        }
        let _ = writeln!(backends, " }},");
    }

    // Everything derived from THREAD_SWEEP, so editing the sweep can
    // never desynchronize the emitted JSON from what actually ran.
    let sweep_json: Vec<String> = THREAD_SWEEP.iter().map(ToString::to_string).collect();
    let sweep_json = sweep_json.join(", ");
    let idx4 = THREAD_SWEEP
        .iter()
        .position(|&t| t == 4)
        .expect("THREAD_SWEEP includes the 4-thread point the speedup reports");

    let path = output_path(smoke);
    let json = format!(
        "{{\n  \"bench\": \"hotpath_mt\",\n  \"algorithm\": \"ValidRtf\",\n  \
         \"smoke\": {smoke},\n  \
         \"available_parallelism\": {parallelism},\n  \
         \"workload\": {{\n    \"queries\": {total_queries},\n    \
         \"dblp_records\": {DBLP_RECORDS},\n    \
         \"xmark_base_items\": {XMARK_BASE_ITEMS},\n    \"seed\": {SEED}\n  }},\n  \
         \"thread_sweep\": [{sweep_json}],\n  \
         \"aggregate_qps\": {{\n{backends}    \
         \"note\": \"queries/sec over the whole workload; keys are worker threads\"\n  }},\n  \
         \"single_thread_overhead\": {{\n    \
         \"memory_loop_qps\": {mref},\n    \"disk_loop_qps\": {dref},\n    \
         \"memory_1t_vs_loop\": {mrel},\n    \"disk_1t_vs_loop\": {drel},\n    \
         \"note\": \"plain engine.search loop measured in-process; 1t executor should be within ~10%\"\n  }},\n  \
         \"speedup_vs_1_thread\": {{\n    \
         \"memory_4t\": {m4},\n    \"disk_4t\": {d4},\n    \
         \"note\": \"expect ~min(threads, available_parallelism)x; ~1x on 1 core\"\n  }}\n}}\n",
        mref = jnum(reference[0]),
        dref = jnum(reference[1]),
        mrel = jnum(memory[0] / reference[0]),
        drel = jnum(disk[0] / reference[1]),
        m4 = jnum(memory[idx4] / memory[0]),
        d4 = jnum(disk[idx4] / disk[0]),
    );
    std::fs::write(&path, json).unwrap();
    println!("bench hotpath_mt: wrote {}", path.display());
}
