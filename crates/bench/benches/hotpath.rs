//! Warm query-throughput bench: queries/sec over the 43-query
//! Figure 5/6 workload (18 DBLP + 25 XMark abbreviations) on both
//! backends of the engine:
//!
//! * **memory** — `MemoryCorpus` over the shredded tables;
//! * **disk** — an `xks-persist` `.xks` index read through the buffer
//!   pool.
//!
//! Unlike `persist_load` (cold-start latency) this bench measures the
//! steady state a server lives in: engines stay warm across queries and
//! the whole workload is swept repeatedly. Results are written to
//! `BENCH_hotpath.json` at the workspace root together with the
//! recorded pre-change baseline, so the speedup of the zero-allocation
//! hot path stays visible in the repo.
//!
//! ```sh
//! cargo bench -p xks-bench --bench hotpath            # full run
//! cargo bench -p xks-bench --bench hotpath -- --test  # smoke (1 pass)
//! ```
//!
//! Smoke mode (also what `cargo test` triggers on bench targets) runs a
//! single pass and writes the JSON to `target/BENCH_hotpath.json`
//! instead, so a test run never dirties the committed numbers.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use validrtf::engine::{AlgorithmKind, SearchEngine};
use validrtf::{MemoryCorpus, SearchRequest};
use xks_datagen::queries::{dblp_workload, xmark_workload};
use xks_datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks_obs::{Histogram, HistogramSnapshot};
use xks_persist::{IndexReader, IndexWriter};
use xks_store::shred;

const DBLP_RECORDS: usize = 2_000;
const XMARK_BASE_ITEMS: usize = 40;
const SEED: u64 = 2009;

/// Pre-change baseline, recorded on this machine at the seed of this PR
/// (heap-allocated `Vec<u32>` Dewey codes, per-query postings decode,
/// string-parsed memory postings). The acceptance bar for the
/// zero-allocation hot path is ≥2× both numbers.
const BASELINE_MEMORY_QPS: f64 = 667.0; // mean of two seed runs (695, 638)
const BASELINE_DISK_QPS: f64 = 234.0; // mean of two seed runs (244, 224)

struct Workload {
    memory: SearchEngine,
    disk: SearchEngine,
    requests: Vec<SearchRequest>,
}

fn build_workloads() -> Vec<Workload> {
    let dir = std::env::temp_dir().join("xks-hotpath-bench");
    std::fs::create_dir_all(&dir).unwrap();

    let mut out = Vec::new();
    for (corpus, tree, workload) in [
        (
            "dblp",
            generate_dblp(&DblpConfig::with_records(DBLP_RECORDS, SEED)),
            dblp_workload(),
        ),
        (
            "xmark",
            generate_xmark(&XmarkConfig::sized(
                XmarkSize::Standard,
                XMARK_BASE_ITEMS,
                SEED,
            )),
            xmark_workload(),
        ),
    ] {
        let doc = shred(&tree);
        let path = dir.join(format!("{corpus}.xks"));
        IndexWriter::new().write(&doc, &path).unwrap();
        let requests = workload
            .iter()
            .map(|(_, keywords)| {
                SearchRequest::parse(keywords)
                    .unwrap()
                    .algorithm(AlgorithmKind::ValidRtf)
            })
            .collect();
        out.push(Workload {
            memory: SearchEngine::from_owned_source(MemoryCorpus::new(doc)),
            disk: SearchEngine::from_owned_source(IndexReader::open(&path).unwrap()),
            requests,
        });
    }
    out
}

/// One full sweep: every workload query against one backend. Timed
/// sweeps pass a histogram to collect each query's engine-side total.
fn sweep(
    pick: impl Fn(&Workload) -> &SearchEngine,
    workloads: &[Workload],
    latency: Option<&Histogram>,
) -> usize {
    let mut fragments = 0usize;
    for w in workloads {
        let engine = pick(w);
        for request in &w.requests {
            let response = engine.execute(request).expect("bench request succeeds");
            fragments += response.hits.len();
            if let Some(latency) = latency {
                latency.record_duration(response.timings.total());
            }
        }
    }
    fragments
}

/// Measures warm queries/sec for one backend: one untimed warm-up
/// sweep, then repeated sweeps until the time budget is spent. Also
/// returns the per-query latency distribution over all timed sweeps.
fn measure(
    name: &str,
    pick: impl Fn(&Workload) -> &SearchEngine,
    workloads: &[Workload],
    smoke: bool,
) -> (f64, HistogramSnapshot) {
    let per_sweep: usize = workloads.iter().map(|w| w.requests.len()).sum();
    std::hint::black_box(sweep(&pick, workloads, None)); // warm-up
    let budget = if smoke {
        Duration::ZERO
    } else {
        Duration::from_secs(3)
    };
    let latency = Histogram::new();
    let start = Instant::now();
    let mut sweeps = 0usize;
    loop {
        std::hint::black_box(sweep(&pick, workloads, Some(&latency)));
        sweeps += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    let qps = (per_sweep * sweeps) as f64 / elapsed.as_secs_f64();
    let lat = latency.snapshot();
    println!(
        "bench hotpath/{name}: {qps:.0} queries/sec  \
         ({sweeps} sweeps x {per_sweep} queries in {elapsed:?}); \
         per-query p50 {}µs p90 {}µs p99 {}µs max {}µs",
        lat.p50() / 1_000,
        lat.p90() / 1_000,
        lat.p99() / 1_000,
        lat.max / 1_000,
    );
    (qps, lat)
}

/// A latency distribution as a JSON object (nanosecond integers).
fn latency_json(lat: &HistogramSnapshot) -> String {
    format!(
        "{{ \"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p99_ns\": {}, \"max_ns\": {} }}",
        lat.count,
        lat.mean(),
        lat.p50(),
        lat.p90(),
        lat.p99(),
        lat.max,
    )
}

fn json_escape_free(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

fn output_path(smoke: bool) -> PathBuf {
    if let Ok(path) = std::env::var("XKS_BENCH_OUT") {
        return PathBuf::from(path);
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    if smoke {
        workspace.join("target").join("BENCH_hotpath.json")
    } else {
        workspace.join("BENCH_hotpath.json")
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let workloads = build_workloads();
    let total_queries: usize = workloads.iter().map(|w| w.requests.len()).sum();
    assert_eq!(total_queries, 43, "the Figure 5/6 workload has 43 queries");

    // Sanity: both backends agree before we time anything.
    let mem_frags = sweep(|w| &w.memory, &workloads, None);
    let disk_frags = sweep(|w| &w.disk, &workloads, None);
    assert_eq!(mem_frags, disk_frags, "backends disagree on the workload");

    let (memory_qps, memory_lat) = measure("memory_warm", |w| &w.memory, &workloads, smoke);
    let (disk_qps, disk_lat) = measure("disk_warm", |w| &w.disk, &workloads, smoke);

    let path = output_path(smoke);
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"schema_version\": 2,\n  \
         \"algorithm\": \"ValidRtf\",\n  \
         \"smoke\": {smoke},\n  \
         \"workload\": {{\n    \"queries\": {total_queries},\n    \
         \"dblp_records\": {DBLP_RECORDS},\n    \
         \"xmark_base_items\": {XMARK_BASE_ITEMS},\n    \"seed\": {SEED}\n  }},\n  \
         \"baseline\": {{\n    \"memory_qps\": {b_mem},\n    \"disk_qps\": {b_disk},\n    \
         \"note\": \"pre-change seed: Vec<u32> Dewey, per-query postings decode\"\n  }},\n  \
         \"current\": {{\n    \"memory_qps\": {mem},\n    \"disk_qps\": {disk}\n  }},\n  \
         \"latency\": {{\n    \"memory\": {lat_mem},\n    \"disk\": {lat_disk}\n  }},\n  \
         \"speedup\": {{\n    \"memory\": {s_mem},\n    \"disk\": {s_disk}\n  }}\n}}\n",
        b_mem = json_escape_free(BASELINE_MEMORY_QPS),
        b_disk = json_escape_free(BASELINE_DISK_QPS),
        mem = json_escape_free(memory_qps),
        disk = json_escape_free(disk_qps),
        lat_mem = latency_json(&memory_lat),
        lat_disk = latency_json(&disk_lat),
        s_mem = json_escape_free(memory_qps / BASELINE_MEMORY_QPS),
        s_disk = json_escape_free(disk_qps / BASELINE_DISK_QPS),
    );
    std::fs::write(&path, json).unwrap();
    println!("bench hotpath: wrote {}", path.display());
}
