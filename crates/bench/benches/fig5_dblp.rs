//! Figure 5(a): per-query elapsed time of ValidRTF vs revised MaxMatch
//! on the DBLP-alike corpus (criterion variant of the `repro` harness).
//!
//! ```sh
//! cargo bench -p xks-bench --bench fig5_dblp
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use validrtf::engine::AlgorithmKind;
use validrtf::SearchRequest;
use xks_bench::{dblp_engine, Scale};
use xks_datagen::queries::dblp_workload;

fn bench_fig5_dblp(c: &mut Criterion) {
    let engine = dblp_engine(Scale::Small);
    let mut group = c.benchmark_group("fig5a_dblp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));

    for (abbrev, keywords) in dblp_workload() {
        let base = SearchRequest::parse(&keywords).expect("workload query parses");
        let mm = base.clone().algorithm(AlgorithmKind::MaxMatchRtf);
        let valid = base.algorithm(AlgorithmKind::ValidRtf);
        group.bench_with_input(BenchmarkId::new("maxmatch", abbrev), &mm, |b, request| {
            b.iter(|| engine.execute(request))
        });
        group.bench_with_input(
            BenchmarkId::new("validrtf", abbrev),
            &valid,
            |b, request| b.iter(|| engine.execute(request)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_dblp);
criterion_main!(benches);
