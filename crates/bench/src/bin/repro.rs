//! `repro` — regenerates every evaluation artifact of the paper:
//!
//! * **Figure 5(a)–(d)**: per-query elapsed time of ValidRTF vs revised
//!   MaxMatch (measured after keyword-node retrieval, as in §5.3) plus
//!   the RTF count per query;
//! * **Figure 6(a)–(d)**: per-query CFR, APR′ and Max APR;
//! * the **§5.1 keyword frequency table** of the generated corpora.
//!
//! ```sh
//! cargo run --release -p xks-bench --bin repro                 # everything, default scale
//! cargo run --release -p xks-bench --bin repro -- --scale small
//! cargo run --release -p xks-bench --bin repro -- --only dblp  # one dataset
//! cargo run --release -p xks-bench --bin repro -- --freq       # frequency table only
//! ```

use std::time::Duration;

use validrtf::engine::{AlgorithmKind, SearchEngine};
use xks_bench::{dataset_name, dblp_engine, xmark_engine, Scale};
use xks_datagen::freq::{PAPER_DBLP_FREQS, PAPER_XMARK_FREQS};
use xks_datagen::queries::{dblp_workload, xmark_workload};
use xks_datagen::XmarkSize;
use xks_index::Query;

/// Repetitions per query; the paper runs 6 and discards the first.
const RUNS: usize = 6;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut only: Option<String> = None;
    let mut freq_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = Scale::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use small|default|large");
                    std::process::exit(2);
                });
            }
            "--only" => only = it.next().cloned(),
            "--freq" => freq_only = true,
            "--help" | "-h" => {
                eprintln!("usage: repro [--scale small|default|large] [--only dblp|standard|data1|data2] [--freq]");
                return;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);

    if want("dblp") {
        eprintln!("[repro] building dblp-alike at {scale:?}…");
        let engine = dblp_engine(scale);
        if freq_only {
            frequency_table_dblp(&engine);
        } else {
            frequency_table_dblp(&engine);
            run_dataset("dblp", &engine, &dblp_workload());
        }
    }
    for (name, size) in [
        ("standard", XmarkSize::Standard),
        ("data1", XmarkSize::Data1),
        ("data2", XmarkSize::Data2),
    ] {
        if !want(name) {
            continue;
        }
        eprintln!(
            "[repro] building {}-alike at {scale:?}…",
            dataset_name(size)
        );
        let engine = xmark_engine(scale, size);
        if freq_only {
            frequency_table_xmark(&engine, size);
        } else {
            frequency_table_xmark(&engine, size);
            run_dataset(dataset_name(size), &engine, &xmark_workload());
        }
    }
}

/// §5.1 keyword table: paper frequency vs planted (scaled) frequency.
fn frequency_table_dblp(engine: &SearchEngine) {
    println!(
        "\n## Keyword frequencies — dblp ({} nodes)",
        engine.tree().len()
    );
    println!("{:<16} {:>10} {:>10}", "keyword", "paper", "generated");
    for (kw, paper) in PAPER_DBLP_FREQS {
        println!(
            "{:<16} {:>10} {:>10}",
            kw,
            paper,
            engine.index().frequency(kw)
        );
    }
}

fn frequency_table_xmark(engine: &SearchEngine, size: XmarkSize) {
    println!(
        "\n## Keyword frequencies — {} ({} nodes)",
        dataset_name(size),
        engine.tree().len()
    );
    println!("{:<16} {:>10} {:>10}", "keyword", "paper", "generated");
    for (kw, freqs) in PAPER_XMARK_FREQS {
        println!(
            "{:<16} {:>10} {:>10}",
            kw,
            freqs[size.column()],
            engine.index().frequency(kw)
        );
    }
}

/// One Figure 5 + Figure 6 panel.
fn run_dataset(name: &str, engine: &SearchEngine, workload: &[(&str, String)]) {
    println!("\n## Figure 5/6 panel — {name}");
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>6} {:>7} {:>7}",
        "query", "RTFs", "MaxMatch", "ValidRTF", "CFR", "APR'", "MaxAPR"
    );
    for (abbrev, keywords) in workload {
        let query = Query::parse(keywords).expect("workload query parses");
        let (vt, xt) = timed(engine, &query);
        let cmp = engine.compare(&query).expect("comparison runs");
        println!(
            "{:<10} {:>6} {:>14} {:>14} {:>6.2} {:>7.3} {:>7.3}",
            abbrev,
            cmp.rtf_count,
            format!("{:.3?}", xt),
            format!("{:.3?}", vt),
            cmp.effectiveness.cfr,
            cmp.effectiveness.apr_prime,
            cmp.effectiveness.max_apr,
        );
    }
}

/// Average algorithm time (excluding keyword retrieval) over `RUNS`
/// runs, discarding the first — the paper's protocol.
fn timed(engine: &SearchEngine, query: &Query) -> (Duration, Duration) {
    let mut valid = Vec::with_capacity(RUNS);
    let mut mm = Vec::with_capacity(RUNS);
    let request = validrtf::SearchRequest::from_query(query.clone());
    for _ in 0..RUNS {
        valid.push(
            engine
                .execute(&request.clone().algorithm(AlgorithmKind::ValidRtf))
                .expect("workload query runs")
                .timings
                .algorithm_time(),
        );
        mm.push(
            engine
                .execute(&request.clone().algorithm(AlgorithmKind::MaxMatchRtf))
                .expect("workload query runs")
                .timings
                .algorithm_time(),
        );
    }
    (
        average_discarding_first(&valid),
        average_discarding_first(&mm),
    )
}

fn average_discarding_first(times: &[Duration]) -> Duration {
    let rest = &times[1..];
    rest.iter().sum::<Duration>() / rest.len() as u32
}
