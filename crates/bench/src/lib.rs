//! Shared corpus/bench scaffolding for the Figure 5/6 harness.
//!
//! The criterion benches and the `repro` binary both need the same
//! engines: a DBLP-alike corpus and the three-step XMark ladder, at a
//! scale chosen to finish on a laptop while preserving the paper's
//! relative selectivities (`DESIGN.md` §2).

#![deny(missing_docs)]
#![warn(clippy::all)]

use validrtf::engine::SearchEngine;
use xks_datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};

/// Benchmark scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: seconds to build, sub-second queries.
    Small,
    /// The default harness scale (what `EXPERIMENTS.md` reports).
    Default,
    /// Closer to the paper's corpus sizes (minutes to build).
    Large,
}

impl Scale {
    /// Parses `small` / `default` / `large`.
    #[must_use]
    pub fn parse(text: &str) -> Option<Scale> {
        match text {
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// DBLP record count at this scale.
    #[must_use]
    pub fn dblp_records(self) -> usize {
        match self {
            Scale::Small => 2_000,
            Scale::Default => 30_000,
            Scale::Large => 150_000,
        }
    }

    /// XMark base items per region at this scale.
    #[must_use]
    pub fn xmark_base_items(self) -> usize {
        match self {
            Scale::Small => 40,
            Scale::Default => 300,
            Scale::Large => 1_200,
        }
    }
}

/// Deterministic seed shared by the whole harness.
pub const HARNESS_SEED: u64 = 2009;

/// Builds the DBLP-alike engine.
#[must_use]
pub fn dblp_engine(scale: Scale) -> SearchEngine {
    let tree = generate_dblp(&DblpConfig::with_records(
        scale.dblp_records(),
        HARNESS_SEED,
    ));
    SearchEngine::new(tree)
}

/// Builds one XMark-alike engine of the ladder.
#[must_use]
pub fn xmark_engine(scale: Scale, size: XmarkSize) -> SearchEngine {
    let tree = generate_xmark(&XmarkConfig::sized(
        size,
        scale.xmark_base_items(),
        HARNESS_SEED,
    ));
    SearchEngine::new(tree)
}

/// Dataset labels as the paper names them.
#[must_use]
pub fn dataset_name(size: XmarkSize) -> &'static str {
    match size {
        XmarkSize::Standard => "xmark standard",
        XmarkSize::Data1 => "xmark data1",
        XmarkSize::Data2 => "xmark data2",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn small_engines_build() {
        let d = dblp_engine(Scale::Small);
        assert!(d.tree().len() > 10_000);
        let x = xmark_engine(Scale::Small, XmarkSize::Standard);
        assert!(x.tree().len() > 3_000);
    }
}
