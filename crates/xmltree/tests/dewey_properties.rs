//! Property tests tying Dewey-code arithmetic to actual tree structure.

use proptest::prelude::*;
use std::collections::HashMap;
use xks_xmltree::{Dewey, TreeBuilder, XmlTree};

/// Builds a random tree from parent-choice bytes and returns it.
fn tree_from_choices(choices: &[u8]) -> XmlTree {
    // children[i] lists the creation indices attached to node i.
    let n = choices.len() + 1;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in choices.iter().enumerate() {
        children[(c as usize) % (i + 1)].push(i + 1);
    }
    fn emit(b: &mut TreeBuilder, children: &[Vec<usize>], node: usize) {
        for &c in &children[node] {
            b.open("n");
            emit(b, children, c);
            b.close();
        }
    }
    let mut b = TreeBuilder::new("n");
    emit(&mut b, &children, 0);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Dewey order of the nodes equals the pre-order traversal
    /// order of the tree they identify.
    #[test]
    fn dewey_order_is_preorder(choices in prop::collection::vec(any::<u8>(), 0..50)) {
        let tree = tree_from_choices(&choices);
        let visited: Vec<Dewey> = tree.preorder().map(|id| tree.dewey(id).clone()).collect();
        let mut sorted = visited.clone();
        sorted.sort();
        prop_assert_eq!(visited, sorted);
    }

    /// `Dewey::lca` equals the structural LCA found by walking parent
    /// pointers.
    #[test]
    fn dewey_lca_matches_structural_lca(
        choices in prop::collection::vec(any::<u8>(), 1..50),
        pick_a in any::<u16>(),
        pick_b in any::<u16>(),
    ) {
        let tree = tree_from_choices(&choices);
        let ids: Vec<_> = tree.preorder().collect();
        let a = ids[pick_a as usize % ids.len()];
        let b = ids[pick_b as usize % ids.len()];

        // Structural LCA via ancestor sets.
        let mut anc: HashMap<_, ()> = HashMap::new();
        anc.insert(a, ());
        for x in tree.ancestors(a) {
            anc.insert(x, ());
        }
        let mut cur = b;
        let structural = loop {
            if anc.contains_key(&cur) {
                break cur;
            }
            cur = tree.node(cur).parent().expect("root is common");
        };

        let dewey_lca = tree.dewey(a).lca(tree.dewey(b));
        prop_assert_eq!(&dewey_lca, tree.dewey(structural));
    }

    /// Ancestor relations from codes agree with parent-pointer walks.
    #[test]
    fn dewey_ancestry_matches_structure(
        choices in prop::collection::vec(any::<u8>(), 1..50),
        pick_a in any::<u16>(),
        pick_b in any::<u16>(),
    ) {
        let tree = tree_from_choices(&choices);
        let ids: Vec<_> = tree.preorder().collect();
        let a = ids[pick_a as usize % ids.len()];
        let b = ids[pick_b as usize % ids.len()];
        let structurally = tree.ancestors(b).any(|x| x == a);
        prop_assert_eq!(
            tree.dewey(a).is_ancestor_of(tree.dewey(b)),
            structurally
        );
    }

    /// Round-trip through the dotted string form is lossless.
    #[test]
    fn dewey_string_round_trip(components in prop::collection::vec(0u32..1000, 1..10)) {
        let d = Dewey::from_components(components);
        let parsed: Dewey = d.to_string().parse().expect("own display parses");
        prop_assert_eq!(d, parsed);
    }

    /// `subtree_upper_bound` brackets exactly the subtree in sorted
    /// order.
    #[test]
    fn subtree_upper_bound_brackets(choices in prop::collection::vec(any::<u8>(), 1..50)) {
        let tree = tree_from_choices(&choices);
        for id in tree.preorder() {
            let d = tree.dewey(id);
            let Some(ub) = d.subtree_upper_bound() else { continue };
            for other in tree.preorder() {
                let o = tree.dewey(other);
                let inside = d.is_ancestor_or_self(o);
                let in_range = o >= d && *o < ub;
                prop_assert_eq!(inside, in_range, "{} vs [{}, {})", o, d, ub);
            }
        }
    }
}
