//! Property tests tying Dewey-code arithmetic to actual tree structure.

use proptest::prelude::*;
use std::collections::HashMap;
use xks_xmltree::{Dewey, TreeBuilder, XmlTree};

/// Builds a random tree from parent-choice bytes and returns it.
fn tree_from_choices(choices: &[u8]) -> XmlTree {
    // children[i] lists the creation indices attached to node i.
    let n = choices.len() + 1;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in choices.iter().enumerate() {
        children[(c as usize) % (i + 1)].push(i + 1);
    }
    fn emit(b: &mut TreeBuilder, children: &[Vec<usize>], node: usize) {
        for &c in &children[node] {
            b.open("n");
            emit(b, children, c);
            b.close();
        }
    }
    let mut b = TreeBuilder::new("n");
    emit(&mut b, &children, 0);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Dewey order of the nodes equals the pre-order traversal
    /// order of the tree they identify.
    #[test]
    fn dewey_order_is_preorder(choices in prop::collection::vec(any::<u8>(), 0..50)) {
        let tree = tree_from_choices(&choices);
        let visited: Vec<Dewey> = tree.preorder().map(|id| tree.dewey(id).clone()).collect();
        let mut sorted = visited.clone();
        sorted.sort();
        prop_assert_eq!(visited, sorted);
    }

    /// `Dewey::lca` equals the structural LCA found by walking parent
    /// pointers.
    #[test]
    fn dewey_lca_matches_structural_lca(
        choices in prop::collection::vec(any::<u8>(), 1..50),
        pick_a in any::<u16>(),
        pick_b in any::<u16>(),
    ) {
        let tree = tree_from_choices(&choices);
        let ids: Vec<_> = tree.preorder().collect();
        let a = ids[pick_a as usize % ids.len()];
        let b = ids[pick_b as usize % ids.len()];

        // Structural LCA via ancestor sets.
        let mut anc: HashMap<_, ()> = HashMap::new();
        anc.insert(a, ());
        for x in tree.ancestors(a) {
            anc.insert(x, ());
        }
        let mut cur = b;
        let structural = loop {
            if anc.contains_key(&cur) {
                break cur;
            }
            cur = tree.node(cur).parent().expect("root is common");
        };

        let dewey_lca = tree.dewey(a).lca(tree.dewey(b));
        prop_assert_eq!(&dewey_lca, tree.dewey(structural));
    }

    /// Ancestor relations from codes agree with parent-pointer walks.
    #[test]
    fn dewey_ancestry_matches_structure(
        choices in prop::collection::vec(any::<u8>(), 1..50),
        pick_a in any::<u16>(),
        pick_b in any::<u16>(),
    ) {
        let tree = tree_from_choices(&choices);
        let ids: Vec<_> = tree.preorder().collect();
        let a = ids[pick_a as usize % ids.len()];
        let b = ids[pick_b as usize % ids.len()];
        let structurally = tree.ancestors(b).any(|x| x == a);
        prop_assert_eq!(
            tree.dewey(a).is_ancestor_of(tree.dewey(b)),
            structurally
        );
    }

    /// Round-trip through the dotted string form is lossless.
    #[test]
    fn dewey_string_round_trip(components in prop::collection::vec(0u32..1000, 1..10)) {
        let d = Dewey::from_components(components);
        let parsed: Dewey = d.to_string().parse().expect("own display parses");
        prop_assert_eq!(d, parsed);
    }

    /// `subtree_upper_bound` brackets exactly the subtree in sorted
    /// order.
    #[test]
    fn subtree_upper_bound_brackets(choices in prop::collection::vec(any::<u8>(), 1..50)) {
        let tree = tree_from_choices(&choices);
        for id in tree.preorder() {
            let d = tree.dewey(id);
            let Some(ub) = d.subtree_upper_bound() else { continue };
            for other in tree.preorder() {
                let o = tree.dewey(other);
                let inside = d.is_ancestor_or_self(o);
                let in_range = o >= d && *o < ub;
                prop_assert_eq!(inside, in_range, "{} vs [{}, {})", o, d, ub);
            }
        }
    }
}

/// Builds a Dewey that holds `comps` but in the **spilled** (heap)
/// representation even when short: grow past the inline capacity, then
/// truncate back (truncation deliberately keeps the heap buffer).
fn spilled(comps: &[u32]) -> Dewey {
    let mut d = Dewey::from_components(
        comps
            .iter()
            .copied()
            .chain(std::iter::repeat_n(0, Dewey::INLINE_CAP + 1))
            .collect(),
    );
    d.truncate(comps.len());
    assert!(!d.is_inline(), "construction must spill");
    d
}

fn hash_of(d: &Dewey) -> u64 {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut h = DefaultHasher::new();
    d.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// An inline code and a spilled code with the same components are
    /// indistinguishable: equal, hash-equal, and `Ord`-equal against
    /// arbitrary other codes of either representation.
    #[test]
    fn representation_never_leaks_into_eq_ord_hash(
        a in prop::collection::vec(0u32..50, 0..12),
        b in prop::collection::vec(0u32..50, 0..12),
    ) {
        let ai = Dewey::from_slice(&a);
        let asp = spilled(&a);
        let bi = Dewey::from_slice(&b);
        let bsp = spilled(&b);
        prop_assert_eq!(&ai, &asp);
        prop_assert_eq!(hash_of(&ai), hash_of(&asp));
        prop_assert_eq!(ai.cmp(&bi), asp.cmp(&bsp));
        prop_assert_eq!(ai.cmp(&bsp), asp.cmp(&bi));
        // Ordering equals the lexicographic order of the components.
        prop_assert_eq!(ai.cmp(&bi), a.cmp(&b));
    }

    /// Parent/child and push/pop round-trip identically in both
    /// representations, including across the inline/spill boundary.
    #[test]
    fn parent_child_round_trips_across_representations(
        comps in prop::collection::vec(0u32..50, 1..12),
        ordinal in 0u32..50,
    ) {
        for d in [Dewey::from_slice(&comps), spilled(&comps)] {
            let child = d.child(ordinal);
            prop_assert_eq!(child.parent().as_ref(), Some(&d));
            prop_assert_eq!(child.ordinal(), Some(ordinal));
            prop_assert!(d.is_ancestor_of(&child));

            // In-place push/pop is equivalent to child()/parent().
            let mut cursor = d.clone();
            cursor.push_component(ordinal);
            prop_assert_eq!(&cursor, &child);
            prop_assert_eq!(cursor.pop_component(), Some(ordinal));
            prop_assert_eq!(&cursor, &d);

            // truncate() is equivalent to slicing the components.
            let cut = comps.len() / 2;
            let mut t = d.clone();
            t.truncate(cut);
            prop_assert_eq!(t, Dewey::from_slice(&comps[..cut]));
        }
    }

    /// Derived traversals (ancestors, LCA, upper bound) agree between
    /// the representations.
    #[test]
    fn traversals_agree_across_representations(
        a in prop::collection::vec(0u32..50, 1..12),
        b in prop::collection::vec(0u32..50, 1..12),
    ) {
        let (ai, asp) = (Dewey::from_slice(&a), spilled(&a));
        let (bi, bsp) = (Dewey::from_slice(&b), spilled(&b));
        let anc_i: Vec<Dewey> = ai.ancestors().collect();
        let anc_s: Vec<Dewey> = asp.ancestors().collect();
        prop_assert_eq!(anc_i, anc_s);
        prop_assert_eq!(ai.lca(&bi), asp.lca(&bsp));
        prop_assert_eq!(ai.subtree_upper_bound(), asp.subtree_upper_bound());
        prop_assert_eq!(ai.is_ancestor_or_self(&bi), asp.is_ancestor_or_self(&bsp));
        prop_assert_eq!(ai.level(), asp.level());
    }
}
