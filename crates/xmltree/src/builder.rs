//! Programmatic tree construction.
//!
//! [`TreeBuilder`] offers a push/pop interface for building [`XmlTree`]s
//! in code — used by the paper fixtures, the data generators, and the
//! random-tree generators in tests.

use crate::tree::{Attribute, NodeId, XmlTree};

/// Stack-based builder for [`XmlTree`].
///
/// ```
/// use xks_xmltree::builder::TreeBuilder;
///
/// let mut b = TreeBuilder::new("team");
/// b.open("player");
/// b.leaf("name", "Gassol");
/// b.leaf("position", "forward");
/// b.close();
/// let tree = b.build();
/// assert_eq!(tree.len(), 4);
/// ```
#[derive(Debug)]
pub struct TreeBuilder {
    tree: XmlTree,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Starts a document whose root element has `root_label`.
    #[must_use]
    pub fn new(root_label: &str) -> Self {
        let mut tree = XmlTree::new();
        let label = tree.intern_label(root_label);
        let root = tree.push_node(label, None, None, Vec::new());
        TreeBuilder {
            tree,
            stack: vec![root],
        }
    }

    /// The node currently open (innermost).
    #[must_use]
    pub fn current(&self) -> NodeId {
        *self.stack.last().expect("builder stack never empty")
    }

    /// Opens a child element and makes it current.
    pub fn open(&mut self, label: &str) -> NodeId {
        let parent = self.current();
        let label = self.tree.intern_label(label);
        let id = self.tree.push_node(label, Some(parent), None, Vec::new());
        self.stack.push(id);
        id
    }

    /// Opens a child element carrying attributes.
    pub fn open_with_attrs(&mut self, label: &str, attrs: &[(&str, &str)]) -> NodeId {
        let parent = self.current();
        let label = self.tree.intern_label(label);
        let attributes = attrs
            .iter()
            .map(|(n, v)| Attribute {
                name: (*n).to_owned(),
                value: (*v).to_owned(),
            })
            .collect();
        let id = self.tree.push_node(label, Some(parent), None, attributes);
        self.stack.push(id);
        id
    }

    /// Sets (or appends to) the text of the current element.
    pub fn text(&mut self, text: &str) {
        let id = self.current();
        let node = &mut self.tree_mut_node(id).text;
        match node {
            Some(existing) => {
                existing.push(' ');
                existing.push_str(text);
            }
            None => *node = Some(text.to_owned()),
        }
    }

    /// Convenience: `open(label)`, `text(value)`, `close()`.
    pub fn leaf(&mut self, label: &str, value: &str) -> NodeId {
        let id = self.open(label);
        self.text(value);
        self.close();
        id
    }

    /// Convenience: empty child element with no text.
    pub fn empty(&mut self, label: &str) -> NodeId {
        let id = self.open(label);
        self.close();
        id
    }

    /// Closes the current element. Panics if only the root is open.
    pub fn close(&mut self) {
        assert!(self.stack.len() > 1, "cannot close the root element");
        self.stack.pop();
    }

    /// Finishes the document. Panics if elements besides the root are
    /// still open (catches builder misuse early).
    #[must_use]
    pub fn build(self) -> XmlTree {
        assert_eq!(
            self.stack.len(),
            1,
            "unclosed elements at build(): depth {}",
            self.stack.len()
        );
        self.tree
    }

    fn tree_mut_node(&mut self, id: NodeId) -> &mut crate::tree::Node {
        // Internal accessor: NodeIds handed out by this builder are
        // always valid for `self.tree`.
        self.tree.node_mut(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = TreeBuilder::new("a");
        b.open("b");
        b.open("c");
        b.text("hello");
        b.close();
        b.close();
        b.empty("d");
        let t = b.build();
        let fp = t.fingerprint();
        assert_eq!(fp.len(), 4);
        assert_eq!(fp[2].1, "c");
        assert_eq!(fp[2].2.as_deref(), Some("hello"));
        assert_eq!(fp[3].0, "0.1");
    }

    #[test]
    fn text_appends() {
        let mut b = TreeBuilder::new("a");
        b.text("one");
        b.text("two");
        let t = b.build();
        assert_eq!(t.node(t.root()).text.as_deref(), Some("one two"));
    }

    #[test]
    fn attributes_recorded() {
        let mut b = TreeBuilder::new("a");
        b.open_with_attrs("item", &[("id", "x7"), ("kind", "auction")]);
        b.close();
        let t = b.build();
        let item = t.node_by_dewey(&"0.0".parse().unwrap()).unwrap();
        let attrs = &t.node(item).attributes;
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].name, "id");
        assert_eq!(attrs[1].value, "auction");
    }

    #[test]
    #[should_panic(expected = "unclosed elements")]
    fn build_rejects_unclosed() {
        let mut b = TreeBuilder::new("a");
        b.open("b");
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "cannot close the root")]
    fn close_rejects_root() {
        let mut b = TreeBuilder::new("a");
        b.close();
    }
}
