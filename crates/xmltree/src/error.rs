//! Error types for XML parsing.

use std::fmt;

/// A parse failure with byte offset and line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
    /// 1-based line of the problem.
    pub line: usize,
    /// 1-based column of the problem.
    pub column: usize,
}

/// Kinds of XML parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof(&'static str),
    /// A character that is not legal at this position.
    UnexpectedChar {
        /// What the parser was looking for.
        expected: &'static str,
        /// The character found instead.
        found: char,
    },
    /// `</b>` closing a different element than the open `<a>`.
    MismatchedCloseTag {
        /// Name of the element that was open.
        open: String,
        /// Name in the close tag.
        close: String,
    },
    /// A close tag with no matching open tag.
    UnbalancedCloseTag(String),
    /// More than one top-level element, or text outside the root.
    TrailingContent,
    /// The document contains no root element.
    NoRootElement,
    /// `&name;` with an unknown entity name.
    UnknownEntity(String),
    /// `&#...;` that is not a valid character reference.
    BadCharReference(String),
    /// An attribute appears twice on one element.
    DuplicateAttribute(String),
    /// An element or attribute name is empty or malformed.
    BadName(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}:{}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof(what) => write!(f, "unexpected end of input in {what}"),
            ParseErrorKind::UnexpectedChar { expected, found } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            ParseErrorKind::MismatchedCloseTag { open, close } => {
                write!(f, "mismatched close tag </{close}> for <{open}>")
            }
            ParseErrorKind::UnbalancedCloseTag(name) => {
                write!(f, "close tag </{name}> without matching open tag")
            }
            ParseErrorKind::TrailingContent => write!(f, "content after the root element"),
            ParseErrorKind::NoRootElement => write!(f, "document has no root element"),
            ParseErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            ParseErrorKind::BadCharReference(text) => {
                write!(f, "bad character reference &#{text};")
            }
            ParseErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute {name:?}")
            }
            ParseErrorKind::BadName(name) => write!(f, "malformed name {name:?}"),
        }
    }
}

impl std::error::Error for ParseError {}
