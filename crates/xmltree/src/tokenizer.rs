//! Word tokenization.
//!
//! The paper defines the content `Cv` of a node as "the word set implied
//! in v's label, text and attributes" and matches query keywords against
//! those words case-insensitively (e.g. keyword `vldb` matches text
//! "VLDB"). This module extracts lowercase word tokens from text the same
//! way: maximal alphanumeric runs, lowercased, with optional stop-word
//! filtering (the paper pipes text through Lucene's stop-word filter,
//! §5.2).

use crate::stopwords::is_stop_word;

/// Splits `text` into lowercase word tokens (maximal runs of
/// alphanumeric characters). No stop-word filtering.
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
}

/// Like [`tokenize`] but drops English stop words, matching the paper's
/// Lucene/stop-word preprocessing.
pub fn tokenize_filtered(text: &str) -> impl Iterator<Item = String> + '_ {
    tokenize(text).filter(|w| !is_stop_word(w))
}

/// Normalizes a single query keyword the same way document words are
/// normalized, so index lookups compare like with like.
#[must_use]
pub fn normalize_keyword(word: &str) -> String {
    word.trim().to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric() {
        let words: Vec<String> = tokenize("Efficient Skyline-Querying, 2008!").collect();
        assert_eq!(words, ["efficient", "skyline", "querying", "2008"]);
    }

    #[test]
    fn lowercases() {
        let words: Vec<String> = tokenize("VLDB XML").collect();
        assert_eq!(words, ["vldb", "xml"]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(tokenize("").count(), 0);
        assert_eq!(tokenize("  ,,  ").count(), 0);
    }

    #[test]
    fn filtered_drops_stop_words() {
        let words: Vec<String> =
            tokenize_filtered("the dynamic skyline query with a twist").collect();
        assert_eq!(words, ["dynamic", "skyline", "query", "twist"]);
    }

    #[test]
    fn normalize_keyword_trims_and_lowercases() {
        assert_eq!(normalize_keyword("  VLDB "), "vldb");
    }

    #[test]
    fn unicode_words_survive() {
        let words: Vec<String> = tokenize("Rémi Gilleron").collect();
        assert_eq!(words, ["rémi", "gilleron"]);
    }
}
