//! A flat arena of Dewey codes — many codes, two allocations.
//!
//! Posting lists decoded from storage used to materialize as
//! `Vec<Dewey>` with one heap allocation per deep code. A
//! [`DeweyListBuf`] instead packs every component of every code into a
//! single `Vec<u32>` with an offsets array delimiting entries (the
//! EMBANKS-style "in-memory representation decides disk-search
//! throughput" lesson). Decoders build entries incrementally —
//! [`DeweyListBuf::begin`], [`DeweyListBuf::copy_prefix_of_last`],
//! [`DeweyListBuf::push_component`] — which maps 1:1 onto the `.xks`
//! prefix-delta postings encoding: the shared prefix is copied from the
//! previous entry *within the same arena*, so a whole posting run
//! decodes with zero per-code allocations.
//!
//! Individual codes materialize on demand via [`DeweyListBuf::dewey`],
//! which is allocation-free for codes that fit [`Dewey::INLINE_CAP`].

use crate::dewey::Dewey;

/// A packed list of Dewey codes: one components vector plus entry
/// offsets. Entry `i` spans `comps[starts[i]..starts[i + 1]]` (the last
/// entry runs to the end of `comps`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeweyListBuf {
    comps: Vec<u32>,
    starts: Vec<u32>,
}

impl DeweyListBuf {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with room for `codes` entries of `avg_len`
    /// components each.
    #[must_use]
    pub fn with_capacity(codes: usize, avg_len: usize) -> Self {
        DeweyListBuf {
            comps: Vec::with_capacity(codes * avg_len),
            starts: Vec::with_capacity(codes),
        }
    }

    /// Removes every entry, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.comps.clear();
        self.starts.clear();
    }

    /// Number of codes in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when the arena holds no codes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Total number of components across all codes.
    #[must_use]
    pub fn total_components(&self) -> usize {
        self.comps.len()
    }

    /// The component slice of entry `i`, `None` out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&[u32]> {
        let start = *self.starts.get(i)? as usize;
        let end = self
            .starts
            .get(i + 1)
            .map_or(self.comps.len(), |&e| e as usize);
        Some(&self.comps[start..end])
    }

    /// The component slice of the last entry (the in-progress one while
    /// building), `None` when empty.
    #[must_use]
    pub fn last(&self) -> Option<&[u32]> {
        self.get(self.starts.len().checked_sub(1)?)
    }

    /// Materializes entry `i` as a [`Dewey`] — allocation-free for
    /// codes within [`Dewey::INLINE_CAP`].
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn dewey(&self, i: usize) -> Dewey {
        Dewey::from_slice(self.get(i).expect("index in bounds"))
    }

    /// Iterates the component slices in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(|i| self.get(i).expect("in bounds"))
    }

    /// Materializes the whole arena as a `Vec<Dewey>` (one vector
    /// allocation; the codes themselves are inline where short).
    #[must_use]
    pub fn to_deweys(&self) -> Vec<Dewey> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter().map(Dewey::from_slice));
        out
    }

    /// Appends a complete code.
    pub fn push(&mut self, components: &[u32]) {
        self.begin();
        self.comps.extend_from_slice(components);
    }

    /// Opens a new (initially empty) entry at the end of the arena.
    pub fn begin(&mut self) {
        debug_assert!(self.comps.len() <= u32::MAX as usize);
        self.starts.push(self.comps.len() as u32);
    }

    /// Appends one component to the entry opened by
    /// [`DeweyListBuf::begin`].
    pub fn push_component(&mut self, component: u32) {
        debug_assert!(!self.starts.is_empty(), "begin() before push_component()");
        self.comps.push(component);
    }

    /// Copies the first `shared` components of the *previous* entry into
    /// the current (just-begun, still empty) entry — the prefix-delta
    /// decode step. Returns `false` (arena unchanged) when there is no
    /// previous entry or it is shorter than `shared`.
    pub fn copy_prefix_of_last(&mut self, shared: usize) -> bool {
        let Some(n) = self.starts.len().checked_sub(2) else {
            return shared == 0 && !self.starts.is_empty();
        };
        let prev_start = self.starts[n] as usize;
        let prev_end = self.starts[n + 1] as usize;
        debug_assert_eq!(
            prev_end,
            self.comps.len(),
            "copy_prefix_of_last on a non-empty current entry"
        );
        if shared > prev_end - prev_start {
            return false;
        }
        self.comps
            .extend_from_within(prev_start..prev_start + shared);
        true
    }
}

impl<'a> IntoIterator for &'a DeweyListBuf {
    type Item = &'a [u32];
    type IntoIter = Box<dyn Iterator<Item = &'a [u32]> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<Dewey> for DeweyListBuf {
    fn from_iter<I: IntoIterator<Item = Dewey>>(iter: I) -> Self {
        let mut buf = DeweyListBuf::new();
        for d in iter {
            buf.push(d.components());
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn push_and_get_round_trip() {
        let mut buf = DeweyListBuf::new();
        assert!(buf.is_empty());
        buf.push(&[0]);
        buf.push(&[0, 2, 1]);
        buf.push(&[]);
        buf.push(&[0, 3]);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.get(0), Some(&[0u32][..]));
        assert_eq!(buf.get(1), Some(&[0u32, 2, 1][..]));
        assert_eq!(buf.get(2), Some(&[][..]));
        assert_eq!(buf.get(3), Some(&[0u32, 3][..]));
        assert_eq!(buf.get(4), None);
        assert_eq!(buf.dewey(1), d("0.2.1"));
        assert_eq!(buf.total_components(), 6);
    }

    #[test]
    fn incremental_build_matches_prefix_delta() {
        // Decode [0.2.0, 0.2.1.5] the way the codec does.
        let mut buf = DeweyListBuf::new();
        buf.begin();
        for c in [0, 2, 0] {
            buf.push_component(c);
        }
        buf.begin();
        assert!(buf.copy_prefix_of_last(2));
        buf.push_component(1);
        buf.push_component(5);
        assert_eq!(buf.to_deweys(), vec![d("0.2.0"), d("0.2.1.5")]);
    }

    #[test]
    fn copy_prefix_bounds() {
        let mut buf = DeweyListBuf::new();
        buf.begin();
        assert!(buf.copy_prefix_of_last(0), "empty shared on first entry");
        assert!(!buf.copy_prefix_of_last(1), "no previous entry");
        buf.push_component(7);
        buf.begin();
        assert!(!buf.copy_prefix_of_last(2), "previous entry too short");
        assert!(buf.copy_prefix_of_last(1));
        assert_eq!(buf.last(), Some(&[7u32][..]));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = DeweyListBuf::with_capacity(4, 3);
        buf.push(&[0, 1, 2]);
        let cap = (buf.comps.capacity(), buf.starts.capacity());
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!((buf.comps.capacity(), buf.starts.capacity()), cap);
    }

    #[test]
    fn from_iterator_and_iter() {
        let codes = vec![d("0"), d("0.1.2"), d("0.9")];
        let buf: DeweyListBuf = codes.iter().cloned().collect();
        assert_eq!(buf.to_deweys(), codes);
        let lens: Vec<usize> = buf.iter().map(<[u32]>::len).collect();
        assert_eq!(lens, [1, 3, 2]);
    }
}
