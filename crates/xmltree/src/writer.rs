//! XML serialization (the inverse of the parser).
//!
//! Used by the data generators to materialize corpora to disk and by
//! round-trip tests that pin parser correctness.

use std::fmt::Write as _;

use crate::tree::{NodeId, XmlTree};

/// Serializes the whole tree to an XML string (no declaration, children
/// indented two spaces per level).
#[must_use]
pub fn to_xml(tree: &XmlTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), 0, true, &mut out);
    out
}

/// Serializes the whole tree compactly (no indentation or newlines) —
/// the form round-trip tests use, since indentation introduces
/// whitespace-only text that normalization drops.
#[must_use]
pub fn to_xml_compact(tree: &XmlTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), 0, false, &mut out);
    out
}

/// Serializes the subtree rooted at `id` compactly — the form the
/// mutable-corpus path logs into its WAL, where each inserted document
/// is one subtree of a generated or parsed corpus tree.
#[must_use]
pub fn to_xml_subtree(tree: &XmlTree, id: NodeId) -> String {
    let mut out = String::new();
    write_node(tree, id, 0, false, &mut out);
    out
}

fn write_node(tree: &XmlTree, id: NodeId, depth: usize, pretty: bool, out: &mut String) {
    let node = tree.node(id);
    let label = tree.label_name(id);
    if pretty {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push('<');
    out.push_str(label);
    for attr in &node.attributes {
        let _ = write!(out, " {}=\"{}\"", attr.name, escape_attr(&attr.value));
    }
    if node.text.is_none() && node.children().is_empty() {
        out.push_str("/>");
        if pretty {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    if let Some(text) = &node.text {
        out.push_str(&escape_text(text));
    }
    if !node.children().is_empty() {
        if pretty {
            out.push('\n');
        }
        for &child in node.children() {
            write_node(tree, child, depth + 1, pretty, out);
        }
        if pretty {
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
    if pretty {
        out.push('\n');
    }
}

/// Escapes `<`, `&`, and `>` in character data.
#[must_use]
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `<`, `&`, and `"` in attribute values (values are serialized
/// double-quoted).
#[must_use]
pub fn escape_attr(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip() {
        let mut b = TreeBuilder::new("pub");
        b.open_with_attrs("article", &[("year", "2008")]);
        b.leaf("title", "XML <keyword> & search");
        b.close();
        b.empty("misc");
        let t = b.build();
        let xml = to_xml_compact(&t);
        let t2 = parse(&xml).unwrap();
        assert_eq!(t.fingerprint(), t2.fingerprint());
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut b = TreeBuilder::new("a");
        b.open("b");
        b.empty("c");
        b.close();
        let t = b.build();
        let xml = to_xml(&t);
        assert!(xml.contains("\n  <b>"));
        assert!(xml.contains("\n    <c/>"));
    }

    #[test]
    fn pretty_round_trip_preserves_structure() {
        let mut b = TreeBuilder::new("root");
        b.open("x");
        b.leaf("y", "value text");
        b.close();
        let t = b.build();
        let t2 = parse(&to_xml(&t)).unwrap();
        assert_eq!(t.fingerprint(), t2.fingerprint());
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(
            escape_attr(r#"say "hi" & <go>"#),
            "say &quot;hi&quot; &amp; &lt;go>"
        );
    }
}
