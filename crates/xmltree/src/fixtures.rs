//! The paper's running-example documents, reconstructed.
//!
//! Figure 1(a) — the *Publications* instance — and Figure 1(b):(1) — the
//! *team* segment borrowed from the MaxMatch paper — are never given as
//! raw XML, but Examples 1–7 pin them down almost completely: node
//! Dewey codes and labels, the keyword-node sets `D_i` of Example 6, the
//! key numbers 15/8/7 of Example 7 and §4.1, and the fragments of
//! Figures 2–3. This module rebuilds both documents so that **every one
//! of those published facts holds** on our trees; the corresponding
//! assertions live in the tests below and in `tests/paper_examples.rs`
//! at the workspace root.
//!
//! One deliberate deviation: the paper's worked cID values (e.g.
//! `(Chen, XML)` for node `0.2.0`) exclude element labels from the
//! content sets, while Definition 3 + the Figure 1(b) walk-through
//! include them (`TC_{0.1.0} = {position, forward}` counts the label
//! `position`). We follow the definition, so our cID for `0.2.0` is
//! `(abstract, xml)` — the *pruning decisions* are identical either way
//! because cIDs only ever compare between same-label siblings.

use crate::builder::TreeBuilder;
use crate::tree::XmlTree;

/// The paper's five sample keyword queries (Figure 1(b):(2)),
/// reconstructed from the worked examples. Index 0 is `Q1`.
pub const PAPER_QUERIES: [&str; 5] = [
    // Q1: Example 2's false-positive demonstration on Figure 1(a).
    "wong fu dynamic skyline query",
    // Q2: Example 1's SLCA-vs-LCA demonstration; also Example 3's query.
    "liu keyword",
    // Q3: the running example of Section 4 (result = Figure 2(d)).
    "vldb title xml keyword search",
    // Q4: Example 2's redundancy demonstration on Figure 1(b):(1).
    "grizzlies position",
    // Q5: Example 2's positive example on Figure 1(b):(1).
    "grizzlies gassol position",
];

/// Builds the Figure 1(a) *Publications* document.
///
/// ```text
/// 0        Publications
/// 0.0        title        "VLDB"
/// 0.1        year         "2008"
/// 0.2        Articles
/// 0.2.0        article                       (the XML-keyword-search paper)
/// 0.2.0.0        authors
/// 0.2.0.0.0        author
/// 0.2.0.0.0.0        name   "Liu"
/// 0.2.0.1        title    "Relevant keyword match search in XML"
/// 0.2.0.2        abstract "... keyword search ... XML data ..."
/// 0.2.0.3        references
/// 0.2.0.3.0        ref    "Liu and Chen: ... XML keyword search"
/// 0.2.1        article                       (the skyline paper)
/// 0.2.1.0        authors
/// 0.2.1.0.0        author
/// 0.2.1.0.0.0        name   "Wong"
/// 0.2.1.0.1        author
/// 0.2.1.0.1.0        name   "Fu"
/// 0.2.1.1        title    "Efficient Skyline Query with Variable User
///                          Preferences on Nominal Attributes"
/// 0.2.1.2        abstract "... dynamic skyline query ..."
/// ```
#[must_use]
pub fn publications() -> XmlTree {
    let mut b = TreeBuilder::new("Publications");
    b.leaf("title", "VLDB");
    b.leaf("year", "2008");
    b.open("Articles");
    {
        // 0.2.0 — the XML keyword search paper by Liu.
        b.open("article");
        b.open("authors");
        b.open("author");
        b.leaf("name", "Liu");
        b.close(); // author
        b.close(); // authors
        b.leaf("title", "Relevant keyword match search in XML");
        b.leaf(
            "abstract",
            "An effective approach to keyword search in XML data with ranked fragments",
        );
        b.open("references");
        b.leaf(
            "ref",
            "Liu and Chen: Reasoning and identifying relevant matches for XML keyword search",
        );
        b.close(); // references
        b.close(); // article

        // 0.2.1 — the skyline paper by Wong & Fu.
        b.open("article");
        b.open("authors");
        b.open("author");
        b.leaf("name", "Wong");
        b.close();
        b.open("author");
        b.leaf("name", "Fu");
        b.close();
        b.close(); // authors
        b.leaf(
            "title",
            "Efficient Skyline Query with Variable User Preferences on Nominal Attributes",
        );
        b.leaf(
            "abstract",
            "We propose dynamic skyline query processing under variable preferences",
        );
        b.close(); // article
    }
    b.close(); // Articles
    b.build()
}

/// Builds the Figure 1(b):(1) *team* segment (from the MaxMatch paper).
///
/// ```text
/// 0        team
/// 0.0        name      "Grizzlies"
/// 0.1        players
/// 0.1.0        player
/// 0.1.0.0        name      "Gassol"
/// 0.1.0.1        position  "forward"
/// 0.1.1        player
/// 0.1.1.0        name      "Miller"
/// 0.1.1.1        position  "guard"
/// 0.1.2        player
/// 0.1.2.0        name      "Warrick"
/// 0.1.2.1        position  "forward"
/// ```
///
/// The two `forward` positions are the redundancy Example 2 / Figure 3(d)
/// hinge on; `Gassol` (the paper's spelling) drives the positive example.
#[must_use]
pub fn team() -> XmlTree {
    let mut b = TreeBuilder::new("team");
    b.leaf("name", "Grizzlies");
    b.open("players");
    for (name, position) in [
        ("Gassol", "forward"),
        ("Miller", "guard"),
        ("Warrick", "forward"),
    ] {
        b.open("player");
        b.leaf("name", name);
        b.leaf("position", position);
        b.close();
    }
    b.close();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{is_keyword_node, node_content};
    use crate::dewey::Dewey;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn keyword_nodes(tree: &XmlTree, keyword: &str) -> Vec<String> {
        let kws = vec![keyword.to_owned()];
        tree.preorder()
            .filter(|&id| is_keyword_node(tree, id, &kws))
            .map(|id| tree.dewey(id).to_string())
            .collect()
    }

    #[test]
    fn publications_layout_matches_paper_deweys() {
        let t = publications();
        for (dewey, label) in [
            ("0", "Publications"),
            ("0.2", "Articles"),
            ("0.2.0", "article"),
            ("0.2.0.0.0.0", "name"),
            ("0.2.0.1", "title"),
            ("0.2.0.2", "abstract"),
            ("0.2.0.3", "references"),
            ("0.2.0.3.0", "ref"),
            ("0.2.1", "article"),
            ("0.2.1.0", "authors"),
            ("0.2.1.0.0.0", "name"),
            ("0.2.1.0.1.0", "name"),
            ("0.2.1.1", "title"),
            ("0.2.1.2", "abstract"),
        ] {
            let id = t
                .node_by_dewey(&d(dewey))
                .unwrap_or_else(|| panic!("missing node {dewey}"));
            assert_eq!(t.label_name(id), label, "label of {dewey}");
        }
    }

    #[test]
    fn example6_keyword_node_sets_for_q3() {
        // Example 6: Q3 = "VLDB title XML keyword search" on Figure 1(a).
        let t = publications();
        assert_eq!(keyword_nodes(&t, "vldb"), ["0.0"], "D1 (vldb)");
        assert_eq!(
            keyword_nodes(&t, "title"),
            ["0.0", "0.2.0.1", "0.2.1.1"],
            "D2 (title)"
        );
        for kw in ["xml", "keyword", "search"] {
            assert_eq!(
                keyword_nodes(&t, kw),
                ["0.2.0.1", "0.2.0.2", "0.2.0.3.0"],
                "D for {kw}"
            );
        }
    }

    #[test]
    fn example3_keyword_node_sets_for_q2() {
        // Example 3: Q = "Liu keyword": D1 = {name 0.2.0.0.0.0, ref
        // 0.2.0.3.0}; D2 = {title 0.2.0.1, ref 0.2.0.3.0, abstract 0.2.0.2}.
        let t = publications();
        assert_eq!(keyword_nodes(&t, "liu"), ["0.2.0.0.0.0", "0.2.0.3.0"]);
        assert_eq!(
            keyword_nodes(&t, "keyword"),
            ["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]
        );
    }

    #[test]
    fn q1_keyword_nodes_match_example2() {
        // Q1 = "Wong Fu dynamic skyline query": exactly the four keyword
        // nodes of Figure 3(b), all inside article 0.2.1.
        let t = publications();
        assert_eq!(keyword_nodes(&t, "wong"), ["0.2.1.0.0.0"]);
        assert_eq!(keyword_nodes(&t, "fu"), ["0.2.1.0.1.0"]);
        assert_eq!(keyword_nodes(&t, "dynamic"), ["0.2.1.2"]);
        assert_eq!(keyword_nodes(&t, "skyline"), ["0.2.1.1", "0.2.1.2"]);
        assert_eq!(keyword_nodes(&t, "query"), ["0.2.1.1", "0.2.1.2"]);
    }

    #[test]
    fn title_content_set_matches_section_4_1() {
        // §4.1: the sorted tree content set of node 0.2.0.1 "could be
        // {keyword, match, relevant, search, XML}" with cID (keyword, XML).
        // Ours adds the label word "title", which does not disturb the
        // (min,max) pair.
        let t = publications();
        let id = t.node_by_dewey(&d("0.2.0.1")).unwrap();
        let c = node_content(&t, id);
        for w in ["keyword", "match", "relevant", "search", "xml", "title"] {
            assert!(c.contains(w), "missing {w}");
        }
        assert_eq!(c.iter().next().unwrap(), "keyword");
        assert_eq!(c.iter().next_back().unwrap(), "xml");
    }

    #[test]
    fn team_layout_matches_paper() {
        let t = team();
        for (dewey, label) in [
            ("0", "team"),
            ("0.0", "name"),
            ("0.1", "players"),
            ("0.1.0", "player"),
            ("0.1.1", "player"),
            ("0.1.2", "player"),
        ] {
            let id = t.node_by_dewey(&d(dewey)).unwrap();
            assert_eq!(t.label_name(id), label);
        }
        // The duplicated "forward" value Figure 3(d) hinges on.
        let p0 = t.node_by_dewey(&d("0.1.0.1")).unwrap();
        let p2 = t.node_by_dewey(&d("0.1.2.1")).unwrap();
        assert_eq!(t.node(p0).text.as_deref(), Some("forward"));
        assert_eq!(t.node(p2).text.as_deref(), Some("forward"));
        let p1 = t.node_by_dewey(&d("0.1.1.1")).unwrap();
        assert_eq!(t.node(p1).text.as_deref(), Some("guard"));
    }

    #[test]
    fn team_keyword_nodes_for_q4_q5() {
        let t = team();
        assert_eq!(keyword_nodes(&t, "grizzlies"), ["0.0"]);
        assert_eq!(keyword_nodes(&t, "gassol"), ["0.1.0.0"]);
        assert_eq!(
            keyword_nodes(&t, "position"),
            ["0.1.0.1", "0.1.1.1", "0.1.2.1"]
        );
    }

    #[test]
    fn q3_has_no_stray_matches_outside_expected_sets() {
        // Guard against fixture drift: no node outside D1..D5 contains a
        // Q3 keyword (this is what makes the root the only LCA).
        let t = publications();
        let all: Vec<String> = ["vldb", "title", "xml", "keyword", "search"]
            .iter()
            .flat_map(|k| keyword_nodes(&t, k))
            .collect();
        for dcode in &all {
            assert!(
                ["0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.2.1.1"].contains(&dcode.as_str()),
                "unexpected keyword node {dcode}"
            );
        }
    }
}
