//! XML substrate for the `xks` workspace.
//!
//! This crate provides everything the XML-keyword-search algorithms need
//! from the document side, built from scratch (the paper used Xerces +
//! Lucene; see `DESIGN.md` §2 for the substitution notes):
//!
//! * [`dewey`] — Dewey codes (`0.2.0.1`) with pre-order ordering,
//!   ancestor tests, and longest-common-prefix LCA — small codes are
//!   stored inline (no heap) for the zero-allocation query hot path;
//! * [`deweybuf`] — [`DeweyListBuf`], a flat arena packing a whole
//!   posting list of Dewey codes into one components vector;
//! * [`tree`] / [`builder`] — the arena XML tree model `T = (r, V, E, Σ, λ)`
//!   and a programmatic builder;
//! * [`parser`] / [`writer`] — a dependency-free XML 1.0 subset parser
//!   and serializer;
//! * [`tokenizer`] / [`stopwords`] / [`stem`] / [`content`] — word
//!   extraction, the embedded stop-word list, an opt-in light stemmer
//!   (the paper's Lucene analysis matched "Querying" to "query"), node
//!   content sets `Cv`, and the `cID = (min, max)` content feature of
//!   §4.1;
//! * [`fixtures`] — the paper's Figure 1(a)/(b) running examples.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod builder;
pub mod content;
pub mod dewey;
pub mod deweybuf;
pub mod error;
pub mod fixtures;
pub mod label;
pub mod parser;
pub mod stem;
pub mod stopwords;
pub mod tokenizer;
pub mod tree;
pub mod writer;

pub use builder::TreeBuilder;
pub use dewey::Dewey;
pub use deweybuf::DeweyListBuf;
pub use error::{ParseError, ParseErrorKind};
pub use label::{LabelId, LabelTable};
pub use parser::parse;
pub use tree::{Attribute, Node, NodeId, XmlTree};
