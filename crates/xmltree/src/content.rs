//! Node content sets.
//!
//! For a node `v` the paper defines the content `Cv` as the word set
//! implied in `v`'s **label, text and attributes** (§1), and for a subtree
//! the *tree content set* `TCv = ⋃ Cv'` over the keyword nodes of the
//! subtree (Definition 3). A node is a *keyword node* for query `Q` when
//! `Cv ∩ Q ≠ ∅`.

use std::collections::BTreeSet;

use crate::tokenizer::tokenize_filtered;
use crate::tree::{NodeId, XmlTree};

/// The content word set `Cv` of one node: words from its label, its text,
/// and its attribute names/values, lowercased and stop-word filtered.
///
/// A `BTreeSet` keeps the words in lexical order, which is exactly what
/// the `cID = (min, max)` content feature of §4.1 needs.
#[must_use]
pub fn node_content(tree: &XmlTree, id: NodeId) -> BTreeSet<String> {
    let node = tree.node(id);
    let mut words: BTreeSet<String> = BTreeSet::new();
    words.extend(tokenize_filtered(tree.label_name(id)));
    if let Some(text) = &node.text {
        words.extend(tokenize_filtered(text));
    }
    for attr in &node.attributes {
        words.extend(tokenize_filtered(&attr.name));
        words.extend(tokenize_filtered(&attr.value));
    }
    words
}

/// The tree content set of the subtree rooted at `id`: union of the
/// contents of **all** nodes below (and including) `id`.
///
/// Definition 3 restricts the union to *keyword* nodes of the RTF; the
/// full-subtree variant here is the superset used when no query is in
/// scope (e.g. by the store shredder to compute content features). The
/// query-restricted variant lives in `validrtf::node_data`.
#[must_use]
pub fn tree_content(tree: &XmlTree, id: NodeId) -> BTreeSet<String> {
    let mut words = BTreeSet::new();
    for n in tree.preorder_from(id) {
        words.extend(node_content(tree, n));
    }
    words
}

/// `true` iff node `id` contains at least one of `keywords` (each already
/// normalized lowercase) — the paper's *keyword node* predicate.
#[must_use]
pub fn is_keyword_node(tree: &XmlTree, id: NodeId, keywords: &[String]) -> bool {
    let content = node_content(tree, id);
    keywords.iter().any(|k| content.contains(k))
}

/// The `(min, max)` word pair of a content set — the paper's `cID`
/// content feature (§4.1). `None` for an empty set.
#[must_use]
pub fn content_feature(words: &BTreeSet<String>) -> Option<(String, String)> {
    let min = words.iter().next()?.clone();
    let max = words.iter().next_back()?.clone();
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    fn tree() -> XmlTree {
        let mut b = TreeBuilder::new("article");
        b.leaf(
            "title",
            "Efficient Skyline Querying with Variable User Preferences",
        );
        b.open_with_attrs("ref", &[("type", "journal")]);
        b.text("XML keyword search");
        b.close();
        b.build()
    }

    #[test]
    fn content_includes_label_text_attributes() {
        let t = tree();
        let r = t.node_by_dewey(&"0.1".parse().unwrap()).unwrap();
        let c = node_content(&t, r);
        for w in ["ref", "type", "journal", "xml", "keyword", "search"] {
            assert!(c.contains(w), "missing {w}");
        }
    }

    #[test]
    fn content_filters_stop_words() {
        let t = tree();
        let title = t.node_by_dewey(&"0.0".parse().unwrap()).unwrap();
        let c = node_content(&t, title);
        assert!(!c.contains("with"));
        assert!(c.contains("skyline"));
    }

    #[test]
    fn tree_content_is_union() {
        let t = tree();
        let c = tree_content(&t, t.root());
        for w in ["article", "title", "skyline", "ref", "xml", "search"] {
            assert!(c.contains(w), "missing {w}");
        }
    }

    #[test]
    fn keyword_node_predicate() {
        let t = tree();
        let title = t.node_by_dewey(&"0.0".parse().unwrap()).unwrap();
        let kws = vec!["skyline".to_owned(), "nonexistent".to_owned()];
        assert!(is_keyword_node(&t, title, &kws));
        let kws2 = vec!["xml".to_owned()];
        assert!(!is_keyword_node(&t, title, &kws2));
    }

    #[test]
    fn feature_is_lexical_min_max() {
        let words: BTreeSet<String> = ["keyword", "match", "relevant", "search", "xml"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(
            content_feature(&words),
            Some(("keyword".to_owned(), "xml".to_owned()))
        );
        assert_eq!(content_feature(&BTreeSet::new()), None);
    }
}
