//! Embedded English stop-word list.
//!
//! The paper filters stop words with Lucene's English analyzer (§5.2,
//! citing the classic list at syger.com). We embed the standard Lucene
//! `ENGLISH_STOP_WORDS_SET` (33 words) plus the handful of extras the
//! syger list adds, which is what the paper's setup effectively used.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The stop-word list (lowercase).
pub const STOP_WORDS: &[&str] = &[
    // Lucene ENGLISH_STOP_WORDS_SET
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with",
    // common extras from the syger list used by the paper
    "about", "after", "all", "also", "am", "any", "because", "been", "before", "being", "between",
    "both", "can", "could", "did", "do", "does", "doing", "down", "during", "each", "few", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "its", "just", "me", "more", "most", "my", "nor", "now", "off", "once", "only", "other",
    "our", "ours", "out", "over", "own", "same", "she", "should", "so", "some", "than", "them",
    "through", "too", "under", "until", "up", "very", "we", "were", "what", "when", "where",
    "which", "while", "who", "whom", "why", "would", "you", "your", "yours",
];

fn stop_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOP_WORDS.iter().copied().collect())
}

/// `true` iff `word` (already lowercase) is a stop word.
#[must_use]
pub fn is_stop_word(word: &str) -> bool {
    stop_set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_words_are_stopped() {
        for w in ["the", "a", "and", "of", "with", "is"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_kept() {
        for w in ["xml", "keyword", "skyline", "vldb", "gassol", "position"] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn list_is_lowercase_and_unique() {
        let mut seen = HashSet::new();
        for w in STOP_WORDS {
            assert_eq!(*w, w.to_lowercase(), "{w} not lowercase");
            assert!(seen.insert(*w), "{w} duplicated");
        }
    }
}
