//! Dewey codes: hierarchical node identifiers compatible with pre-order.
//!
//! The paper (footnote 2 and footnote 5) identifies every node of an XML
//! tree by its Dewey code, e.g. `0.2.0.1`: the root is `0`, and each
//! component after that is the ordinal of the child along the path from
//! the root. Dewey codes have two properties that every algorithm in this
//! workspace relies on:
//!
//! 1. lexicographic order on components equals the pre-order (document
//!    order) of the tree, and
//! 2. the lowest common ancestor of two nodes is the longest common
//!    prefix of their codes.
//!
//! # Representation
//!
//! Dewey manipulation (clone, LCA, child/parent, stack push/pop)
//! dominates the query hot path, so codes with at most
//! [`Dewey::INLINE_CAP`] components are stored **inline** — no heap
//! allocation anywhere in their lifecycle. Deeper codes spill to a
//! `Vec<u32>`. The representation is invisible to the API: equality,
//! ordering, and hashing are defined over the component sequence, so an
//! inline code and a spilled code with the same components are
//! indistinguishable (property-tested in `tests/dewey_properties.rs`).
//! [`Dewey::push_component`] / [`Dewey::truncate`] /
//! [`Dewey::pop_component`] mutate in place so stack-shaped algorithms
//! (ancestor walks, the ELCA stack) can reuse one cursor code instead of
//! cloning per step.

use std::fmt;
use std::str::FromStr;

/// Number of components stored inline (no heap) — see [`Dewey`].
const INLINE_CAP: usize = 8;

#[derive(Clone)]
enum Repr {
    /// Up to [`INLINE_CAP`] components, no heap involvement.
    Inline { len: u8, comps: [u32; INLINE_CAP] },
    /// Deeper codes spill to the heap. A spilled code may temporarily
    /// hold fewer than `INLINE_CAP` components after [`Dewey::truncate`]
    /// (keeping its capacity for future pushes); semantics never depend
    /// on the variant.
    Spilled(Vec<u32>),
}

/// A Dewey code — the path of child ordinals from the root to a node.
///
/// The root of a document is `Dewey::root()`, printed as `0`. A child is
/// derived with [`Dewey::child`], the parent with [`Dewey::parent`].
///
/// `Ord` is the pre-order (document order) relation used throughout the
/// paper: for two distinct nodes `u`, `v`, `u < v` iff `u` appears before
/// `v` in a left-to-right depth-first traversal. Note that an ancestor
/// precedes all of its descendants.
#[derive(Clone)]
pub struct Dewey {
    repr: Repr,
}

impl Dewey {
    /// Codes with at most this many components never touch the heap.
    pub const INLINE_CAP: usize = INLINE_CAP;

    /// The code of the document root, `0`.
    #[must_use]
    pub fn root() -> Self {
        Dewey {
            repr: Repr::Inline {
                len: 1,
                comps: [0; INLINE_CAP],
            },
        }
    }

    /// An empty code (the *virtual* parent of the root). Mostly useful as
    /// a sentinel; no real node carries it.
    #[must_use]
    pub fn empty() -> Self {
        Dewey {
            repr: Repr::Inline {
                len: 0,
                comps: [0; INLINE_CAP],
            },
        }
    }

    /// Builds a code directly from components, e.g. `[0, 2, 0, 1]` for
    /// `0.2.0.1`. Short codes are canonicalized to the inline form (the
    /// vector is dropped).
    #[must_use]
    pub fn from_components(components: Vec<u32>) -> Self {
        if components.len() <= INLINE_CAP {
            Self::from_slice(&components)
        } else {
            Dewey {
                repr: Repr::Spilled(components),
            }
        }
    }

    /// Builds a code from a component slice without allocating when the
    /// slice fits inline.
    #[must_use]
    pub fn from_slice(components: &[u32]) -> Self {
        if components.len() <= INLINE_CAP {
            let mut comps = [0; INLINE_CAP];
            comps[..components.len()].copy_from_slice(components);
            Dewey {
                repr: Repr::Inline {
                    len: components.len() as u8,
                    comps,
                },
            }
        } else {
            Dewey {
                repr: Repr::Spilled(components.to_vec()),
            }
        }
    }

    /// The components of the code.
    #[must_use]
    pub fn components(&self) -> &[u32] {
        match &self.repr {
            Repr::Inline { len, comps } => &comps[..usize::from(*len)],
            Repr::Spilled(v) => v,
        }
    }

    /// `true` when the code is stored inline (no heap). Exposed for the
    /// representation-equivalence tests and allocation assertions.
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Number of components; the root has length 1.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Spilled(v) => v.len(),
        }
    }

    /// `true` only for the sentinel produced by [`Dewey::empty`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depth of the node: the root is at level 0.
    #[must_use]
    pub fn level(&self) -> usize {
        self.len().saturating_sub(1)
    }

    /// Appends a component in place — [`Dewey::child`] without the new
    /// code. Stays inline up to [`Dewey::INLINE_CAP`] components, then
    /// spills once.
    pub fn push_component(&mut self, component: u32) {
        match &mut self.repr {
            Repr::Inline { len, comps } => {
                let n = usize::from(*len);
                if n < INLINE_CAP {
                    comps[n] = component;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_CAP * 2);
                    v.extend_from_slice(comps);
                    v.push(component);
                    self.repr = Repr::Spilled(v);
                }
            }
            Repr::Spilled(v) => v.push(component),
        }
    }

    /// Shortens the code to `len` components in place (no-op when
    /// already that short). A spilled code keeps its heap capacity so a
    /// later [`Dewey::push_component`] does not reallocate.
    pub fn truncate(&mut self, new_len: usize) {
        match &mut self.repr {
            Repr::Inline { len, .. } => {
                if usize::from(*len) > new_len {
                    *len = new_len as u8;
                }
            }
            Repr::Spilled(v) => v.truncate(new_len),
        }
    }

    /// Removes and returns the last component, `None` on the empty
    /// sentinel. `pop` then `push` of the same component round-trips.
    pub fn pop_component(&mut self) -> Option<u32> {
        match &mut self.repr {
            Repr::Inline { len, comps } => {
                if *len == 0 {
                    return None;
                }
                *len -= 1;
                Some(comps[usize::from(*len)])
            }
            Repr::Spilled(v) => v.pop(),
        }
    }

    /// Overwrites this code with `components`, reusing a spilled code's
    /// heap capacity when possible (a scratch-cursor `clone_from`
    /// by slice).
    pub fn assign(&mut self, components: &[u32]) {
        match &mut self.repr {
            Repr::Spilled(v)
                if components.len() > INLINE_CAP || v.capacity() >= components.len() =>
            {
                v.clear();
                v.extend_from_slice(components);
            }
            _ => *self = Self::from_slice(components),
        }
    }

    /// The code of this node's `ordinal`-th child (0-based).
    #[must_use]
    pub fn child(&self, ordinal: u32) -> Self {
        let mut child = self.clone();
        child.push_component(ordinal);
        child
    }

    /// The parent code, or `None` for the root (and the empty sentinel).
    #[must_use]
    pub fn parent(&self) -> Option<Self> {
        let comps = self.components();
        if comps.len() <= 1 {
            return None;
        }
        Some(Self::from_slice(&comps[..comps.len() - 1]))
    }

    /// The ordinal of this node among its siblings (its last component).
    #[must_use]
    pub fn ordinal(&self) -> Option<u32> {
        self.components().last().copied()
    }

    /// `true` iff `self` is a **proper** ancestor of `other`
    /// (the paper's `u ≺a v`).
    #[must_use]
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        let a = self.components();
        let b = other.components();
        a.len() < b.len() && b[..a.len()] == *a
    }

    /// `true` iff `self` is an ancestor of `other` or equal to it
    /// ("ancestor-or-self", the dispatch relation used by `getRTF`).
    #[must_use]
    pub fn is_ancestor_or_self(&self, other: &Dewey) -> bool {
        let a = self.components();
        let b = other.components();
        a.len() <= b.len() && b[..a.len()] == *a
    }

    /// `true` iff `self` is a proper descendant of `other`.
    #[must_use]
    pub fn is_descendant_of(&self, other: &Dewey) -> bool {
        other.is_ancestor_of(self)
    }

    /// The lowest common ancestor of two codes: their longest common
    /// prefix. For codes of the same document this is never empty.
    #[must_use]
    pub fn lca(&self, other: &Dewey) -> Dewey {
        let a = self.components();
        let b = other.components();
        let n = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        Self::from_slice(&a[..n])
    }

    /// The LCA of a non-empty slice of codes; `None` on an empty slice.
    #[must_use]
    pub fn lca_of_all(codes: &[Dewey]) -> Option<Dewey> {
        let mut iter = codes.iter();
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, d| acc.lca(d)))
    }

    /// Iterator over all **proper** ancestors, nearest first
    /// (parent, grandparent, …, root).
    pub fn ancestors(&self) -> impl Iterator<Item = Dewey> + '_ {
        let mut len = self.len();
        std::iter::from_fn(move || {
            if len <= 1 {
                return None;
            }
            len -= 1;
            Some(Self::from_slice(&self.components()[..len]))
        })
    }

    /// Iterator over the path from `stop` (exclusive) down to `self`
    /// (inclusive); `stop` must be an ancestor-or-self of `self`.
    /// Used by the constructing step of `pruneRTF`, which walks every
    /// node on the path from a keyword node up to the RTF anchor.
    pub fn path_from(&self, stop: &Dewey) -> impl Iterator<Item = Dewey> + '_ {
        debug_assert!(stop.is_ancestor_or_self(self));
        let mut len = stop.len();
        let end = self.len();
        std::iter::from_fn(move || {
            if len >= end {
                return None;
            }
            len += 1;
            Some(Self::from_slice(&self.components()[..len]))
        })
    }

    /// The first Dewey code (in pre-order) that is **not** a descendant
    /// of `self` and sorts after `self`'s whole subtree. Useful for
    /// binary-search range scans over sorted Dewey lists.
    ///
    /// Returns `None` when no such code exists with the same code length
    /// budget (i.e. the last component is `u32::MAX`, which generators
    /// never produce).
    #[must_use]
    pub fn subtree_upper_bound(&self) -> Option<Dewey> {
        let next = self.ordinal()?.checked_add(1)?;
        let mut out = self.clone();
        match &mut out.repr {
            Repr::Inline { len, comps } => comps[usize::from(*len) - 1] = next,
            Repr::Spilled(v) => *v.last_mut().expect("non-empty") = next,
        }
        Some(out)
    }
}

impl Default for Dewey {
    fn default() -> Self {
        Dewey::empty()
    }
}

impl PartialEq for Dewey {
    fn eq(&self, other: &Self) -> bool {
        self.components() == other.components()
    }
}

impl Eq for Dewey {}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dewey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.components().cmp(other.components())
    }
}

impl std::hash::Hash for Dewey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Matches what `Vec<u32>`/`&[u32]` hash to (length prefix plus
        // components), so the representation cannot leak into hashes.
        self.components().hash(state);
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        let mut first = true;
        for c in self.components() {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dewey({self})")
    }
}

/// Error returned when parsing a Dewey code from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeweyError {
    text: String,
}

impl fmt::Display for ParseDeweyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Dewey code: {:?}", self.text)
    }
}

impl std::error::Error for ParseDeweyError {}

impl FromStr for Dewey {
    type Err = ParseDeweyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Dewey::empty());
        }
        let components: Result<Vec<u32>, _> = s.split('.').map(str::parse).collect();
        components
            .map(Dewey::from_components)
            .map_err(|_| ParseDeweyError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().expect("valid dewey")
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "0.2.0.1", "1.0.3", "0.0.0.0"] {
            assert_eq!(d(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("0.a.1".parse::<Dewey>().is_err());
        assert!("0..1".parse::<Dewey>().is_err());
        assert!("-1".parse::<Dewey>().is_err());
    }

    #[test]
    fn empty_sentinel() {
        let e = Dewey::empty();
        assert!(e.is_empty());
        assert_eq!(e.to_string(), "ε");
        assert_eq!("".parse::<Dewey>().unwrap(), e);
    }

    #[test]
    fn preorder_ordering() {
        // Ancestors precede descendants; siblings by ordinal.
        assert!(d("0") < d("0.0"));
        assert!(d("0.0") < d("0.1"));
        assert!(d("0.0.5") < d("0.1"));
        assert!(d("0.2.0.1") < d("0.2.0.3.0"));
        assert!(d("0.2.0.3.0") < d("0.2.1"));
    }

    #[test]
    fn child_and_parent() {
        let root = Dewey::root();
        let c = root.child(2).child(0);
        assert_eq!(c.to_string(), "0.2.0");
        assert_eq!(c.parent().unwrap().to_string(), "0.2");
        assert_eq!(root.parent(), None);
        assert_eq!(c.ordinal(), Some(0));
        assert_eq!(c.level(), 2);
    }

    #[test]
    fn ancestor_relations() {
        assert!(d("0").is_ancestor_of(&d("0.2.0")));
        assert!(!d("0.2").is_ancestor_of(&d("0.2")));
        assert!(d("0.2").is_ancestor_or_self(&d("0.2")));
        assert!(!d("0.1").is_ancestor_of(&d("0.2.0")));
        assert!(d("0.2.0").is_descendant_of(&d("0")));
        // A longer code is never an ancestor of a shorter one.
        assert!(!d("0.2.0").is_ancestor_of(&d("0.2")));
    }

    #[test]
    fn lca_is_longest_common_prefix() {
        assert_eq!(d("0.2.0.1").lca(&d("0.2.0.3.0")), d("0.2.0"));
        assert_eq!(d("0.0").lca(&d("0.2.1")), d("0"));
        assert_eq!(d("0.2").lca(&d("0.2")), d("0.2"));
        // LCA with an ancestor is the ancestor itself.
        assert_eq!(d("0.2.0.1").lca(&d("0.2")), d("0.2"));
    }

    #[test]
    fn lca_of_all_nodes() {
        let codes = vec![d("0.2.0.1"), d("0.2.0.2"), d("0.2.0.3.0")];
        assert_eq!(Dewey::lca_of_all(&codes), Some(d("0.2.0")));
        assert_eq!(Dewey::lca_of_all(&[]), None);
        assert_eq!(Dewey::lca_of_all(&[d("0.5")]), Some(d("0.5")));
    }

    #[test]
    fn ancestors_nearest_first() {
        let anc: Vec<String> = d("0.2.0.1").ancestors().map(|a| a.to_string()).collect();
        assert_eq!(anc, ["0.2.0", "0.2", "0"]);
        assert_eq!(Dewey::root().ancestors().count(), 0);
    }

    #[test]
    fn path_from_anchor() {
        let path: Vec<String> = d("0.2.0.1")
            .path_from(&d("0"))
            .map(|a| a.to_string())
            .collect();
        assert_eq!(path, ["0.2", "0.2.0", "0.2.0.1"]);
        // path from self is empty
        assert_eq!(d("0.2").path_from(&d("0.2")).count(), 0);
    }

    #[test]
    fn subtree_upper_bound_bracket() {
        let ub = d("0.2.0").subtree_upper_bound().unwrap();
        assert_eq!(ub, d("0.2.1"));
        assert!(d("0.2.0.9.9") < ub);
        assert!(d("0.2.0") < ub);
        assert!(ub <= d("0.2.1"));
    }

    #[test]
    fn ordering_matches_component_lexicographic() {
        let mut v = [d("0.2.1"), d("0"), d("0.2.0.3.0"), d("0.0"), d("0.2")];
        v.sort();
        let s: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        assert_eq!(s, ["0", "0.0", "0.2", "0.2.0.3.0", "0.2.1"]);
    }

    // ------------------------------------------ inline/spilled behaviour

    #[test]
    fn short_codes_are_inline_deep_codes_spill() {
        assert!(Dewey::root().is_inline());
        assert!(Dewey::empty().is_inline());
        assert!(d("0.1.2.3.4.5.6.7").is_inline()); // exactly INLINE_CAP
        assert!(!d("0.1.2.3.4.5.6.7.8").is_inline());
        // from_components canonicalizes short vectors to inline.
        assert!(Dewey::from_components(vec![0, 1, 2]).is_inline());
    }

    #[test]
    fn push_truncate_pop_round_trip() {
        let mut x = Dewey::root();
        for i in 0..12 {
            x.push_component(i);
        }
        assert_eq!(x.len(), 13);
        assert!(!x.is_inline());
        assert_eq!(x.pop_component(), Some(11));
        x.truncate(5);
        assert_eq!(x.to_string(), "0.0.1.2.3");
        // Equal to an inline-built code despite being spilled.
        assert_eq!(x, d("0.0.1.2.3"));
        assert!(!x.is_inline());
        x.truncate(0);
        assert_eq!(x, Dewey::empty());
        assert_eq!(x.pop_component(), None);
    }

    #[test]
    fn push_across_the_inline_boundary() {
        let mut x = d("0.1.2.3.4.5.6.7");
        assert!(x.is_inline());
        x.push_component(8);
        assert!(!x.is_inline());
        assert_eq!(x, d("0.1.2.3.4.5.6.7.8"));
        assert_eq!(x.pop_component(), Some(8));
        assert_eq!(x, d("0.1.2.3.4.5.6.7"));
    }

    #[test]
    fn assign_reuses_and_matches() {
        let mut x = d("0.1.2.3.4.5.6.7.8"); // spilled
        x.assign(&[0, 2]);
        assert_eq!(x, d("0.2"));
        let mut y = Dewey::empty();
        y.assign(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(y.len(), 10);
        assert_eq!(y, Dewey::from_components((0..10).collect()));
    }

    #[test]
    fn mixed_representation_ord_eq_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let inline = d("0.3.1");
        let mut spilled = d("0.3.1.0.0.0.0.0.0.0");
        spilled.truncate(3); // still Spilled, same components
        assert!(!spilled.is_inline());
        assert_eq!(inline, spilled);
        assert_eq!(inline.cmp(&spilled), std::cmp::Ordering::Equal);
        let h = |x: &Dewey| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&inline), h(&spilled));
    }

    #[test]
    fn deep_code_operations_still_correct() {
        let deep = Dewey::from_components((0..20).collect());
        assert_eq!(deep.len(), 20);
        assert_eq!(deep.level(), 19);
        assert_eq!(deep.parent().unwrap().len(), 19);
        assert_eq!(deep.child(7).len(), 21);
        assert_eq!(deep.ancestors().count(), 19);
        let ub = deep.subtree_upper_bound().unwrap();
        assert!(deep < ub);
        assert!(!deep.is_ancestor_of(&ub));
        let shallow = d("0.1");
        assert_eq!(deep.lca(&shallow).to_string(), "0.1");
    }
}
