//! Dewey codes: hierarchical node identifiers compatible with pre-order.
//!
//! The paper (footnote 2 and footnote 5) identifies every node of an XML
//! tree by its Dewey code, e.g. `0.2.0.1`: the root is `0`, and each
//! component after that is the ordinal of the child along the path from
//! the root. Dewey codes have two properties that every algorithm in this
//! workspace relies on:
//!
//! 1. lexicographic order on components equals the pre-order (document
//!    order) of the tree, and
//! 2. the lowest common ancestor of two nodes is the longest common
//!    prefix of their codes.

use std::fmt;
use std::str::FromStr;

/// A Dewey code — the path of child ordinals from the root to a node.
///
/// The root of a document is `Dewey::root()`, printed as `0`. A child is
/// derived with [`Dewey::child`], the parent with [`Dewey::parent`].
///
/// `Ord` is the pre-order (document order) relation used throughout the
/// paper: for two distinct nodes `u`, `v`, `u < v` iff `u` appears before
/// `v` in a left-to-right depth-first traversal. Note that an ancestor
/// precedes all of its descendants.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dewey {
    components: Vec<u32>,
}

impl Dewey {
    /// The code of the document root, `0`.
    #[must_use]
    pub fn root() -> Self {
        Dewey {
            components: vec![0],
        }
    }

    /// An empty code (the *virtual* parent of the root). Mostly useful as
    /// a sentinel; no real node carries it.
    #[must_use]
    pub fn empty() -> Self {
        Dewey {
            components: Vec::new(),
        }
    }

    /// Builds a code directly from components, e.g. `[0, 2, 0, 1]` for
    /// `0.2.0.1`.
    #[must_use]
    pub fn from_components(components: Vec<u32>) -> Self {
        Dewey { components }
    }

    /// The components of the code.
    #[must_use]
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Number of components; the root has length 1.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` only for the sentinel produced by [`Dewey::empty`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Depth of the node: the root is at level 0.
    #[must_use]
    pub fn level(&self) -> usize {
        self.components.len().saturating_sub(1)
    }

    /// The code of this node's `ordinal`-th child (0-based).
    #[must_use]
    pub fn child(&self, ordinal: u32) -> Self {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(ordinal);
        Dewey { components }
    }

    /// The parent code, or `None` for the root (and the empty sentinel).
    #[must_use]
    pub fn parent(&self) -> Option<Self> {
        if self.components.len() <= 1 {
            return None;
        }
        Some(Dewey {
            components: self.components[..self.components.len() - 1].to_vec(),
        })
    }

    /// The ordinal of this node among its siblings (its last component).
    #[must_use]
    pub fn ordinal(&self) -> Option<u32> {
        self.components.last().copied()
    }

    /// `true` iff `self` is a **proper** ancestor of `other`
    /// (the paper's `u ≺a v`).
    #[must_use]
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// `true` iff `self` is an ancestor of `other` or equal to it
    /// ("ancestor-or-self", the dispatch relation used by `getRTF`).
    #[must_use]
    pub fn is_ancestor_or_self(&self, other: &Dewey) -> bool {
        self.components.len() <= other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// `true` iff `self` is a proper descendant of `other`.
    #[must_use]
    pub fn is_descendant_of(&self, other: &Dewey) -> bool {
        other.is_ancestor_of(self)
    }

    /// The lowest common ancestor of two codes: their longest common
    /// prefix. For codes of the same document this is never empty.
    #[must_use]
    pub fn lca(&self, other: &Dewey) -> Dewey {
        let n = self
            .components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Dewey {
            components: self.components[..n].to_vec(),
        }
    }

    /// The LCA of a non-empty slice of codes; `None` on an empty slice.
    #[must_use]
    pub fn lca_of_all(codes: &[Dewey]) -> Option<Dewey> {
        let mut iter = codes.iter();
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, d| acc.lca(d)))
    }

    /// Iterator over all **proper** ancestors, nearest first
    /// (parent, grandparent, …, root).
    pub fn ancestors(&self) -> impl Iterator<Item = Dewey> + '_ {
        let mut len = self.components.len();
        std::iter::from_fn(move || {
            if len <= 1 {
                return None;
            }
            len -= 1;
            Some(Dewey {
                components: self.components[..len].to_vec(),
            })
        })
    }

    /// Iterator over the path from `stop` (exclusive) down to `self`
    /// (inclusive); `stop` must be an ancestor-or-self of `self`.
    /// Used by the constructing step of `pruneRTF`, which walks every
    /// node on the path from a keyword node up to the RTF anchor.
    pub fn path_from(&self, stop: &Dewey) -> impl Iterator<Item = Dewey> + '_ {
        debug_assert!(stop.is_ancestor_or_self(self));
        let mut len = stop.components.len();
        let end = self.components.len();
        std::iter::from_fn(move || {
            if len >= end {
                return None;
            }
            len += 1;
            Some(Dewey {
                components: self.components[..len].to_vec(),
            })
        })
    }

    /// The first Dewey code (in pre-order) that is **not** a descendant
    /// of `self` and sorts after `self`'s whole subtree. Useful for
    /// binary-search range scans over sorted Dewey lists.
    ///
    /// Returns `None` when no such code exists with the same code length
    /// budget (i.e. the last component is `u32::MAX`, which generators
    /// never produce).
    #[must_use]
    pub fn subtree_upper_bound(&self) -> Option<Dewey> {
        let mut components = self.components.clone();
        let last = components.last_mut()?;
        *last = last.checked_add(1)?;
        Some(Dewey { components })
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "ε");
        }
        let mut first = true;
        for c in &self.components {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dewey({self})")
    }
}

/// Error returned when parsing a Dewey code from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeweyError {
    text: String,
}

impl fmt::Display for ParseDeweyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Dewey code: {:?}", self.text)
    }
}

impl std::error::Error for ParseDeweyError {}

impl FromStr for Dewey {
    type Err = ParseDeweyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Dewey::empty());
        }
        let components: Result<Vec<u32>, _> = s.split('.').map(str::parse).collect();
        components
            .map(Dewey::from_components)
            .map_err(|_| ParseDeweyError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().expect("valid dewey")
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "0.2.0.1", "1.0.3", "0.0.0.0"] {
            assert_eq!(d(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("0.a.1".parse::<Dewey>().is_err());
        assert!("0..1".parse::<Dewey>().is_err());
        assert!("-1".parse::<Dewey>().is_err());
    }

    #[test]
    fn empty_sentinel() {
        let e = Dewey::empty();
        assert!(e.is_empty());
        assert_eq!(e.to_string(), "ε");
        assert_eq!("".parse::<Dewey>().unwrap(), e);
    }

    #[test]
    fn preorder_ordering() {
        // Ancestors precede descendants; siblings by ordinal.
        assert!(d("0") < d("0.0"));
        assert!(d("0.0") < d("0.1"));
        assert!(d("0.0.5") < d("0.1"));
        assert!(d("0.2.0.1") < d("0.2.0.3.0"));
        assert!(d("0.2.0.3.0") < d("0.2.1"));
    }

    #[test]
    fn child_and_parent() {
        let root = Dewey::root();
        let c = root.child(2).child(0);
        assert_eq!(c.to_string(), "0.2.0");
        assert_eq!(c.parent().unwrap().to_string(), "0.2");
        assert_eq!(root.parent(), None);
        assert_eq!(c.ordinal(), Some(0));
        assert_eq!(c.level(), 2);
    }

    #[test]
    fn ancestor_relations() {
        assert!(d("0").is_ancestor_of(&d("0.2.0")));
        assert!(!d("0.2").is_ancestor_of(&d("0.2")));
        assert!(d("0.2").is_ancestor_or_self(&d("0.2")));
        assert!(!d("0.1").is_ancestor_of(&d("0.2.0")));
        assert!(d("0.2.0").is_descendant_of(&d("0")));
        // A longer code is never an ancestor of a shorter one.
        assert!(!d("0.2.0").is_ancestor_of(&d("0.2")));
    }

    #[test]
    fn lca_is_longest_common_prefix() {
        assert_eq!(d("0.2.0.1").lca(&d("0.2.0.3.0")), d("0.2.0"));
        assert_eq!(d("0.0").lca(&d("0.2.1")), d("0"));
        assert_eq!(d("0.2").lca(&d("0.2")), d("0.2"));
        // LCA with an ancestor is the ancestor itself.
        assert_eq!(d("0.2.0.1").lca(&d("0.2")), d("0.2"));
    }

    #[test]
    fn lca_of_all_nodes() {
        let codes = vec![d("0.2.0.1"), d("0.2.0.2"), d("0.2.0.3.0")];
        assert_eq!(Dewey::lca_of_all(&codes), Some(d("0.2.0")));
        assert_eq!(Dewey::lca_of_all(&[]), None);
        assert_eq!(Dewey::lca_of_all(&[d("0.5")]), Some(d("0.5")));
    }

    #[test]
    fn ancestors_nearest_first() {
        let anc: Vec<String> = d("0.2.0.1").ancestors().map(|a| a.to_string()).collect();
        assert_eq!(anc, ["0.2.0", "0.2", "0"]);
        assert_eq!(Dewey::root().ancestors().count(), 0);
    }

    #[test]
    fn path_from_anchor() {
        let path: Vec<String> = d("0.2.0.1")
            .path_from(&d("0"))
            .map(|a| a.to_string())
            .collect();
        assert_eq!(path, ["0.2", "0.2.0", "0.2.0.1"]);
        // path from self is empty
        assert_eq!(d("0.2").path_from(&d("0.2")).count(), 0);
    }

    #[test]
    fn subtree_upper_bound_bracket() {
        let ub = d("0.2.0").subtree_upper_bound().unwrap();
        assert_eq!(ub, d("0.2.1"));
        assert!(d("0.2.0.9.9") < ub);
        assert!(d("0.2.0") < ub);
        assert!(ub <= d("0.2.1"));
    }

    #[test]
    fn ordering_matches_component_lexicographic() {
        let mut v = [d("0.2.1"), d("0"), d("0.2.0.3.0"), d("0.0"), d("0.2")];
        v.sort();
        let s: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        assert_eq!(s, ["0", "0.0", "0.2", "0.2.0.3.0", "0.2.1"]);
    }
}
