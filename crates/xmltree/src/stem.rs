//! Light suffix stemming (opt-in).
//!
//! The paper's pipeline runs text through Lucene's English analysis,
//! which is why its Example 2 matches the query keyword *query* against
//! the title word *Querying*. Exact-match tokenization (this crate's
//! default) cannot reproduce that; this module provides the standard
//! light "S-stemmer" plus `-ing`/`-ed` stripping so callers that want
//! the paper's looser matching can normalize both documents and
//! queries the same way (`InvertedIndex` stays agnostic — stem before
//! indexing and before querying).
//!
//! The rules are deliberately conservative (a subset of Harman's
//! S-stemmer): they never touch short tokens and avoid the classic
//! overstemming traps (`ies`→`y`, keep `ss`, keep `-ing` on short
//! stems).

/// Stems one lowercase token.
#[must_use]
pub fn light_stem(word: &str) -> String {
    let mut w = word.to_owned();

    // -ing: "querying" → "query"; require a stem of ≥ 4 chars so
    // "ring"/"king" survive.
    if let Some(stem) = w.strip_suffix("ing") {
        if stem.len() >= 4 {
            w = stem.to_owned();
            return finish_e_restore(w);
        }
    }
    // -ed: "matched" → "match"; same guard.
    if let Some(stem) = w.strip_suffix("ed") {
        if stem.len() >= 4 {
            return finish_e_restore(stem.to_owned());
        }
    }
    // S-stemmer plural rules.
    if let Some(stem) = w.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if w.ends_with("ss") || w.ends_with("us") {
        return w;
    }
    if let Some(stem) = w.strip_suffix("es") {
        // "searches" → "search", "boxes" → "box".
        if stem.ends_with("ch")
            || stem.ends_with("sh")
            || stem.ends_with('x')
            || stem.ends_with('s')
        {
            return stem.to_owned();
        }
    }
    if let Some(stem) = w.strip_suffix('s') {
        if stem.len() >= 3 && !stem.ends_with('s') {
            return stem.to_owned();
        }
    }
    w
}

/// After stripping `-ing`/`-ed`, undo consonant doubling ("matching" →
/// "match" not "matchh" is already fine; "stopping" → "stop") and keep
/// single trailing letters intact.
fn finish_e_restore(w: String) -> String {
    let bytes = w.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] && !matches!(bytes[n - 1], b'l' | b's' | b'z') {
        // "stopp" → "stop", but keep "fell"/"miss"-style endings.
        return w[..n - 1].to_owned();
    }
    w
}

/// Stems every token of an iterator (convenience for index builders).
pub fn stem_all<'a, I>(tokens: I) -> impl Iterator<Item = String> + 'a
where
    I: Iterator<Item = String> + 'a,
{
    tokens.map(|t| light_stem(&t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_motivating_case() {
        // Example 2: "Skyline Querying" must match query keyword
        // "query".
        assert_eq!(light_stem("querying"), "query");
        assert_eq!(light_stem("query"), "query");
    }

    #[test]
    fn plural_rules() {
        assert_eq!(light_stem("queries"), "query");
        assert_eq!(light_stem("searches"), "search");
        assert_eq!(light_stem("fragments"), "fragment");
        assert_eq!(light_stem("preferences"), "preference");
        assert_eq!(light_stem("boxes"), "box");
        assert_eq!(light_stem("class"), "class");
        assert_eq!(light_stem("status"), "status");
    }

    #[test]
    fn ing_ed_rules() {
        assert_eq!(light_stem("matching"), "match");
        assert_eq!(light_stem("matched"), "match");
        assert_eq!(light_stem("stopping"), "stop");
        assert_eq!(light_stem("ranked"), "rank");
        // Short stems untouched.
        assert_eq!(light_stem("ring"), "ring");
        assert_eq!(light_stem("king"), "king");
        assert_eq!(light_stem("red"), "red");
    }

    #[test]
    fn idempotent_on_common_vocabulary() {
        for w in ["xml", "keyword", "skyline", "data", "vldb", "tree"] {
            assert_eq!(light_stem(w), w);
            let once = light_stem(w);
            assert_eq!(light_stem(&once), once, "{w} not idempotent");
        }
    }

    #[test]
    fn stem_all_maps_tokens() {
        let toks = vec!["queries".to_owned(), "matching".to_owned()];
        let out: Vec<String> = stem_all(toks.into_iter()).collect();
        assert_eq!(out, ["query", "match"]);
    }
}
