//! The arena XML tree model `T = (r, V, E, Σ, λ)`.
//!
//! Nodes live in a flat arena indexed by [`NodeId`]; every node carries its
//! interned label, its Dewey code, optional text value, and attributes.
//! Following the paper's model (§1), text is a *property of the element
//! node* (footnote 1: "this is different from the XML model in \[1\], in
//! which there is an independent node for each text value").

use std::collections::HashMap;
use std::fmt;

use crate::dewey::Dewey;
use crate::label::{LabelId, LabelTable};

/// Index of a node in an [`XmlTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One XML attribute (`name="value"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: String,
}

/// A node of the XML tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Interned label `λ(v)`.
    pub label: LabelId,
    /// Dewey code of the node (unique; compatible with pre-order).
    pub dewey: Dewey,
    /// Concatenated text content directly under this element, if any.
    pub text: Option<String>,
    /// Attributes in document order.
    pub attributes: Vec<Attribute>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

impl Node {
    /// Child node ids in document order.
    #[must_use]
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Parent node id, `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// `true` when the node has no element children.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An XML document tree.
///
/// Construction goes through [`TreeBuilder`](crate::builder::TreeBuilder)
/// or the parser; the tree itself is immutable afterwards except for the
/// explicit structural-edit API used by the axiomatic-property tests
/// ([`XmlTree::insert_subtree`]).
#[derive(Debug, Clone, Default)]
pub struct XmlTree {
    labels: LabelTable,
    nodes: Vec<Node>,
    by_dewey: HashMap<Dewey, NodeId>,
    root: Option<NodeId>,
}

impl XmlTree {
    /// Creates an empty tree (no root yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The root node id. Panics when the tree is empty.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root.expect("XmlTree has no root")
    }

    /// `true` when the tree has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The label interner of this tree.
    #[must_use]
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Immutable access to a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The label string of a node.
    #[must_use]
    pub fn label_name(&self, id: NodeId) -> &str {
        self.labels.name(self.node(id).label)
    }

    /// Looks a node up by Dewey code.
    #[must_use]
    pub fn node_by_dewey(&self, dewey: &Dewey) -> Option<NodeId> {
        self.by_dewey.get(dewey).copied()
    }

    /// The Dewey code of a node.
    #[must_use]
    pub fn dewey(&self, id: NodeId) -> &Dewey {
        &self.node(id).dewey
    }

    /// Pre-order iterator over all node ids starting at the root.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: self.root.into_iter().collect(),
        }
    }

    /// Pre-order iterator over the subtree rooted at `id` (inclusive).
    pub fn preorder_from(&self, id: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![id],
        }
    }

    /// Iterator over proper ancestors of `id`, nearest first.
    pub fn ancestors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.node(id).parent;
        std::iter::from_fn(move || {
            let id = cur?;
            cur = self.node(id).parent;
            Some(id)
        })
    }

    /// Depth of `id` (root = 0).
    #[must_use]
    pub fn depth(&self, id: NodeId) -> usize {
        self.node(id).dewey.level()
    }

    // ---------------------------------------------------------------
    // Internal construction API (used by the builder, parser, and the
    // structural-edit entry point below).
    // ---------------------------------------------------------------

    pub(crate) fn intern_label(&mut self, name: &str) -> LabelId {
        self.labels.intern(name)
    }

    pub(crate) fn push_node(
        &mut self,
        label: LabelId,
        parent: Option<NodeId>,
        text: Option<String>,
        attributes: Vec<Attribute>,
    ) -> NodeId {
        let dewey = match parent {
            None => {
                assert!(self.root.is_none(), "tree already has a root");
                Dewey::root()
            }
            Some(p) => {
                let ordinal = self.nodes[p.index()].children.len() as u32;
                self.nodes[p.index()].dewey.child(ordinal)
            }
        };
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow"));
        self.nodes.push(Node {
            label,
            dewey: dewey.clone(),
            text,
            attributes,
            parent,
            children: Vec::new(),
        });
        match parent {
            None => self.root = Some(id),
            Some(p) => self.nodes[p.index()].children.push(id),
        }
        self.by_dewey.insert(dewey, id);
        id
    }

    /// Appends a new element as the **last child** of `parent`, returning
    /// its id. This is the data-insertion primitive the axiomatic
    /// data-monotonicity / data-consistency properties are stated over
    /// (Liu & Chen §1): appending keeps every existing Dewey code valid.
    pub fn insert_subtree(&mut self, parent: NodeId, label: &str, text: Option<&str>) -> NodeId {
        let label = self.intern_label(label);
        self.push_node(label, Some(parent), text.map(str::to_owned), Vec::new())
    }

    /// Collects `(dewey, label, text)` triples of the whole tree in
    /// pre-order — a cheap structural fingerprint used by tests.
    #[must_use]
    pub fn fingerprint(&self) -> Vec<(String, String, Option<String>)> {
        self.preorder()
            .map(|id| {
                let n = self.node(id);
                (
                    n.dewey.to_string(),
                    self.labels.name(n.label).to_owned(),
                    n.text.clone(),
                )
            })
            .collect()
    }
}

impl fmt::Display for XmlTree {
    /// Indented outline (label, dewey, text) — handy in test failures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for id in self.preorder() {
            let n = self.node(id);
            let indent = "  ".repeat(n.dewey.level());
            write!(f, "{indent}{} [{}]", self.labels.name(n.label), n.dewey)?;
            if let Some(t) = &n.text {
                write!(f, " {t:?}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Pre-order traversal iterator. See [`XmlTree::preorder`].
pub struct Preorder<'a> {
    tree: &'a XmlTree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.tree.node(id).children;
        self.stack.extend(children.iter().rev());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    fn sample() -> XmlTree {
        let mut b = TreeBuilder::new("Publications");
        b.open("Conference");
        b.text("VLDB title 2008");
        b.close();
        b.open("Articles");
        b.open("article");
        b.leaf("title", "XML keyword search");
        b.close();
        b.close();
        b.build()
    }

    #[test]
    fn deweys_follow_structure() {
        let t = sample();
        let fp = t.fingerprint();
        let codes: Vec<&str> = fp.iter().map(|(d, _, _)| d.as_str()).collect();
        assert_eq!(codes, ["0", "0.0", "0.1", "0.1.0", "0.1.0.0"]);
    }

    #[test]
    fn preorder_matches_dewey_order() {
        let t = sample();
        let deweys: Vec<Dewey> = t.preorder().map(|id| t.dewey(id).clone()).collect();
        let mut sorted = deweys.clone();
        sorted.sort();
        assert_eq!(deweys, sorted);
    }

    #[test]
    fn lookup_by_dewey() {
        let t = sample();
        let id = t.node_by_dewey(&"0.1.0.0".parse().unwrap()).unwrap();
        assert_eq!(t.label_name(id), "title");
        assert_eq!(t.node(id).text.as_deref(), Some("XML keyword search"));
        assert!(t.node_by_dewey(&"0.9".parse().unwrap()).is_none());
    }

    #[test]
    fn ancestors_nearest_first() {
        let t = sample();
        let id = t.node_by_dewey(&"0.1.0.0".parse().unwrap()).unwrap();
        let labels: Vec<&str> = t.ancestors(id).map(|a| t.label_name(a)).collect();
        assert_eq!(labels, ["article", "Articles", "Publications"]);
    }

    #[test]
    fn insert_subtree_appends_with_fresh_dewey() {
        let mut t = sample();
        let articles = t.node_by_dewey(&"0.1".parse().unwrap()).unwrap();
        let before = t.len();
        let new = t.insert_subtree(articles, "article", None);
        assert_eq!(t.len(), before + 1);
        assert_eq!(t.dewey(new).to_string(), "0.1.1");
        assert_eq!(t.node(new).parent(), Some(articles));
        // Existing nodes untouched.
        assert!(t.node_by_dewey(&"0.1.0.0".parse().unwrap()).is_some());
    }

    #[test]
    fn display_outline_contains_labels() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("Publications [0]"));
        assert!(s.contains("  article [0.1.0]"));
    }
}
