//! Interned element labels.
//!
//! The paper's XML model assigns every node a label `λ(v) ∈ Σ`. Labels
//! repeat heavily (every `article` element shares one label), so we intern
//! them: each distinct string gets a dense [`LabelId`] and all node-level
//! structures store the id. This also mirrors the paper's relational
//! `label(label, ID)` table (§5.2), which `xks-store` re-exposes.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned label string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The numeric value of the id.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The id as an index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional label interner: string → [`LabelId`] → string.
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    by_name: HashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(u32::try_from(self.names.len()).expect("label table overflow"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`. Panics on a foreign id.
    #[must_use]
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no label has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("article");
        let b = t.intern("title");
        let a2 = t.intern("article");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn name_round_trip() {
        let mut t = LabelTable::new();
        let id = t.intern("Publications");
        assert_eq!(t.name(id), "Publications");
        assert_eq!(t.get("Publications"), Some(id));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = LabelTable::new();
        let ids: Vec<LabelId> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        assert_eq!(ids, vec![LabelId(0), LabelId(1), LabelId(2)]);
        let collected: Vec<(LabelId, &str)> = t.iter().collect();
        assert_eq!(
            collected,
            vec![(LabelId(0), "a"), (LabelId(1), "b"), (LabelId(2), "c")]
        );
    }

    #[test]
    fn labels_are_case_sensitive() {
        let mut t = LabelTable::new();
        assert_ne!(t.intern("Article"), t.intern("article"));
    }
}
