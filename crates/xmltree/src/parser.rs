//! A hand-rolled, dependency-free XML parser.
//!
//! The paper parses DBLP and XMark with Xerces; no XML crate is on this
//! workspace's offline whitelist, so we implement the subset of XML 1.0
//! that those corpora (and our generators) actually use:
//!
//! * elements with attributes (single- or double-quoted),
//! * character data with the five predefined entities plus decimal and
//!   hexadecimal character references,
//! * CDATA sections,
//! * comments and processing instructions (skipped),
//! * an XML declaration and an (unparsed, brace-free) DOCTYPE (skipped),
//! * empty-element tags `<a/>`.
//!
//! Namespaces are treated literally (`dblp:title` is just a label), which
//! matches how the paper treats labels as opaque strings.
//!
//! The parser is a single-pass recursive-descent scanner over the input
//! bytes. Text nodes are attached to their parent element (the paper's
//! model folds text into the element; see `tree.rs`).

use crate::error::{ParseError, ParseErrorKind};
use crate::tree::{Attribute, NodeId, XmlTree};

/// Parses an XML document into an [`XmlTree`].
pub fn parse(input: &str) -> Result<XmlTree, ParseError> {
    Parser::new(input).parse_document()
}

/// Reads and parses an XML file.
///
/// I/O failures are surfaced separately from parse failures so callers
/// can distinguish a missing corpus from a malformed one.
pub fn parse_file(path: &std::path::Path) -> Result<XmlTree, ParseFileError> {
    let text = std::fs::read_to_string(path).map_err(ParseFileError::Io)?;
    parse(&text).map_err(ParseFileError::Parse)
}

/// Error of [`parse_file`].
#[derive(Debug)]
pub enum ParseFileError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The contents are not well-formed XML.
    Parse(ParseError),
}

impl std::fmt::Display for ParseFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseFileError::Io(e) => write!(f, "cannot read file: {e}"),
            ParseFileError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseFileError {}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    // -- error helpers ------------------------------------------------

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        self.error_at(self.pos, kind)
    }

    fn error_at(&self, offset: usize, kind: ParseErrorKind) -> ParseError {
        let prefix = &self.input[..offset.min(self.input.len())];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = prefix.rfind('\n').map_or(offset + 1, |nl| offset - nl);
        ParseError {
            kind,
            offset,
            line,
            column,
        }
    }

    // -- low-level scanning --------------------------------------------

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &'static str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            match self.input[self.pos..].chars().next() {
                Some(found) => {
                    Err(self.error(ParseErrorKind::UnexpectedChar { expected: s, found }))
                }
                None => Err(self.error(ParseErrorKind::UnexpectedEof(s))),
            }
        }
    }

    /// Skips until after the first occurrence of `delim`.
    fn skip_until(&mut self, delim: &str, what: &'static str) -> Result<(), ParseError> {
        match self.input[self.pos..].find(delim) {
            Some(i) => {
                self.bump(i + delim.len());
                Ok(())
            }
            None => Err(self.error(ParseErrorKind::UnexpectedEof(what))),
        }
    }

    // -- document structure ---------------------------------------------

    fn parse_document(mut self) -> Result<XmlTree, ParseError> {
        let mut tree = XmlTree::new();
        self.skip_prolog()?;
        if self.peek() != Some(b'<') {
            return Err(self.error(ParseErrorKind::NoRootElement));
        }
        self.parse_element(&mut tree, None)?;
        // Only misc (whitespace / comments / PIs) may follow the root.
        loop {
            self.skip_whitespace();
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.starts_with("<!--") {
                self.bump(4);
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<?") {
                self.bump(2);
                self.skip_until("?>", "processing instruction")?;
            } else {
                return Err(self.error(ParseErrorKind::TrailingContent));
            }
        }
        if tree.is_empty() {
            return Err(self.error(ParseErrorKind::NoRootElement));
        }
        Ok(tree)
    }

    /// Skips the XML declaration, DOCTYPE, comments, and PIs before the
    /// root element.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.bump(2);
                self.skip_until("?>", "xml declaration")?;
            } else if self.starts_with("<!--") {
                self.bump(4);
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Internal subsets with [..] are rare in our corpora; we
                // support them by bracket counting.
                self.bump("<!DOCTYPE".len());
                let mut depth = 0usize;
                loop {
                    match self.peek() {
                        Some(b'[') => {
                            depth += 1;
                            self.pos += 1;
                        }
                        Some(b']') => {
                            depth = depth.saturating_sub(1);
                            self.pos += 1;
                        }
                        Some(b'>') if depth == 0 => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                        None => return Err(self.error(ParseErrorKind::UnexpectedEof("DOCTYPE"))),
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    // -- elements -------------------------------------------------------

    /// Parses one element **and its whole subtree** iteratively (an
    /// explicit stack instead of recursion, so document depth is bounded
    /// by heap, not thread stack).
    fn parse_element(
        &mut self,
        tree: &mut XmlTree,
        parent: Option<NodeId>,
    ) -> Result<NodeId, ParseError> {
        // (node, name, accumulated text) per open element.
        let mut stack: Vec<(NodeId, String, String)> = Vec::new();
        let root = self.parse_open_tag(tree, parent, &mut stack)?;
        while !stack.is_empty() {
            if self.pos >= self.bytes.len() {
                return Err(self.error(ParseErrorKind::UnexpectedEof("element content")));
            }
            if self.starts_with("</") {
                self.bump(2);
                let close_start = self.pos;
                let close = self.parse_name()?;
                let (id, open_name, text) = stack.pop().expect("non-empty stack");
                if close != open_name {
                    return Err(self.error_at(
                        close_start,
                        ParseErrorKind::MismatchedCloseTag {
                            open: open_name,
                            close,
                        },
                    ));
                }
                self.skip_whitespace();
                self.expect(">")?;
                let trimmed = normalize_text(&text);
                if !trimmed.is_empty() {
                    tree.node_mut(id).text = Some(trimmed);
                }
            } else if self.starts_with("<!--") {
                self.bump(4);
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<![CDATA[") {
                self.bump("<![CDATA[".len());
                let start = self.pos;
                self.skip_until("]]>", "CDATA section")?;
                let literal = &self.input[start..self.pos - 3];
                stack
                    .last_mut()
                    .expect("non-empty stack")
                    .2
                    .push_str(literal);
            } else if self.starts_with("<?") {
                self.bump(2);
                self.skip_until("?>", "processing instruction")?;
            } else if self.peek() == Some(b'<') {
                let parent_id = stack.last().expect("non-empty stack").0;
                self.parse_open_tag(tree, Some(parent_id), &mut stack)?;
            } else {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let decoded = self.decode_entities(&self.input[start..self.pos], start)?;
                stack
                    .last_mut()
                    .expect("non-empty stack")
                    .2
                    .push_str(&decoded);
            }
        }
        Ok(root)
    }

    /// Parses `<name attrs…>` or `<name attrs…/>`, creating the node. The
    /// element is pushed on `stack` unless it was self-closing.
    fn parse_open_tag(
        &mut self,
        tree: &mut XmlTree,
        parent: Option<NodeId>,
        stack: &mut Vec<(NodeId, String, String)>,
    ) -> Result<NodeId, ParseError> {
        self.expect("<")?;
        let name_start = self.pos;
        let name = self.parse_name()?;
        let attributes = self.parse_attributes(&name, name_start)?;

        let label = tree.intern_label(&name);
        let id = tree.push_node(label, parent, None, attributes);

        self.skip_whitespace();
        if self.starts_with("/>") {
            self.bump(2);
            return Ok(id);
        }
        self.expect(">")?;
        stack.push((id, name, String::new()));
        Ok(id)
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            let snippet: String = self.input[start..].chars().take(8).collect();
            return Err(self.error_at(start, ParseErrorKind::BadName(snippet)));
        }
        let name = &self.input[start..self.pos];
        if name.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.') {
            return Err(self.error_at(start, ParseErrorKind::BadName(name.to_owned())));
        }
        Ok(name.to_owned())
    }

    fn parse_attributes(
        &mut self,
        _element: &str,
        _element_offset: usize,
    ) -> Result<Vec<Attribute>, ParseError> {
        let mut attrs: Vec<Attribute> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(attrs),
                _ => {}
            }
            let name = self.parse_name()?;
            if attrs.iter().any(|a| a.name == name) {
                return Err(self.error(ParseErrorKind::DuplicateAttribute(name)));
            }
            self.skip_whitespace();
            self.expect("=")?;
            self.skip_whitespace();
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => q,
                Some(_) => {
                    let found = self.input[self.pos..].chars().next().unwrap_or('\0');
                    return Err(self.error(ParseErrorKind::UnexpectedChar {
                        expected: "quote",
                        found,
                    }));
                }
                None => return Err(self.error(ParseErrorKind::UnexpectedEof("attribute value"))),
            };
            self.bump(1);
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == quote {
                    break;
                }
                self.pos += 1;
            }
            if self.peek() != Some(quote) {
                return Err(self.error(ParseErrorKind::UnexpectedEof("attribute value")));
            }
            let raw = &self.input[start..self.pos];
            self.bump(1);
            let value = self.decode_entities(raw, start)?;
            attrs.push(Attribute { name, value });
        }
    }

    // -- entities ---------------------------------------------------------

    fn decode_entities(&self, raw: &str, base_offset: usize) -> Result<String, ParseError> {
        if !raw.contains('&') {
            return Ok(raw.to_owned());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        let mut consumed = 0usize;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            let after = &rest[amp + 1..];
            let semi = after.find(';').ok_or_else(|| {
                self.error_at(
                    base_offset + consumed + amp,
                    ParseErrorKind::UnknownEntity(after.chars().take(10).collect()),
                )
            })?;
            let name = &after[..semi];
            let decoded = match name {
                "lt" => '<',
                "gt" => '>',
                "amp" => '&',
                "apos" => '\'',
                "quot" => '"',
                _ if name.starts_with('#') => {
                    let code = &name[1..];
                    let value = if let Some(hex) = code.strip_prefix(['x', 'X']) {
                        u32::from_str_radix(hex, 16)
                    } else {
                        code.parse::<u32>()
                    };
                    value.ok().and_then(char::from_u32).ok_or_else(|| {
                        self.error_at(
                            base_offset + consumed + amp,
                            ParseErrorKind::BadCharReference(code.to_owned()),
                        )
                    })?
                }
                _ => {
                    return Err(self.error_at(
                        base_offset + consumed + amp,
                        ParseErrorKind::UnknownEntity(name.to_owned()),
                    ))
                }
            };
            out.push(decoded);
            let step = amp + 1 + semi + 1;
            consumed += step;
            rest = &rest[step..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

/// Collapses runs of whitespace to single spaces and trims the ends —
/// the text normalization both corpora expect (indentation whitespace in
/// pretty-printed XML is not content).
fn normalize_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_space = true; // leading whitespace is dropped
    for c in text.chars() {
        if c.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(c);
            in_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let t = parse("<a/>").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.label_name(t.root()), "a");
    }

    #[test]
    fn parses_nested_elements_with_text() {
        let t = parse("<pub><article><title>XML keyword search</title></article></pub>").unwrap();
        assert_eq!(t.len(), 3);
        let title = t.node_by_dewey(&"0.0.0".parse().unwrap()).unwrap();
        assert_eq!(t.label_name(title), "title");
        assert_eq!(t.node(title).text.as_deref(), Some("XML keyword search"));
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let t = parse(r#"<item id="x7" kind='auction'/>"#).unwrap();
        let attrs = &t.node(t.root()).attributes;
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].name, "id");
        assert_eq!(attrs[0].value, "x7");
        assert_eq!(attrs[1].value, "auction");
    }

    #[test]
    fn skips_prolog_comments_pis_doctype() {
        let src = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- generated -->
<!DOCTYPE dblp SYSTEM "dblp.dtd">
<?style sheet?>
<dblp><article/></dblp>
<!-- trailer -->"#;
        let t = parse(src).unwrap();
        assert_eq!(t.label_name(t.root()), "dblp");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn doctype_with_internal_subset() {
        let src = "<!DOCTYPE note [ <!ELEMENT note (#PCDATA)> ]><note>hi</note>";
        let t = parse(src).unwrap();
        assert_eq!(t.node(t.root()).text.as_deref(), Some("hi"));
    }

    #[test]
    fn decodes_predefined_entities_and_char_refs() {
        let t = parse("<a>f&amp;b &lt;x&gt; &#65;&#x42; &quot;q&quot; &apos;s&apos;</a>").unwrap();
        assert_eq!(
            t.node(t.root()).text.as_deref(),
            Some("f&b <x> AB \"q\" 's'")
        );
    }

    #[test]
    fn decodes_entities_in_attributes() {
        let t = parse(r#"<a title="R&amp;D &#x2014; lab"/>"#).unwrap();
        assert_eq!(t.node(t.root()).attributes[0].value, "R&D \u{2014} lab");
    }

    #[test]
    fn cdata_is_literal() {
        let t = parse("<a><![CDATA[<not> &a; tag]]></a>").unwrap();
        assert_eq!(t.node(t.root()).text.as_deref(), Some("<not> &a; tag"));
    }

    #[test]
    fn comments_inside_content_skipped() {
        let t = parse("<a>one <!-- skip <b> --> two</a>").unwrap();
        assert_eq!(t.node(t.root()).text.as_deref(), Some("one two"));
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let t = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(t.node(t.root()).text, None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn text_interleaved_with_children_concatenated() {
        let t = parse("<a>alpha<b/>beta<c/>gamma</a>").unwrap();
        assert_eq!(t.node(t.root()).text.as_deref(), Some("alphabetagamma"));
    }

    #[test]
    fn mismatched_close_tag_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::MismatchedCloseTag { .. }
        ));
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnknownEntity(ref n) if n == "nbsp"));
    }

    #[test]
    fn bad_char_reference_rejected() {
        let err = parse("<a>&#xZZ;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadCharReference(_)));
    }

    #[test]
    fn trailing_content_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn truncated_input_rejected() {
        for src in ["<a>", "<a", "<a attr=", "<a><b>text", "<!-- never closed"] {
            assert!(parse(src).is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(ref n) if n == "x"));
    }

    #[test]
    fn error_positions_are_line_column() {
        let err = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn namespaceish_names_accepted() {
        let t =
            parse("<dblp:article xmlns:dblp=\"urn:x\"><dblp:title>t</dblp:title></dblp:article>")
                .unwrap();
        assert_eq!(t.label_name(t.root()), "dblp:article");
    }

    #[test]
    fn deep_nesting_is_linear_not_recursive_blowup() {
        // 20k-deep documents parse fine only if recursion depth is managed;
        // parse_element recurses per depth so keep this moderate but real.
        let depth = 2_000;
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("<d>");
        }
        for _ in 0..depth {
            src.push_str("</d>");
        }
        let t = parse(&src).unwrap();
        assert_eq!(t.len(), depth);
    }
}

#[cfg(test)]
mod file_tests {
    use super::*;

    #[test]
    fn parse_file_round_trip() {
        let dir = std::env::temp_dir().join("xks-xmltree-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.xml");
        std::fs::write(&path, "<a><b>text</b></a>").unwrap();
        let tree = parse_file(&path).unwrap();
        assert_eq!(tree.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_file_distinguishes_io_from_parse_errors() {
        let missing = std::path::Path::new("/definitely/not/here.xml");
        assert!(matches!(parse_file(missing), Err(ParseFileError::Io(_))));

        let dir = std::env::temp_dir().join("xks-xmltree-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.xml");
        std::fs::write(&path, "<a><b></a>").unwrap();
        assert!(matches!(parse_file(&path), Err(ParseFileError::Parse(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
