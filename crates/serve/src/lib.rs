//! # xks-serve — the resident HTTP query server
//!
//! Wraps a [`validrtf::engine::SearchEngine`] (any backend: in-memory,
//! monolithic `.xks`, sharded `.xksm`, or a mutable corpus) in a
//! hand-rolled HTTP/1.1 server over [`std::net::TcpListener`] — no
//! external dependencies, same spirit as the hand-rolled JSON in
//! `xks-store`. `xks serve` is the CLI front; docs/SERVER.md is the
//! protocol spec.
//!
//! The serving model is a fixed worker pool behind a **bounded
//! admission queue**:
//!
//! * the acceptor thread admits connections into the queue; once the
//!   queue holds `queue_depth` waiting connections every further
//!   connection is **shed** with `429 Too Many Requests` +
//!   `Retry-After` before it can occupy any worker;
//! * each worker serves one connection at a time (HTTP keep-alive:
//!   several sequential requests per connection) with warm pooled
//!   [`validrtf::QueryContext`]s inside the shared engine;
//! * every `/search` request can carry a **deadline**
//!   (`request_timeout`): the budget starts at connection admission,
//!   so time spent queued counts, and expiry surfaces as `503` with a
//!   partial-stats JSON body (the engine checks between pipeline
//!   stages — see `SearchRequest::deadline_at`);
//! * **graceful shutdown** ([`ShutdownHandle::shutdown`], or
//!   SIGINT/SIGTERM when [`ServerConfig::watch_signals`] is set) stops
//!   accepting, serves every already-admitted request to completion
//!   under a drain deadline, and [`Server::run`] returns a final
//!   [`ServerReport`].
//!
//! Framing is deliberately strict and bounded: oversized heads are
//! `431`, oversized bodies `413`, malformed request lines and headers
//! `400`, chunked transfer `501`, a stalled sender `408` — and a torn
//! or disconnected peer is a clean connection close, never a panic or
//! a hung worker (`tests/hostile_http.rs` is the proof).
//!
//! ```no_run
//! use validrtf::engine::SearchEngine;
//! use xks_serve::{Server, ServerConfig};
//!
//! let tree = xks_xmltree::parse("<a><b>hello</b></a>").unwrap();
//! let server = Server::bind(SearchEngine::new(tree), ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! let report = server.run().unwrap();
//! println!("served {} request(s)", report.served);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod api;
pub mod client;
mod http;
mod metrics;
mod queue;
mod server;
pub mod signals;

pub use http::{HttpError, Limits, Request};
pub use metrics::preregister_server_metrics;
pub use server::{Server, ServerConfig, ServerReport, ShutdownHandle};
