//! The server proper: acceptor, bounded admission, worker pool,
//! deadlines, keep-alive, and graceful drain.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use validrtf::engine::SearchEngine;
use xks_obs::MetricSource;

use crate::api::Handlers;
use crate::http::{self, Limits, ReadOutcome};
use crate::metrics::{preregister_server_metrics, ServerMetrics};
use crate::queue::Bounded;
use crate::signals;

/// Everything tunable about a [`Server`]; `Default` is the CLI's
/// defaults (docs/SERVER.md documents each knob's wire behavior).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads — the number of requests in service at once.
    pub workers: usize,
    /// Connections allowed to *wait* beyond the in-service ones;
    /// further connections are shed with `429`.
    pub queue_depth: usize,
    /// Per-request wall-clock budget, measured from connection
    /// admission (queue time counts). `None` = unbounded.
    pub request_timeout: Option<Duration>,
    /// How long drain waits for in-flight work before `run` gives up
    /// and reports an unclean drain.
    pub drain_timeout: Duration,
    /// Keep-alive idle limit and framing size caps.
    pub limits: Limits,
    /// When set, SIGINT/SIGTERM (via [`signals::install`]) trigger the
    /// same graceful drain as [`ShutdownHandle::shutdown`].
    pub watch_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 16)),
            queue_depth: 64,
            request_timeout: Some(Duration::from_secs(10)),
            drain_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            watch_signals: false,
        }
    }
}

/// What one `run` served, for the final log line.
#[derive(Debug, Clone, Copy)]
pub struct ServerReport {
    /// Responses written (every status).
    pub served: u64,
    /// Connections shed with `429` at admission.
    pub shed: u64,
    /// Requests cut by their deadline (`503`).
    pub timeouts: u64,
    /// False when the drain deadline passed with workers still busy.
    pub drained_cleanly: bool,
}

/// Triggers a graceful drain from another thread (or a test).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Stop accepting, serve everything admitted, return from `run`.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// One admitted connection, stamped so the first request's deadline
/// budget includes its time in the queue.
struct Admitted {
    stream: TcpStream,
    at: Instant,
}

/// A bound, not-yet-running server. [`Server::bind`] claims the socket
/// (so `local_addr` is real immediately); [`Server::run`] blocks
/// serving until shutdown.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    handlers: Handlers,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
}

impl Server {
    /// Binds `config.addr` and prepares the worker state. The engine
    /// moves behind an `Arc` — its warm `QueryContext` pool is shared
    /// by all workers.
    pub fn bind(engine: SearchEngine, config: ServerConfig) -> std::io::Result<Server> {
        preregister_server_metrics();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            config,
            handlers: Handlers {
                engine: Arc::new(engine),
                collectors: Vec::new(),
                metrics: ServerMetrics::new(),
            },
            shutdown: Arc::new(AtomicBool::new(false)),
            served: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Adds a `/stats` collector: `source`'s metrics appear in the
    /// snapshot under `prefix` (pass e.g. `"index."` — trailing dot
    /// included), exactly like `xks stats --index`.
    #[must_use]
    pub fn with_collector(
        mut self,
        prefix: impl Into<String>,
        source: Arc<dyn MetricSource + Send + Sync>,
    ) -> Server {
        self.handlers.collectors.push((prefix.into(), source));
        self
    }

    /// The address actually bound (resolves port `0`).
    ///
    /// # Panics
    /// Never in practice: the listener is already bound.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// A handle that triggers graceful shutdown from anywhere.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serves until shutdown (handle or watched signal), then drains:
    /// admission stops, every admitted connection finishes its
    /// in-flight request (responses carry `Connection: close`), and
    /// the report is returned. Total drain time is bounded by
    /// `drain_timeout`.
    pub fn run(self) -> std::io::Result<ServerReport> {
        let Server {
            listener,
            config,
            handlers,
            shutdown,
            served,
        } = self;
        if config.watch_signals {
            signals::install();
        }
        let metrics = ServerMetrics::new();
        let queue = Arc::new(Bounded::<Admitted>::new(
            config.queue_depth.max(1),
            metrics.queue_depth.clone(),
        ));
        let draining = Arc::new(AtomicBool::new(false));
        let handlers = Arc::new(handlers);

        let workers: Vec<_> = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let draining = Arc::clone(&draining);
                let handlers = Arc::clone(&handlers);
                let config = config.clone();
                let served = Arc::clone(&served);
                std::thread::Builder::new()
                    .name(format!("xks-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(conn) = queue.pop() {
                            serve_connection(conn, &handlers, &config, &draining, &served);
                        }
                    })
                    .expect("worker thread spawns")
            })
            .collect();

        // The acceptor loop — this thread. Nonblocking accept + short
        // sleep keeps shutdown latency in the tens of milliseconds
        // without a wakeup pipe.
        let shed = metrics.shed_429.clone();
        loop {
            if shutdown.load(Ordering::SeqCst) || (config.watch_signals && signals::signaled()) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let admitted = Admitted {
                        stream,
                        at: Instant::now(),
                    };
                    if let Err(rejected) = queue.try_push(admitted) {
                        shed.inc();
                        metrics.count_status(429);
                        shed_connection(rejected.stream, &served);
                    } else {
                        metrics.connections.inc();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: stop admitting, let workers finish what was admitted.
        draining.store(true, Ordering::SeqCst);
        queue.close();
        drop(listener);
        let deadline = Instant::now() + config.drain_timeout;
        let mut drained_cleanly = true;
        for worker in workers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if !join_with_deadline(worker, remaining) {
                drained_cleanly = false;
            }
        }
        Ok(ServerReport {
            served: served.load(Ordering::SeqCst),
            shed: shed.get(),
            timeouts: handlers.metrics.timeouts_503.get(),
            drained_cleanly,
        })
    }
}

/// Joins `worker` but gives up after `deadline` (threads cannot be
/// killed; an unclean drain is reported, and the process exit reaps
/// the stragglers). Returns true when the worker finished in time.
fn join_with_deadline(worker: std::thread::JoinHandle<()>, deadline: Duration) -> bool {
    let end = Instant::now() + deadline;
    while !worker.is_finished() {
        if Instant::now() >= end {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    worker.join().is_ok()
}

/// The `429` written by the acceptor to a connection the queue
/// refused. A short write timeout keeps a slow-reading client from
/// stalling admission.
fn shed_connection(mut stream: TcpStream, served: &AtomicU64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let body = b"{\"error\":\"overloaded\",\"detail\":\"admission queue is full\"}";
    let _ = http::write_response(
        &mut stream,
        429,
        "Too Many Requests",
        body,
        &[("Retry-After", "1".to_owned())],
        true,
    );
    served.fetch_add(1, Ordering::SeqCst);
}

/// One worker serving one admitted connection to completion:
/// keep-alive loop, per-request deadlines, typed framing errors, and
/// drain awareness between requests.
fn serve_connection(
    conn: Admitted,
    handlers: &Handlers,
    config: &ServerConfig,
    draining: &AtomicBool,
    served: &AtomicU64,
) {
    let Admitted { mut stream, at } = conn;
    let _ = stream.set_read_timeout(Some(http::POLL_TICK));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut carry = Vec::new();
    let mut first_request = true;
    loop {
        let is_draining = || draining.load(Ordering::SeqCst);
        match http::read_request(&mut stream, &mut carry, &config.limits, &is_draining) {
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Request(request)) => {
                let handled_at = Instant::now();
                handlers.metrics.requests.inc();
                // The first request's budget starts at admission so
                // queue time counts; later keep-alive requests start
                // at their own arrival.
                let budget_start = if first_request { at } else { handled_at };
                first_request = false;
                let deadline = config.request_timeout.map(|t| budget_start + t);
                let reply = handlers.handle(&request, deadline, is_draining());
                let close = is_draining() || request.wants_close();
                handlers.metrics.count_status(reply.status);
                handlers
                    .metrics
                    .request_ns
                    .record_duration(handled_at.elapsed());
                let extra: Vec<(&str, String)> =
                    reply.extra.iter().map(|(n, v)| (*n, v.clone())).collect();
                let wrote = http::write_response(
                    &mut stream,
                    reply.status,
                    reply.reason,
                    reply.body.as_bytes(),
                    &extra,
                    close,
                );
                served.fetch_add(1, Ordering::SeqCst);
                if wrote.is_err() || close {
                    break;
                }
            }
            Err(e) => {
                // Typed framing failure: answer when the wire allows,
                // then close. Never a panic, never a stuck worker.
                if let Some((status, reason)) = e.status() {
                    handlers.metrics.requests.inc();
                    handlers.metrics.count_status(status);
                    let body = format!(
                        "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                        e.tag(),
                        e.to_string().replace('"', "'")
                    );
                    let _ = http::write_response(
                        &mut stream,
                        status,
                        reason,
                        body.as_bytes(),
                        &[],
                        true,
                    );
                    served.fetch_add(1, Ordering::SeqCst);
                }
                break;
            }
        }
    }
    handlers.metrics.connections.add_signed(-1);
}
