//! The bounded admission queue between the acceptor and the workers.
//!
//! A plain `Mutex<VecDeque>` + `Condvar` MPMC queue with one twist:
//! [`Bounded::try_push`] never blocks — a full (or closed) queue hands
//! the item straight back, which is exactly the load-shedding decision
//! the acceptor turns into a `429`. Lock poisoning recovers like every
//! other lock in the workspace (`xks_obs::count_poison_recovery`).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use xks_obs::Gauge;

/// A bounded MPMC queue with non-blocking admission and blocking pops.
pub(crate) struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
    depth: Gauge,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` waiting items, mirroring
    /// its depth into `depth` (the `server.queue_depth` gauge).
    pub fn new(capacity: usize, depth: Gauge) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
            depth,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e: PoisonError<_>| {
            xks_obs::count_poison_recovery();
            e.into_inner()
        })
    }

    /// Admits `item`, or hands it back when the queue is full or
    /// closed — the caller sheds it.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.depth.set(inner.items.len() as u64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (`Some`) or the queue is
    /// closed *and* drained (`None`). Closing never discards admitted
    /// items: workers keep popping until the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.depth.set(inner.items.len() as u64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e: PoisonError<_>| {
                xks_obs::count_poison_recovery();
                e.into_inner()
            });
        }
    }

    /// Stops admission and wakes every blocked popper. Items already
    /// admitted are still handed out.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn gauge() -> Gauge {
        xks_obs::Registry::new().gauge("test.depth")
    }

    #[test]
    fn sheds_when_full_and_drains_after_close() {
        let q = Bounded::new(2, gauge());
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "third item is shed");
        q.close();
        assert_eq!(q.try_push(4), Err(4), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1), "admitted items survive the close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn close_unblocks_waiting_workers() {
        let q = Arc::new(Bounded::<u32>::new(1, gauge()));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
