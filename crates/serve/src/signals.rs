//! Minimal SIGINT/SIGTERM notification — a hand-rolled `signal(2)`
//! binding (libc is already linked; this adds no dependency), setting
//! one atomic flag the acceptor loop polls. That flag is the whole
//! "POST /shutdown" surface: delivery is the same graceful drain a
//! [`crate::ShutdownHandle`] triggers.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been delivered (sticky).
#[must_use]
pub fn signaled() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Test hook: raise the flag as if a signal had arrived.
pub fn raise() {
    SIGNALED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod unix {
    use super::SIGNALED;
    use std::sync::atomic::Ordering;

    type Handler = extern "C" fn(i32);

    extern "C" {
        // POSIX `signal(2)` from the already-linked libc. The handler
        // only stores to an atomic — async-signal-safe.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT (2) and SIGTERM (15) to the sticky flag.
    pub fn install() {
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }
}

#[cfg(unix)]
pub use unix::install;

/// No-op on platforms without POSIX signals; [`signaled`] then only
/// reflects [`raise`].
#[cfg(not(unix))]
pub fn install() {}
