//! Hand-rolled HTTP/1.1 framing: bounded request reading with typed
//! errors, and response writing.
//!
//! The reader is written against hostile input. Every limit is
//! enforced *while* reading (an attacker cannot make the server buffer
//! more than `max_head_bytes + max_body_bytes` per connection), every
//! malformed shape maps to a typed [`HttpError`] with a definite
//! status code, and a peer that disappears mid-request is a clean
//! close. Reads run with a short socket timeout in a poll loop so a
//! worker can notice server drain even while parked on an idle
//! keep-alive connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Socket-level read timeout of one poll tick. Short enough that a
/// draining server unparks its workers promptly; long enough to cost
/// nothing in the steady state.
pub(crate) const POLL_TICK: Duration = Duration::from_millis(100);

/// How long a sender may take to deliver a request it has started
/// (first byte to final body byte) before the server answers `408`.
const READ_DEADLINE: Duration = Duration::from_secs(10);

/// Size and time limits the request reader enforces.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the request line + headers, bytes (`431` beyond).
    pub max_head_bytes: usize,
    /// Cap on `Content-Length` (`413` beyond; the body is never read).
    pub max_body_bytes: usize,
    /// How long a keep-alive connection may sit with no request before
    /// the server closes it.
    pub idle_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + optional query string), as sent.
    pub target: String,
    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked for the connection to close after
    /// this response (`Connection: close`).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// What reading from a connection produced.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or went idle past the limit, or the server is
    /// draining) before sending any byte of a next request — close the
    /// connection without a response.
    Closed,
}

/// Typed request-framing failures, each with a definite wire status
/// (or none, when the peer is gone and no response can be delivered).
#[derive(Debug)]
pub enum HttpError {
    /// Request line + headers exceeded [`Limits::max_head_bytes`].
    HeadTooLarge {
        /// The configured cap the head overran.
        limit: usize,
    },
    /// `Content-Length` exceeded [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// The configured cap the declared body overran.
        limit: usize,
    },
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A header line has no `:` separator or a non-ASCII name.
    BadHeader,
    /// `Content-Length` is not a decimal integer.
    BadContentLength,
    /// `Transfer-Encoding` (chunked bodies) is not supported.
    UnsupportedTransferEncoding,
    /// The peer stopped sending mid-request (torn head or body).
    Truncated,
    /// The peer kept the connection open but fed bytes slower than the
    /// read deadline allows.
    SlowRequest,
    /// Transport failure.
    Io(std::io::Error),
}

impl HttpError {
    /// The status line to answer with, or `None` when the connection
    /// is beyond responding (peer gone / transport dead).
    #[must_use]
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::HeadTooLarge { .. } => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge { .. } => Some((413, "Content Too Large")),
            HttpError::BadRequestLine | HttpError::BadHeader | HttpError::BadContentLength => {
                Some((400, "Bad Request"))
            }
            HttpError::UnsupportedTransferEncoding => Some((501, "Not Implemented")),
            HttpError::SlowRequest => Some((408, "Request Timeout")),
            HttpError::Truncated | HttpError::Io(_) => None,
        }
    }

    /// The machine-readable `error` tag of the JSON body.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            HttpError::HeadTooLarge { .. } => "head_too_large",
            HttpError::BodyTooLarge { .. } => "body_too_large",
            HttpError::BadRequestLine => "bad_request_line",
            HttpError::BadHeader => "bad_header",
            HttpError::BadContentLength => "bad_content_length",
            HttpError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            HttpError::Truncated => "truncated",
            HttpError::SlowRequest => "slow_request",
            HttpError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::BadContentLength => write!(f, "malformed Content-Length"),
            HttpError::UnsupportedTransferEncoding => {
                write!(
                    f,
                    "Transfer-Encoding is not supported (send Content-Length)"
                )
            }
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::SlowRequest => write!(f, "request arrived too slowly"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// True for the error kinds a timed-out socket read raises.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream`. `carry` holds bytes already read
/// past the previous request on this connection (HTTP pipelining) and
/// is left holding any bytes past *this* request. `draining()` is
/// polled between read ticks: when it turns true before a request has
/// started, the read gives up cleanly so the worker can exit.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: &Limits,
    draining: &dyn Fn() -> bool,
) -> Result<ReadOutcome, HttpError> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    let started = Instant::now();
    let mut first_byte_at = if buf.is_empty() { None } else { Some(started) };
    let mut chunk = [0u8; 4096];

    // Phase 1: the head, ended by CRLFCRLF.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        match poll_read(
            stream,
            &mut chunk,
            &mut first_byte_at,
            started,
            limits,
            draining,
        )? {
            Polled::Bytes(n) => buf.extend_from_slice(&chunk[..n]),
            Polled::Idle => return Ok(ReadOutcome::Closed),
            Polled::PeerClosed => {
                return if buf.is_empty() {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err(HttpError::Truncated)
                }
            }
        }
    };
    if head_end > limits.max_head_bytes {
        return Err(HttpError::HeadTooLarge {
            limit: limits.max_head_bytes,
        });
    }

    let (mut request, body_len) = parse_head(&buf[..head_end])?;
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body_bytes,
        });
    }

    // Phase 2: exactly `body_len` body bytes (the head read may have
    // pulled some or all of them, or bytes of a pipelined successor).
    let body_start = head_end + 4;
    while buf.len() < body_start + body_len {
        match poll_read(
            stream,
            &mut chunk,
            &mut first_byte_at,
            started,
            limits,
            draining,
        )? {
            Polled::Bytes(n) => buf.extend_from_slice(&chunk[..n]),
            // Mid-body disconnect or stall: the request can never
            // complete. (`Idle` cannot happen here: first_byte_at is
            // set, so a stall classifies as SlowRequest.)
            Polled::Idle | Polled::PeerClosed => return Err(HttpError::Truncated),
        }
    }
    request.body = buf[body_start..body_start + body_len].to_vec();
    // Bytes past this request belong to the next one (pipelining).
    *carry = buf.split_off(body_start + body_len);
    Ok(ReadOutcome::Request(request))
}

/// One poll-tick read result.
enum Polled {
    /// `n` fresh bytes.
    Bytes(usize),
    /// Nothing arrived and the idle limit (or drain) applies.
    Idle,
    /// Orderly peer close (`read` returned 0).
    PeerClosed,
}

fn poll_read(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    first_byte_at: &mut Option<Instant>,
    started: Instant,
    limits: &Limits,
    draining: &dyn Fn() -> bool,
) -> Result<Polled, HttpError> {
    loop {
        match stream.read(chunk) {
            Ok(0) => return Ok(Polled::PeerClosed),
            Ok(n) => {
                if first_byte_at.is_none() {
                    *first_byte_at = Some(Instant::now());
                }
                return Ok(Polled::Bytes(n));
            }
            Err(e) if is_timeout(&e) => match *first_byte_at {
                // A request is in flight: it must finish within the
                // read deadline no matter how slowly bytes trickle.
                Some(first) => {
                    if first.elapsed() > READ_DEADLINE {
                        return Err(HttpError::SlowRequest);
                    }
                }
                // Between requests: draining or idle expiry closes.
                None => {
                    if draining() || started.elapsed() > limits.idle_timeout {
                        return Ok(Polled::Idle);
                    }
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line + headers; returns the request (body still
/// empty) and the declared body length.
fn parse_head(head: &[u8]) -> Result<(Request, usize), HttpError> {
    // The head is the request line + headers; HTTP is ASCII here and
    // anything outside is malformed.
    let text = std::str::from_utf8(head).map_err(|_| HttpError::BadHeader)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequestLine);
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the split's trailing empty segment
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    let request = Request {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let body_len = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadContentLength)?,
    };
    Ok((request, body_len))
}

/// Writes one response. `extra` headers ride between the fixed ones
/// and the blank line (e.g. `Retry-After`).
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &[u8],
    extra: &[(&str, String)],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(text: &str) -> Result<(Request, usize), HttpError> {
        parse_head(text.as_bytes())
    }

    #[test]
    fn parses_minimal_request() {
        let (req, len) = head("GET /healthz HTTP/1.1\r\nHost: x").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(len, 0);
    }

    #[test]
    fn header_names_fold_to_lowercase() {
        let (req, len) = head("POST /search HTTP/1.1\r\nContent-Length: 12").unwrap();
        assert_eq!(len, 12);
        assert_eq!(req.header("content-length"), Some("12"));
    }

    #[test]
    fn rejects_malformed_shapes() {
        assert!(matches!(head("GARBAGE"), Err(HttpError::BadRequestLine)));
        assert!(matches!(
            head("GET /x HTTP/2.0"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            head("get /x HTTP/1.1"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            head("GET /x HTTP/1.1\r\nno-colon-here"),
            Err(HttpError::BadHeader)
        ));
        assert!(matches!(
            head("POST /x HTTP/1.1\r\nContent-Length: twelve"),
            Err(HttpError::BadContentLength)
        ));
        assert!(matches!(
            head("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked"),
            Err(HttpError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn every_status_is_definite() {
        assert_eq!(
            HttpError::HeadTooLarge { limit: 1 }.status().unwrap().0,
            431
        );
        assert_eq!(
            HttpError::BodyTooLarge { limit: 1 }.status().unwrap().0,
            413
        );
        assert_eq!(HttpError::BadRequestLine.status().unwrap().0, 400);
        assert_eq!(HttpError::SlowRequest.status().unwrap().0, 408);
        assert!(HttpError::Truncated.status().is_none());
    }
}
