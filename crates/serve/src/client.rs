//! A minimal blocking HTTP/1.1 client — just enough for the test
//! suites and the closed-loop load generator to talk to [`crate::Server`]
//! over real sockets without adding a dependency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, lower-cased headers, body bytes.
#[derive(Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Headers with lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First header value with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — test helper).
    #[must_use]
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// One keep-alive connection to a server. Dropping it closes the
/// socket.
pub struct Conn {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Conn {
    /// Connects with generous (30s) read/write timeouts so a hung
    /// server fails a test instead of wedging it.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            carry: Vec::new(),
        })
    }

    /// Sends one request and reads its response on this connection.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        self.send(method, path, body, false)?;
        self.read_response()
    }

    /// Sends raw bytes — for hostile-input tests that need torn or
    /// malformed wire data.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Shuts down the write half, simulating a client that disconnects
    /// mid-exchange.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    fn send(&mut self, method: &str, path: &str, body: &[u8], close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: xks\r\nContent-Length: {}\r\n",
            body.len()
        );
        if close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)
    }

    /// Reads one response (status line, headers, `Content-Length`
    /// body), leaving any pipelined surplus in the carry buffer.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut buf = std::mem::take(&mut self.carry);
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| bad("non-UTF-8 response head"))?
            .to_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines.filter(|l| !l.is_empty()) {
            let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            }
            headers.push((name, value));
        }
        let body_start = head_end + 4;
        while buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        self.carry = buf.split_off(body_start + content_length);
        let body = buf.split_off(body_start);
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// One-shot request on a fresh connection with `Connection: close` —
/// what the load generator and most tests use.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<Response> {
    let mut conn = Conn::connect(addr)?;
    conn.send(method, path, body, true)?;
    conn.read_response()
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}
