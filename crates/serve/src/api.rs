//! Route dispatch and the endpoint handlers — pure functions from a
//! parsed [`Request`] to a [`Reply`], so they unit-test without
//! sockets. The `/search` body schema and every error shape are
//! specified in docs/SERVER.md.

use std::sync::Arc;
use std::time::Instant;

use validrtf::engine::SearchEngine;
use validrtf::wire;
use validrtf::{RankWeights, SearchError, SearchRequest};
use xks_obs::{MetricSource, Snapshot};
use xks_store::json::{self, Value};

use crate::http::Request;
use crate::metrics::ServerMetrics;

/// A computed response, one write away from the wire.
pub(crate) struct Reply {
    pub status: u16,
    pub reason: &'static str,
    pub body: String,
    /// Extra headers (`Retry-After` on backpressure statuses).
    pub extra: Vec<(&'static str, String)>,
}

impl Reply {
    fn json(status: u16, reason: &'static str, value: &Value) -> Self {
        Reply {
            status,
            reason,
            body: json::to_string(value),
            extra: Vec::new(),
        }
    }

    fn error(status: u16, reason: &'static str, tag: &str, detail: String) -> Self {
        Reply::json(
            status,
            reason,
            &Value::Obj(wire::obj([
                ("error", Value::Str(tag.to_owned())),
                ("detail", Value::Str(detail)),
            ])),
        )
    }
}

/// Everything the handlers need besides the request itself.
pub(crate) struct Handlers {
    pub engine: Arc<SearchEngine>,
    pub collectors: Vec<(String, Arc<dyn MetricSource + Send + Sync>)>,
    pub metrics: ServerMetrics,
}

impl Handlers {
    /// Dispatches one request. `deadline` is the absolute per-request
    /// deadline (admission time + budget), already computed by the
    /// worker; `draining` flips `/healthz` to `503` so load balancers
    /// stop routing here during shutdown.
    pub fn handle(&self, request: &Request, deadline: Option<Instant>, draining: bool) -> Reply {
        match (request.method.as_str(), path_of(&request.target)) {
            ("GET", "/healthz") => self.healthz(draining),
            ("POST", "/search") => self.search(request, deadline),
            ("GET", "/stats") => self.stats(),
            (_, "/healthz" | "/search" | "/stats") => {
                let allow = if path_of(&request.target) == "/search" {
                    "POST"
                } else {
                    "GET"
                };
                let mut reply = Reply::error(
                    405,
                    "Method Not Allowed",
                    "method_not_allowed",
                    format!(
                        "{} does not accept {}",
                        path_of(&request.target),
                        request.method
                    ),
                );
                reply.extra.push(("Allow", allow.to_owned()));
                reply
            }
            _ => Reply::error(
                404,
                "Not Found",
                "not_found",
                format!("no route for {}", request.target),
            ),
        }
    }

    fn healthz(&self, draining: bool) -> Reply {
        if draining {
            Reply::json(
                503,
                "Service Unavailable",
                &Value::Obj(wire::obj([("status", Value::Str("draining".to_owned()))])),
            )
        } else {
            Reply::json(
                200,
                "OK",
                &Value::Obj(wire::obj([("status", Value::Str("ok".to_owned()))])),
            )
        }
    }

    /// `GET /stats`: the same `xks-obs/1` snapshot bytes `xks stats
    /// --index` prints — the global registry merged with the backend's
    /// cache counters under each collector's prefix.
    fn stats(&self) -> Reply {
        let mut snap: Snapshot = xks_obs::global().snapshot();
        for (prefix, source) in &self.collectors {
            source.collect_into(prefix, &mut snap);
        }
        Reply {
            status: 200,
            reason: "OK",
            body: snap.to_json(),
            extra: Vec::new(),
        }
    }

    /// `POST /search`: the JSON body maps onto a [`SearchRequest`],
    /// and the response body is byte-identical (modulo `timings_us`)
    /// to one element of `xks search --format json`'s `results` array
    /// — both render through [`validrtf::wire::response_json`].
    fn search(&self, request: &Request, deadline: Option<Instant>) -> Reply {
        let body = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => {
                return Reply::error(
                    400,
                    "Bad Request",
                    "bad_body",
                    "body is not UTF-8".to_owned(),
                )
            }
        };
        let parsed = match json::parse(body) {
            Ok(value) => value,
            Err(e) => {
                return Reply::error(400, "Bad Request", "bad_json", e.to_string());
            }
        };
        let search = match build_request(&parsed) {
            Ok(s) => s,
            Err(detail) => return Reply::error(400, "Bad Request", "bad_request", detail),
        };
        let mut engine_request = search.request;
        if let Some(deadline) = deadline {
            engine_request = engine_request.deadline_at(deadline);
        }
        match self.engine.execute(&engine_request) {
            Ok(response) => Reply::json(
                200,
                "OK",
                &wire::response_json(&self.engine, &engine_request, &response, search.limit),
            ),
            Err(SearchError::Timeout(timeout)) => {
                self.metrics.timeouts_503.inc();
                let mut reply =
                    Reply::json(503, "Service Unavailable", &wire::timeout_json(&timeout));
                reply.extra.push(("Retry-After", "1".to_owned()));
                reply
            }
            Err(e @ SearchError::Parse(_)) => {
                Reply::error(400, "Bad Request", "bad_query", e.to_string())
            }
            Err(e) => Reply::error(500, "Internal Server Error", "backend", e.to_string()),
        }
    }
}

/// The target's path component (everything before `?`).
fn path_of(target: &str) -> &str {
    target.split('?').next().unwrap_or(target)
}

#[derive(Debug)]
struct BuiltRequest {
    request: SearchRequest,
    limit: usize,
}

/// Maps the documented `/search` body onto a [`SearchRequest`].
/// Unknown fields are typed errors, not silent drops — a misspelled
/// `top_k` must not quietly run unbounded.
fn build_request(body: &Value) -> Result<BuiltRequest, String> {
    let obj = body.as_obj().ok_or("body must be a JSON object")?;
    for key in obj.keys() {
        if !matches!(
            key.as_str(),
            "query" | "algorithm" | "top_k" | "limit" | "rank" | "trace"
        ) {
            return Err(format!("unknown field {key:?}"));
        }
    }
    let query = obj
        .get("query")
        .ok_or("missing required field \"query\"")?
        .as_str()
        .ok_or("\"query\" must be a string")?;
    let algorithm = match obj.get("algorithm") {
        None => validrtf::engine::AlgorithmKind::ValidRtf,
        Some(v) => {
            let name = v.as_str().ok_or("\"algorithm\" must be a string")?;
            wire::parse_algorithm(name)
                .ok_or_else(|| format!("unknown algorithm {name:?} (valid|maxmatch|slca)"))?
        }
    };
    let mut request = SearchRequest::parse(query)
        .map_err(|e| format!("{e}"))?
        .algorithm(algorithm);
    if let Some(v) = obj.get("top_k") {
        let k = v
            .as_u64()
            .ok_or("\"top_k\" must be a non-negative integer")?;
        request = request.top_k(usize::try_from(k).map_err(|_| "\"top_k\" too large")?);
    }
    let limit = match obj.get("limit") {
        None => usize::MAX,
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or("\"limit\" must be a non-negative integer")?;
            usize::try_from(n).map_err(|_| "\"limit\" too large")?
        }
    };
    match obj.get("rank") {
        None => {}
        Some(Value::Bool(true)) => request = request.weights(RankWeights::default()),
        Some(Value::Bool(false)) => {}
        Some(_) => return Err("\"rank\" must be a boolean".to_owned()),
    }
    match obj.get("trace") {
        None => {}
        Some(Value::Bool(flag)) => request = request.trace(*flag),
        Some(_) => return Err("\"trace\" must be a boolean".to_owned()),
    }
    Ok(BuiltRequest { request, limit })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<BuiltRequest, String> {
        build_request(&json::parse(text).unwrap())
    }

    #[test]
    fn accepts_the_documented_fields() {
        let built = parse(
            "{\"query\":\"liu keyword\",\"algorithm\":\"maxmatch\",\
             \"top_k\":3,\"limit\":2,\"rank\":true,\"trace\":false}",
        )
        .unwrap();
        assert_eq!(built.limit, 2);
        assert_eq!(
            built.request.kind(),
            validrtf::engine::AlgorithmKind::MaxMatchRtf
        );
    }

    #[test]
    fn rejects_unknown_and_mistyped_fields() {
        assert!(parse("{\"query\":\"x\",\"topk\":3}")
            .unwrap_err()
            .contains("unknown field"));
        assert!(parse("{\"top_k\":3}").unwrap_err().contains("query"));
        assert!(parse("{\"query\":3}").unwrap_err().contains("string"));
        assert!(parse("{\"query\":\"x\",\"algorithm\":\"bm25\"}")
            .unwrap_err()
            .contains("unknown algorithm"));
        assert!(parse("{\"query\":\"x\",\"rank\":1}")
            .unwrap_err()
            .contains("boolean"));
    }
}
