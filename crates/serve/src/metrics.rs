//! The server's metric handles, pre-registered in the global registry
//! so a fresh `/stats` snapshot shows explicit zeros — "no shed
//! requests yet" is distinguishable from "not instrumented"
//! (docs/OBSERVABILITY.md lists the catalog).

use xks_obs::{Counter, Gauge, Histogram};

/// Every handle the serving path bumps. One instance per [`crate::Server`],
/// but all handles alias the process-global registry names, so `/stats`
/// and `xks stats` see the same numbers.
pub(crate) struct ServerMetrics {
    /// `http.requests` — requests fully parsed off the wire.
    pub requests: Counter,
    /// `http.responses_2xx`.
    pub responses_2xx: Counter,
    /// `http.responses_4xx` (including shed `429`s).
    pub responses_4xx: Counter,
    /// `http.responses_5xx` (including deadline `503`s).
    pub responses_5xx: Counter,
    /// `http.shed_429` — connections refused by the admission queue.
    pub shed_429: Counter,
    /// `http.timeouts_503` — requests cut by their deadline.
    pub timeouts_503: Counter,
    /// `server.queue_depth` — connections waiting for a worker, now.
    pub queue_depth: Gauge,
    /// `server.connections` — connections admitted and not yet closed.
    pub connections: Gauge,
    /// `http.request_ns` — wall clock from parsed request to written
    /// response (queueing before the first request excluded; it shows
    /// up in the deadline budget instead).
    pub request_ns: Histogram,
}

impl ServerMetrics {
    pub fn new() -> Self {
        let registry = xks_obs::global();
        ServerMetrics {
            requests: registry.counter("http.requests"),
            responses_2xx: registry.counter("http.responses_2xx"),
            responses_4xx: registry.counter("http.responses_4xx"),
            responses_5xx: registry.counter("http.responses_5xx"),
            shed_429: registry.counter("http.shed_429"),
            timeouts_503: registry.counter("http.timeouts_503"),
            queue_depth: registry.gauge("server.queue_depth"),
            connections: registry.gauge("server.connections"),
            request_ns: registry.histogram("http.request_ns"),
        }
    }

    /// Bumps the status-class counter for `status`.
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }
}

/// Registers every `http.*` / `server.*` metric (and the engine-side
/// `search.deadline_exceeded` counter) at zero. [`crate::Server::bind`]
/// calls this, so any process that ever constructed a server snapshots
/// the full catalog; call it directly to get the zeros without one.
pub fn preregister_server_metrics() {
    let _ = ServerMetrics::new();
    xks_obs::global().counter("search.deadline_exceeded");
}
