//! Admission control and graceful drain, proven over real sockets:
//! with `workers` in service and `queue_depth` waiting, connection
//! `workers + queue_depth + 1` is shed with `429 Retry-After`, every
//! admitted connection still completes correctly, and a drain delivers
//! every in-flight response before `run` returns.

use std::time::Duration;

use validrtf::engine::SearchEngine;
use xks_serve::client::{self, Conn};
use xks_serve::{Server, ServerConfig, ServerReport, ShutdownHandle};

fn start(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<ServerReport>>,
) {
    let engine = SearchEngine::new(xks_xmltree::fixtures::publications());
    let server = Server::bind(engine, config).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, shutdown, thread)
}

/// Polls until the admission queue reaches the expected occupancy so
/// the shed assertion races neither the acceptor nor the worker.
fn settle() {
    std::thread::sleep(Duration::from_millis(150));
}

#[test]
fn surplus_connection_is_shed_and_admitted_ones_complete() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let (addr, shutdown, thread) = start(config);

    // Connection A is admitted and picked up by the only worker.
    let mut in_service = Conn::connect(addr).unwrap();
    settle();
    // Connection B fills the single queue slot (its request bytes wait
    // in the socket until a worker frees up).
    let mut queued = Conn::connect(addr).unwrap();
    queued
        .send_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    settle();
    // Connection C finds the queue full: shed with 429 + Retry-After.
    let shed = client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(shed.status, 429, "surplus connection must be shed");
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.text().contains("overloaded"));

    // Being shed must not have damaged the admitted connections: A
    // serves interactively, and once A closes, the worker picks up B
    // and answers the request it queued all along.
    let response = in_service
        .request("POST", "/search", b"{\"query\":\"keyword\"}")
        .unwrap();
    assert_eq!(response.status, 200, "in-service connection unaffected");
    drop(in_service);
    let response = queued.read_response().unwrap();
    assert_eq!(response.status, 200, "queued connection served after A");

    shutdown.shutdown();
    let report = thread.join().unwrap().unwrap();
    assert!(report.drained_cleanly);
    assert_eq!(report.shed, 1, "exactly one connection shed");
    assert!(report.served >= 3, "both admitted responses plus the 429");
}

#[test]
fn drain_serves_queued_connections_before_returning() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 4,
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let (addr, shutdown, thread) = start(config);

    // One connection holds the only worker; another queues a request.
    let in_service = Conn::connect(addr).unwrap();
    settle();
    let mut queued = Conn::connect(addr).unwrap();
    queued
        .send_raw(b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 19\r\n\r\n{\"query\":\"keyword\"}")
        .unwrap();
    settle();

    // Shutdown with work still queued: the admitted request must be
    // served (with Connection: close), not dropped. Wait for the
    // acceptor to flip into draining before freeing the worker, so the
    // queued request is provably served *during* the drain.
    shutdown.shutdown();
    settle();
    drop(in_service); // the idle keep-alive is abandoned by the drain anyway
    let response = queued.read_response().unwrap();
    assert_eq!(response.status, 200, "queued request served during drain");
    assert_eq!(response.header("connection"), Some("close"));

    let report = thread.join().unwrap().unwrap();
    assert!(report.drained_cleanly, "drain finished inside its deadline");
}

#[test]
fn zero_timeout_is_a_deterministic_deadline_503() {
    let config = ServerConfig {
        workers: 2,
        request_timeout: Some(Duration::ZERO),
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let (addr, shutdown, thread) = start(config);

    let response = client::request(addr, "POST", "/search", b"{\"query\":\"keyword\"}").unwrap();
    assert_eq!(response.status, 503, "zero budget always expires");
    assert_eq!(response.header("retry-after"), Some("1"));
    let body = response.text();
    assert!(body.contains("deadline_exceeded"), "{body}");
    assert!(
        body.contains("\"stage\":\"resolve\""),
        "cut before stage one: {body}"
    );
    assert!(
        body.contains("\"stats\""),
        "partial stats ride along: {body}"
    );

    // The deadline only governs /search; health stays green.
    let health = client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);

    shutdown.shutdown();
    let report = thread.join().unwrap().unwrap();
    assert!(report.timeouts >= 1, "timeout counted in the report");
}
