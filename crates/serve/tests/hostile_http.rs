//! Hostile and torn HTTP input: every case must end in a typed 4xx/5xx
//! or a clean connection close — never a panic, never a stuck worker.
//! After each abuse the same server must still answer a well-formed
//! request, which is the real invariant: one bad client cannot take a
//! worker (or the process) down with it.

use std::time::Duration;

use validrtf::engine::SearchEngine;
use xks_serve::client::{self, Conn};
use xks_serve::{Limits, Server, ServerConfig, ShutdownHandle};

struct TestServer {
    addr: std::net::SocketAddr,
    shutdown: ShutdownHandle,
    thread: std::thread::JoinHandle<std::io::Result<xks_serve::ServerReport>>,
}

/// A server over the `publications` fixture with tight limits so the
/// hostile cases trip them with small payloads.
fn start() -> TestServer {
    let config = ServerConfig {
        workers: 2,
        queue_depth: 8,
        limits: Limits {
            max_head_bytes: 1024,
            max_body_bytes: 2048,
            idle_timeout: Duration::from_millis(400),
        },
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let engine = SearchEngine::new(xks_xmltree::fixtures::publications());
    let server = Server::bind(engine, config).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        shutdown,
        thread,
    }
}

impl TestServer {
    /// The liveness probe run after every hostile case.
    fn assert_still_serving(&self) {
        let response = client::request(self.addr, "POST", "/search", b"{\"query\":\"keyword\"}")
            .expect("server still answers after hostile input");
        assert_eq!(response.status, 200);
    }

    fn stop(self) {
        self.shutdown.shutdown();
        let report = self.thread.join().unwrap().unwrap();
        assert!(report.drained_cleanly, "drain must not time out");
    }
}

#[test]
fn oversized_header_is_431() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(4096)
    );
    conn.send_raw(huge.as_bytes()).unwrap();
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 431);
    assert!(
        response.text().contains("head_too_large"),
        "{}",
        response.text()
    );
    server.assert_still_serving();
    server.stop();
}

#[test]
fn oversized_body_is_413_without_reading_it() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    // Declare a body far over the cap but never send it: the 413 must
    // come from the declaration alone.
    conn.send_raw(b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\r\n")
        .unwrap();
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 413);
    assert!(
        response.text().contains("body_too_large"),
        "{}",
        response.text()
    );
    server.assert_still_serving();
    server.stop();
}

#[test]
fn garbage_request_line_is_400_then_close() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    conn.send_raw(b"\x00\xffnot http at all\r\n\r\n").unwrap();
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 400);
    // The connection closes after a framing error: the next read sees
    // EOF, not a hang.
    assert!(conn.read_response().is_err(), "connection must be closed");
    server.assert_still_serving();
    server.stop();
}

#[test]
fn unsupported_transfer_encoding_is_501() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    conn.send_raw(b"POST /search HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 501);
    server.assert_still_serving();
    server.stop();
}

#[test]
fn truncated_head_disconnect_closes_cleanly() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    conn.send_raw(b"POST /search HTTP/1.1\r\nHost: x\r\nConte")
        .unwrap();
    conn.shutdown_write().unwrap();
    // A request torn mid-head gets no response — just a clean close.
    assert!(conn.read_response().is_err(), "no response to a torn head");
    server.assert_still_serving();
    server.stop();
}

#[test]
fn mid_body_disconnect_closes_cleanly() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    conn.send_raw(b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n\r\n{\"query\":")
        .unwrap();
    conn.shutdown_write().unwrap();
    assert!(conn.read_response().is_err(), "no response to a torn body");
    server.assert_still_serving();
    server.stop();
}

#[test]
fn pipelined_requests_each_get_a_response() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    // Two complete requests in one segment; the carry buffer must hand
    // the second to the next loop iteration, not drop it.
    conn.send_raw(
        b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nGET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
    )
    .unwrap();
    let first = conn.read_response().unwrap();
    let second = conn.read_response().unwrap();
    assert_eq!((first.status, second.status), (200, 200));
    server.stop();
}

#[test]
fn pipelined_garbage_after_valid_request_answers_then_closes() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    conn.send_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nGARBAGE\x01\x02\r\n\r\n")
        .unwrap();
    let first = conn.read_response().unwrap();
    assert_eq!(first.status, 200, "valid request answered first");
    let second = conn.read_response().unwrap();
    assert_eq!(second.status, 400, "trailing garbage is a typed 400");
    server.assert_still_serving();
    server.stop();
}

#[test]
fn idle_keepalive_is_closed_after_timeout() {
    let server = start();
    let mut conn = Conn::connect(server.addr).unwrap();
    let response = conn.request("GET", "/healthz", b"").unwrap();
    assert_eq!(response.status, 200);
    // Then go silent past the idle limit: the server must close rather
    // than pin the worker forever.
    std::thread::sleep(Duration::from_millis(900));
    assert!(
        conn.read_response().is_err(),
        "idle connection must be closed by the server"
    );
    server.assert_still_serving();
    server.stop();
}

#[test]
fn bad_json_and_bad_schema_are_typed_400s() {
    let server = start();
    let not_json = client::request(server.addr, "POST", "/search", b"{{{{").unwrap();
    assert_eq!(not_json.status, 400);
    assert!(not_json.text().contains("bad_json"));
    let unknown_field = client::request(
        server.addr,
        "POST",
        "/search",
        b"{\"query\":\"x\",\"topk\":1}",
    )
    .unwrap();
    assert_eq!(unknown_field.status, 400);
    assert!(unknown_field.text().contains("unknown field"));
    let wrong_method = client::request(server.addr, "GET", "/search", b"").unwrap();
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));
    let missing = client::request(server.addr, "GET", "/nope", b"").unwrap();
    assert_eq!(missing.status, 404);
    server.stop();
}
