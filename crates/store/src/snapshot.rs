//! Snapshot persistence for shredded documents.
//!
//! Stands in for the paper's PostgreSQL storage: a shredded corpus can be
//! saved once and reloaded by benchmarks without re-parsing/re-shredding
//! the XML.

use std::fs;
use std::io;
use std::path::Path;

use crate::tables::ShreddedDoc;

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file error.
    Io(io::Error),
    /// Malformed snapshot contents.
    Format(serde_json::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(e) => write!(f, "snapshot format error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Format(e)
    }
}

/// Writes `doc` to `path` as JSON.
pub fn save(doc: &ShreddedDoc, path: &Path) -> Result<(), SnapshotError> {
    let json = serde_json::to_string(doc)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a shredded document from `path`, rebuilding derived indexes.
pub fn load(path: &Path) -> Result<ShreddedDoc, SnapshotError> {
    let json = fs::read_to_string(path)?;
    let mut doc: ShreddedDoc = serde_json::from_str(&json)?;
    doc.rebuild_indexes();
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shred::shred;
    use xks_xmltree::fixtures::{publications, team};

    #[test]
    fn save_load_round_trip() {
        let doc = shred(&publications());
        let dir = std::env::temp_dir().join("xks-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pubs.json");
        save(&doc, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(doc.labels, loaded.labels);
        assert_eq!(doc.elements, loaded.elements);
        assert_eq!(doc.values, loaded.values);
        // Derived lookups survive the round trip.
        assert_eq!(
            doc.keyword_deweys("keyword"),
            loaded.keyword_deweys("keyword")
        );
        assert!(loaded.element(&"0.2.0".parse().unwrap()).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("xks-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Format(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let path = std::env::temp_dir().join("xks-store-test/definitely-missing.json");
        assert!(matches!(load(&path), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn team_round_trip_preserves_stats() {
        let doc = shred(&team());
        let dir = std::env::temp_dir().join("xks-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("team.json");
        save(&doc, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.keyword_node_count("position"), 3);
        assert_eq!(loaded.keyword_frequency("forward"), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
