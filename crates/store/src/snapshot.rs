//! Snapshot persistence for shredded documents.
//!
//! Stands in for the paper's PostgreSQL storage: a shredded corpus can be
//! saved once and reloaded by benchmarks without re-parsing/re-shredding
//! the XML. The format is a single JSON object holding the three tables
//! (`labels`, `elements`, `values`); derived lookup structures are
//! rebuilt on load. For the production paged binary format, see the
//! `xks-persist` crate — JSON snapshots remain the human-inspectable
//! dev/test option.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::json::{self, JsonError, Value};
use crate::tables::{ElementRow, ShreddedDoc, ValueRow, WordSource};

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file error.
    Io(io::Error),
    /// Malformed snapshot contents (JSON syntax).
    Format(JsonError),
    /// Structurally valid JSON that is not a snapshot (missing or
    /// mistyped field).
    Schema(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(e) => write!(f, "snapshot format error: {e}"),
            SnapshotError::Schema(what) => write!(f, "snapshot schema error: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        SnapshotError::Format(e)
    }
}

fn schema(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Schema(what.into())
}

/// Writes `doc` to `path` as JSON.
pub fn save(doc: &ShreddedDoc, path: &Path) -> Result<(), SnapshotError> {
    fs::write(path, to_json(doc))?;
    Ok(())
}

/// Loads a shredded document from `path`, rebuilding derived indexes.
pub fn load(path: &Path) -> Result<ShreddedDoc, SnapshotError> {
    let text = fs::read_to_string(path)?;
    let mut doc = from_json(&json::parse(&text)?)?;
    doc.rebuild_indexes();
    Ok(doc)
}

/// Serializes a shredded document to its JSON snapshot text.
#[must_use]
pub fn to_json(doc: &ShreddedDoc) -> String {
    let labels = Value::Arr(doc.labels.iter().map(|l| Value::Str(l.clone())).collect());
    let elements = Value::Arr(doc.elements.iter().map(element_to_json).collect());
    let values = Value::Arr(doc.values.iter().map(value_row_to_json).collect());
    let mut root = BTreeMap::new();
    root.insert("labels".to_owned(), labels);
    root.insert("elements".to_owned(), elements);
    root.insert("values".to_owned(), values);
    json::to_string(&Value::Obj(root))
}

/// Deserializes a snapshot JSON value (derived indexes are *not*
/// rebuilt; [`load`] does that).
pub fn from_json(root: &Value) -> Result<ShreddedDoc, SnapshotError> {
    let labels = root
        .get("labels")
        .and_then(Value::as_arr)
        .ok_or_else(|| schema("missing \"labels\" array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| schema("label must be a string"))
        })
        .collect::<Result<Vec<String>, _>>()?;
    let elements = root
        .get("elements")
        .and_then(Value::as_arr)
        .ok_or_else(|| schema("missing \"elements\" array"))?
        .iter()
        .map(element_from_json)
        .collect::<Result<Vec<ElementRow>, _>>()?;
    let values = root
        .get("values")
        .and_then(Value::as_arr)
        .ok_or_else(|| schema("missing \"values\" array"))?
        .iter()
        .map(value_row_from_json)
        .collect::<Result<Vec<ValueRow>, _>>()?;
    Ok(ShreddedDoc::from_tables(labels, elements, values))
}

fn element_to_json(row: &ElementRow) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("label".to_owned(), Value::Num(u64::from(row.label)));
    obj.insert("dewey".to_owned(), Value::Str(row.dewey.clone()));
    obj.insert("level".to_owned(), Value::Num(u64::from(row.level)));
    obj.insert(
        "label_path".to_owned(),
        Value::Arr(
            row.label_path
                .iter()
                .map(|&l| Value::Num(u64::from(l)))
                .collect(),
        ),
    );
    obj.insert(
        "content_feature".to_owned(),
        match &row.content_feature {
            None => Value::Null,
            Some((min, max)) => Value::Arr(vec![Value::Str(min.clone()), Value::Str(max.clone())]),
        },
    );
    Value::Obj(obj)
}

fn element_from_json(v: &Value) -> Result<ElementRow, SnapshotError> {
    let label = get_u32(v, "label")?;
    let dewey = get_str(v, "dewey")?;
    let level = get_u32(v, "level")?;
    let label_path = v
        .get("label_path")
        .and_then(Value::as_arr)
        .ok_or_else(|| schema("element row missing \"label_path\""))?
        .iter()
        .map(|n| {
            n.as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| schema("label_path entry must be a u32"))
        })
        .collect::<Result<Vec<u32>, _>>()?;
    let content_feature = match v.get("content_feature") {
        None | Some(Value::Null) => None,
        Some(Value::Arr(pair)) if pair.len() == 2 => {
            let min = pair[0]
                .as_str()
                .ok_or_else(|| schema("content_feature min must be a string"))?;
            let max = pair[1]
                .as_str()
                .ok_or_else(|| schema("content_feature max must be a string"))?;
            Some((min.to_owned(), max.to_owned()))
        }
        Some(_) => return Err(schema("content_feature must be null or [min, max]")),
    };
    Ok(ElementRow {
        label,
        dewey,
        level,
        label_path,
        content_feature,
    })
}

fn value_row_to_json(row: &ValueRow) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("label".to_owned(), Value::Num(u64::from(row.label)));
    obj.insert("dewey".to_owned(), Value::Str(row.dewey.clone()));
    obj.insert(
        "source".to_owned(),
        match &row.source {
            WordSource::Label => Value::Str("label".to_owned()),
            WordSource::Text => Value::Str("text".to_owned()),
            WordSource::Attribute(name) => {
                let mut attr = BTreeMap::new();
                attr.insert("attribute".to_owned(), Value::Str(name.clone()));
                Value::Obj(attr)
            }
        },
    );
    obj.insert("keyword".to_owned(), Value::Str(row.keyword.clone()));
    Value::Obj(obj)
}

fn value_row_from_json(v: &Value) -> Result<ValueRow, SnapshotError> {
    let source = match v
        .get("source")
        .ok_or_else(|| schema("value row missing \"source\""))?
    {
        Value::Str(s) if s == "label" => WordSource::Label,
        Value::Str(s) if s == "text" => WordSource::Text,
        obj @ Value::Obj(_) => WordSource::Attribute(
            obj.get("attribute")
                .and_then(Value::as_str)
                .ok_or_else(|| schema("attribute source must carry a name"))?
                .to_owned(),
        ),
        _ => return Err(schema("unknown word source")),
    };
    Ok(ValueRow {
        label: get_u32(v, "label")?,
        dewey: get_str(v, "dewey")?,
        source,
        keyword: get_str(v, "keyword")?,
    })
}

fn get_str(v: &Value, key: &str) -> Result<String, SnapshotError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| schema(format!("missing string field \"{key}\"")))
}

fn get_u32(v: &Value, key: &str) -> Result<u32, SnapshotError> {
    v.get(key)
        .and_then(Value::as_u64)
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| schema(format!("missing u32 field \"{key}\"")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shred::shred;
    use xks_xmltree::fixtures::{publications, team};

    #[test]
    fn save_load_round_trip() {
        let doc = shred(&publications());
        let dir = std::env::temp_dir().join("xks-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pubs.json");
        save(&doc, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(doc.labels, loaded.labels);
        assert_eq!(doc.elements, loaded.elements);
        assert_eq!(doc.values, loaded.values);
        // Derived lookups survive the round trip.
        assert_eq!(
            doc.keyword_deweys("keyword"),
            loaded.keyword_deweys("keyword")
        );
        assert!(loaded.element(&"0.2.0".parse().unwrap()).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("xks-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Format(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_wrong_schema() {
        let dir = std::env::temp_dir().join("xks-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schema.json");
        std::fs::write(&path, r#"{"labels": [1, 2]}"#).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Schema(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let path = std::env::temp_dir().join("xks-store-test/definitely-missing.json");
        assert!(matches!(load(&path), Err(SnapshotError::Io(_))));
    }

    #[test]
    fn team_round_trip_preserves_stats() {
        let doc = shred(&team());
        let dir = std::env::temp_dir().join("xks-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("team.json");
        save(&doc, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.keyword_node_count("position"), 3);
        assert_eq!(loaded.keyword_frequency("forward"), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn attribute_sources_round_trip() {
        use xks_xmltree::TreeBuilder;
        let mut b = TreeBuilder::new("article");
        b.open_with_attrs("ref", &[("venue", "sigmod")]);
        b.text("skyline");
        b.close();
        let doc = shred(&b.build());
        let back = from_json(&crate::json::parse(&to_json(&doc)).unwrap()).unwrap();
        assert_eq!(doc.values, back.values);
        assert!(back
            .values
            .iter()
            .any(|r| matches!(&r.source, WordSource::Attribute(a) if a == "venue")));
    }
}
