//! Relational-style shredding store.
//!
//! The paper (§5.2) shreds every XML document into three PostgreSQL
//! tables before the algorithms run:
//!
//! * `label (label, ID)` — distinct labels with a unique number,
//! * `element (node's label, Dewey, level, label number sequence,
//!   content feature)` — one row per element node,
//! * `value (node's label, Dewey, attribute, keyword)` — one row per
//!   interesting word occurrence.
//!
//! This crate reproduces those three tables in memory (columnar structs
//! of rows) plus the lookups the algorithms need: *keyword → Dewey
//! codes* against the `value` table, and *Dewey → label-number-sequence /
//! content feature* against the `element` table. A snapshot can be
//! persisted to and reloaded from JSON, standing in for the database
//! (see `DESIGN.md` §2).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod partition;
pub mod shred;
pub mod snapshot;
pub mod tables;

pub use partition::{partition, CorpusPart};
pub use shred::{shred, shred_document};
pub use tables::{ElementRow, ShreddedDoc, ValueRow, WordSource};
