//! The shredder: `XmlTree` → [`ShreddedDoc`].
//!
//! Walks the tree once in pre-order to emit the `element` rows (including
//! the paper's *label number sequence* — the label ids along the root
//! path, §5.2 footnote 11), once in post-order to compute the per-subtree
//! `content feature` (cID), and emits one `value` row per interesting
//! word occurrence at each node (label, text, and attribute words, stop
//! words removed).

use std::collections::BTreeSet;

use xks_xmltree::content::{content_feature, node_content};
use xks_xmltree::tokenizer::tokenize_filtered;
use xks_xmltree::tree::{NodeId, XmlTree};

use crate::tables::{ElementRow, ShreddedDoc, ValueRow, WordSource};

/// Shreds a document into the three tables.
#[must_use]
pub fn shred(tree: &XmlTree) -> ShreddedDoc {
    let mut doc =
        ShreddedDoc::with_labels(tree.labels().iter().map(|(_, n)| n.to_owned()).collect());

    // Subtree content features, computed bottom-up in one pass over the
    // arena (children always have larger NodeId than their parent in our
    // arena? Not guaranteed — use explicit post-order accumulation).
    let features = subtree_features(tree);

    for id in tree.preorder() {
        let node = tree.node(id);
        let dewey = node.dewey.to_string();
        let label_path = label_path(tree, id);
        doc.elements.push(ElementRow {
            label: node.label.as_u32(),
            dewey: dewey.clone(),
            level: node.dewey.level() as u32,
            label_path,
            content_feature: features[id.index()].clone(),
        });

        for word in tokenize_filtered(tree.label_name(id)) {
            doc.values.push(ValueRow {
                label: node.label.as_u32(),
                dewey: dewey.clone(),
                source: WordSource::Label,
                keyword: word,
            });
        }
        if let Some(text) = &node.text {
            for word in tokenize_filtered(text) {
                doc.values.push(ValueRow {
                    label: node.label.as_u32(),
                    dewey: dewey.clone(),
                    source: WordSource::Text,
                    keyword: word,
                });
            }
        }
        for attr in &node.attributes {
            for word in tokenize_filtered(&attr.name).chain(tokenize_filtered(&attr.value)) {
                doc.values.push(ValueRow {
                    label: node.label.as_u32(),
                    dewey: dewey.clone(),
                    source: WordSource::Attribute(attr.name.clone()),
                    keyword: word,
                });
            }
        }
    }

    doc.rebuild_indexes();
    doc
}

/// Shreds one standalone document *into* an existing corpus: rows come
/// back re-addressed as the `ordinal`-th child of the corpus root
/// (document root `0` becomes `0.<ordinal>`, levels shift down one,
/// label paths gain the corpus root's label in front) and label ids are
/// resolved against — extending, when a name is new — the shared
/// corpus dictionary in `labels`.
///
/// This is the mutable-corpus insert path: appending these rows to the
/// corpus tables yields exactly what re-shredding the whole corpus with
/// the document spliced in would, because [`shred`] itself derives
/// every row locally from the node and its root path (a sibling
/// subtree never influences another's rows).
#[must_use]
pub fn shred_document(
    tree: &XmlTree,
    ordinal: u32,
    corpus_root_label: u32,
    labels: &mut Vec<String>,
) -> (Vec<ElementRow>, Vec<ValueRow>) {
    // Local label id -> shared corpus label id, find-or-append by name.
    let label_map: Vec<u32> = tree
        .labels()
        .iter()
        .map(|(_, name)| match labels.iter().position(|l| l == name) {
            Some(idx) => idx as u32,
            None => {
                labels.push((*name).to_owned());
                (labels.len() - 1) as u32
            }
        })
        .collect();
    let map = |local: u32| label_map[local as usize];
    let redewey = |d: &xks_xmltree::Dewey| {
        let comps = d.components();
        let mut out = Vec::with_capacity(comps.len() + 1);
        out.push(0);
        out.push(ordinal);
        out.extend_from_slice(&comps[1..]);
        xks_xmltree::Dewey::from_components(out).to_string()
    };

    let features = subtree_features(tree);
    let mut elements = Vec::with_capacity(tree.len());
    let mut values = Vec::new();
    for id in tree.preorder() {
        let node = tree.node(id);
        let dewey = redewey(&node.dewey);
        let mut path = Vec::with_capacity(node.dewey.level() + 2);
        path.push(corpus_root_label);
        path.extend(label_path(tree, id).into_iter().map(map));
        elements.push(ElementRow {
            label: map(node.label.as_u32()),
            dewey: dewey.clone(),
            level: node.dewey.level() as u32 + 1,
            label_path: path,
            content_feature: features[id.index()].clone(),
        });

        let mut push_value = |source: WordSource, keyword: String| {
            values.push(ValueRow {
                label: map(node.label.as_u32()),
                dewey: dewey.clone(),
                source,
                keyword,
            });
        };
        for word in tokenize_filtered(tree.label_name(id)) {
            push_value(WordSource::Label, word);
        }
        if let Some(text) = &node.text {
            for word in tokenize_filtered(text) {
                push_value(WordSource::Text, word);
            }
        }
        for attr in &node.attributes {
            for word in tokenize_filtered(&attr.name).chain(tokenize_filtered(&attr.value)) {
                push_value(WordSource::Attribute(attr.name.clone()), word);
            }
        }
    }
    (elements, values)
}

/// Label ids on the path root → node, the paper's "label number sequence".
fn label_path(tree: &XmlTree, id: NodeId) -> Vec<u32> {
    let mut path: Vec<u32> = tree
        .ancestors(id)
        .map(|a| tree.node(a).label.as_u32())
        .collect();
    path.reverse();
    path.push(tree.node(id).label.as_u32());
    path
}

/// Computes the `(min, max)` content feature of every subtree with one
/// post-order pass (no repeated subtree scans).
fn subtree_features(tree: &XmlTree) -> Vec<Option<(String, String)>> {
    let mut features: Vec<Option<(String, String)>> = vec![None; tree.len()];
    // Post-order: process children before parents. Pre-order reversed is
    // not post-order in general, but a DFS finish-time ordering is easily
    // obtained by walking pre-order and then iterating in reverse *when
    // children always follow parents in the visit sequence*, which holds
    // for pre-order.
    let order: Vec<NodeId> = tree.preorder().collect();
    for &id in order.iter().rev() {
        let own: BTreeSet<String> = node_content(tree, id);
        let mut min_max = content_feature(&own);
        for &child in tree.node(id).children() {
            if let Some((cmin, cmax)) = &features[child.index()] {
                min_max = Some(match min_max {
                    None => (cmin.clone(), cmax.clone()),
                    Some((mut mn, mut mx)) => {
                        if *cmin < mn {
                            mn = cmin.clone();
                        }
                        if *cmax > mx {
                            mx = cmax.clone();
                        }
                        (mn, mx)
                    }
                });
            }
        }
        features[id.index()] = min_max;
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::fixtures::publications;
    use xks_xmltree::TreeBuilder;

    #[test]
    fn element_rows_cover_all_nodes_in_preorder() {
        let t = publications();
        let doc = shred(&t);
        assert_eq!(doc.elements.len(), t.len());
        let deweys: Vec<&str> = doc.elements.iter().map(|r| r.dewey.as_str()).collect();
        let mut sorted = deweys.clone();
        sorted.sort_by_key(|d| d.parse::<xks_xmltree::Dewey>().unwrap());
        assert_eq!(deweys, sorted);
    }

    #[test]
    fn label_paths_follow_root_path() {
        let t = publications();
        let doc = shred(&t);
        let row = doc
            .elements
            .iter()
            .find(|r| r.dewey == "0.2.0.0.0.0")
            .unwrap();
        let names: Vec<&str> = row.label_path.iter().map(|&l| doc.label_name(l)).collect();
        assert_eq!(
            names,
            [
                "Publications",
                "Articles",
                "article",
                "authors",
                "author",
                "name"
            ]
        );
        assert_eq!(row.level, 5);
    }

    #[test]
    fn value_rows_distinguish_sources() {
        let mut b = TreeBuilder::new("article");
        b.open_with_attrs("ref", &[("venue", "sigmod")]);
        b.text("skyline");
        b.close();
        let t = b.build();
        let doc = shred(&t);
        let sources: Vec<(&str, &WordSource)> = doc
            .values
            .iter()
            .filter(|r| r.dewey == "0.0")
            .map(|r| (r.keyword.as_str(), &r.source))
            .collect();
        assert!(sources.contains(&("ref", &WordSource::Label)));
        assert!(sources.contains(&("skyline", &WordSource::Text)));
        assert!(sources
            .iter()
            .any(|(w, s)| *w == "sigmod" && matches!(s, WordSource::Attribute(a) if a == "venue")));
        // attribute *name* words are emitted too
        assert!(sources
            .iter()
            .any(|(w, s)| *w == "venue" && matches!(s, WordSource::Attribute(_))));
    }

    #[test]
    fn keyword_lookup_matches_fixture_expectations() {
        let doc = shred(&publications());
        let liu: Vec<String> = doc
            .keyword_deweys("liu")
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(liu, ["0.2.0.0.0.0", "0.2.0.3.0"]);
    }

    #[test]
    fn content_features_aggregate_subtrees() {
        let doc = shred(&publications());
        // Leaf: title of the skyline paper.
        let title = doc.element(&"0.2.0.1".parse().unwrap()).unwrap();
        assert_eq!(
            title.content_feature,
            Some(("keyword".into(), "xml".into()))
        );
        // Interior: the whole document spans "2008" .. "z".
        let root = doc.element(&"0".parse().unwrap()).unwrap();
        let (min, max) = root.content_feature.clone().unwrap();
        assert!(min.as_str() <= "abstract");
        assert!(max.as_str() >= "xml");
    }

    #[test]
    fn shred_document_matches_whole_corpus_shred() {
        let combined = xks_xmltree::parse(
            "<pubs><paper><title>alpha beta</title></paper>\
             <note venue=\"gamma\">delta</note></pubs>",
        )
        .unwrap();
        let oracle = shred(&combined);

        // Rebuild the same corpus incrementally: empty root, then each
        // document shredded standalone and spliced in at its ordinal.
        let empty = shred(&xks_xmltree::parse("<pubs/>").unwrap());
        let mut labels = empty.labels.clone();
        let mut elements = empty.elements.clone();
        let mut values = empty.values.clone();
        for (ordinal, xml) in [
            "<paper><title>alpha beta</title></paper>",
            "<note venue=\"gamma\">delta</note>",
        ]
        .iter()
        .enumerate()
        {
            let tree = xks_xmltree::parse(xml).unwrap();
            let (e, v) = shred_document(&tree, ordinal as u32, 0, &mut labels);
            elements.extend(e);
            values.extend(v);
        }

        assert_eq!(labels, oracle.labels);
        assert_eq!(values, oracle.values);
        assert_eq!(elements.len(), oracle.elements.len());
        for (got, want) in elements.iter().zip(&oracle.elements) {
            if want.dewey == "0" {
                // The corpus root's subtree feature goes stale under
                // incremental insert (and is never read by queries);
                // everything else about the row must match.
                assert_eq!(got.label, want.label);
                assert_eq!(got.label_path, want.label_path);
            } else {
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn stop_words_do_not_reach_value_table() {
        let doc = shred(&publications());
        assert_eq!(doc.keyword_frequency("with"), 0);
        assert_eq!(doc.keyword_frequency("for"), 0);
        assert!(doc.keyword_frequency("xml") > 0);
    }
}
