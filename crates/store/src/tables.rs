//! The three shredded tables and their lookup API.

use std::collections::{BTreeMap, HashMap};

use xks_xmltree::Dewey;

/// Where a `value`-table word occurrence came from.
///
/// The paper's `value` table has an `attribute` column distinguishing
/// attribute words; we additionally distinguish label words, because the
/// content definition `Cv` counts the node's label as matchable content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordSource {
    /// The word occurs in the element's label.
    Label,
    /// The word occurs in the element's text.
    Text,
    /// The word occurs in the named attribute (name or value).
    Attribute(String),
}

/// One row of the `element` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementRow {
    /// Label id of the node (into the label table).
    pub label: u32,
    /// Dewey code, serialized in dotted form.
    pub dewey: String,
    /// Depth of the node (root = 0).
    pub level: u32,
    /// The paper's "label number sequence": label ids of the ancestors on
    /// the path from the root down to (and including) this node.
    pub label_path: Vec<u32>,
    /// The paper's "content feature" — the `cID = (min, max)` word pair
    /// of the subtree content, `None` for content-free subtrees.
    pub content_feature: Option<(String, String)>,
}

/// One row of the `value` table: one interesting word occurring at one
/// node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRow {
    /// Label id of the node.
    pub label: u32,
    /// Dewey code of the node, dotted form.
    pub dewey: String,
    /// Provenance of the word.
    pub source: WordSource,
    /// The (lowercased, stop-word-filtered) word itself.
    pub keyword: String,
}

/// A shredded document: the paper's three tables plus derived indexes.
#[derive(Debug, Clone, Default)]
pub struct ShreddedDoc {
    /// `label` table: index = id, value = label string.
    pub labels: Vec<String>,
    /// `element` table rows in document (pre-)order.
    pub elements: Vec<ElementRow>,
    /// `value` table rows.
    pub values: Vec<ValueRow>,
    /// Derived: keyword → sorted, deduplicated Dewey strings. Rebuilt
    /// from the `value` table on load (snapshots store only the three
    /// tables).
    keyword_index: BTreeMap<String, Vec<String>>,
    /// Derived: dewey string → row offset in `elements`.
    element_offsets: HashMap<String, usize>,
}

impl ShreddedDoc {
    /// Creates an empty document with the given label table.
    #[must_use]
    pub fn with_labels(labels: Vec<String>) -> Self {
        ShreddedDoc {
            labels,
            ..Default::default()
        }
    }

    /// Assembles a document from raw table rows (derived lookups are
    /// empty until [`ShreddedDoc::rebuild_indexes`] runs). Used by the
    /// snapshot loader.
    #[must_use]
    pub fn from_tables(
        labels: Vec<String>,
        elements: Vec<ElementRow>,
        values: Vec<ValueRow>,
    ) -> Self {
        ShreddedDoc {
            labels,
            elements,
            values,
            ..Default::default()
        }
    }

    /// Rebuilds the derived lookup structures (called by the shredder and
    /// after deserialization).
    pub fn rebuild_indexes(&mut self) {
        self.element_offsets = self
            .elements
            .iter()
            .enumerate()
            .map(|(i, row)| (row.dewey.clone(), i))
            .collect();
        if self.keyword_index.is_empty() {
            let mut index: BTreeMap<String, Vec<String>> = BTreeMap::new();
            for row in &self.values {
                index
                    .entry(row.keyword.clone())
                    .or_default()
                    .push(row.dewey.clone());
            }
            for deweys in index.values_mut() {
                deweys.sort_by_key(|d| d.parse::<Dewey>().expect("stored dewey is valid"));
                deweys.dedup();
            }
            self.keyword_index = index;
        }
    }

    /// The label string for a label id.
    #[must_use]
    pub fn label_name(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// SQL-equivalent of the paper's stage-1 lookup: all Dewey codes of
    /// nodes whose content contains `keyword`, in document order.
    #[must_use]
    pub fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
        self.keyword_index
            .get(keyword)
            .map(|v| {
                v.iter()
                    .map(|d| d.parse().expect("stored dewey is valid"))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The `element` row for a Dewey code.
    #[must_use]
    pub fn element(&self, dewey: &Dewey) -> Option<&ElementRow> {
        self.element_offsets
            .get(&dewey.to_string())
            .map(|&i| &self.elements[i])
    }

    /// Number of distinct words in the value table.
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.keyword_index.len()
    }

    /// Total occurrences of `keyword` in the value table (the frequency
    /// numbers reported in the paper's §5.1 keyword list).
    #[must_use]
    pub fn keyword_frequency(&self, keyword: &str) -> usize {
        self.values.iter().filter(|r| r.keyword == keyword).count()
    }

    /// Number of keyword *nodes* for `keyword` (distinct Dewey codes).
    #[must_use]
    pub fn keyword_node_count(&self, keyword: &str) -> usize {
        self.keyword_index.get(keyword).map_or(0, Vec::len)
    }

    /// Iterates all `(keyword, node-count)` pairs in lexical order.
    pub fn keyword_stats(&self) -> impl Iterator<Item = (&str, usize)> {
        self.keyword_index
            .iter()
            .map(|(k, v)| (k.as_str(), v.len()))
    }

    /// Exports the derived keyword index as raw postings — the bridge
    /// to `xks_index::InvertedIndex::from_postings` for callers that
    /// load a snapshot instead of re-parsing the XML.
    #[must_use]
    pub fn to_postings(&self) -> Vec<(String, Vec<Dewey>)> {
        self.keyword_index
            .iter()
            .map(|(word, deweys)| {
                (
                    word.clone(),
                    deweys
                        .iter()
                        .map(|d| d.parse().expect("stored dewey is valid"))
                        .collect(),
                )
            })
            .collect()
    }

    /// Number of element rows.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The ancestor label names of a node, root first — decoding the
    /// paper's *label number sequence* (§5.2, footnote 11: the
    /// root-path labels are what lets Algorithm 1 fill node information
    /// without touching the original document).
    #[must_use]
    pub fn ancestor_labels(&self, dewey: &Dewey) -> Option<Vec<&str>> {
        let row = self.element(dewey)?;
        Some(
            row.label_path
                .iter()
                .map(|&id| self.label_name(id))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> ShreddedDoc {
        let mut d = ShreddedDoc {
            labels: vec!["a".into(), "b".into()],
            elements: vec![
                ElementRow {
                    label: 0,
                    dewey: "0".into(),
                    level: 0,
                    label_path: vec![0],
                    content_feature: Some(("alpha".into(), "zeta".into())),
                },
                ElementRow {
                    label: 1,
                    dewey: "0.0".into(),
                    level: 1,
                    label_path: vec![0, 1],
                    content_feature: None,
                },
            ],
            values: vec![
                ValueRow {
                    label: 1,
                    dewey: "0.0".into(),
                    source: WordSource::Text,
                    keyword: "alpha".into(),
                },
                ValueRow {
                    label: 0,
                    dewey: "0".into(),
                    source: WordSource::Label,
                    keyword: "alpha".into(),
                },
                ValueRow {
                    label: 1,
                    dewey: "0.0".into(),
                    source: WordSource::Text,
                    keyword: "alpha".into(),
                },
            ],
            ..Default::default()
        };
        d.rebuild_indexes();
        d
    }

    #[test]
    fn keyword_deweys_sorted_and_deduped() {
        let d = doc();
        let deweys: Vec<String> = d
            .keyword_deweys("alpha")
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(deweys, ["0", "0.0"]);
        assert!(d.keyword_deweys("missing").is_empty());
    }

    #[test]
    fn element_lookup() {
        let d = doc();
        let row = d.element(&"0.0".parse().unwrap()).unwrap();
        assert_eq!(row.level, 1);
        assert_eq!(row.label_path, vec![0, 1]);
        assert!(d.element(&"0.7".parse().unwrap()).is_none());
    }

    #[test]
    fn ancestor_labels_decode_label_path() {
        let d = doc();
        assert_eq!(
            d.ancestor_labels(&"0.0".parse().unwrap()),
            Some(vec!["a", "b"])
        );
        assert_eq!(d.ancestor_labels(&"0.9".parse().unwrap()), None);
    }

    #[test]
    fn frequencies() {
        let d = doc();
        assert_eq!(d.keyword_frequency("alpha"), 3);
        assert_eq!(d.keyword_node_count("alpha"), 2);
        assert_eq!(d.vocabulary_size(), 1);
        let stats: Vec<(&str, usize)> = d.keyword_stats().collect();
        assert_eq!(stats, vec![("alpha", 2)]);
    }
}
