//! Partitioning a shredded corpus into document-contiguous parts — the
//! storage-layer half of the sharded-corpus design.
//!
//! A *document* here is one top-level child of the corpus root (one
//! `<article>` under `<dblp>`, one `<item>` region under `<site>`, …):
//! the subtree rooted at a Dewey code with exactly two components.
//! [`partition`] splits a [`ShreddedDoc`] into at most `parts`
//! contiguous document ranges, balanced by element-row count, with
//! three invariants the sharded search layers build on:
//!
//! 1. **Document contiguity.** Part `i` owns the documents whose
//!    top-level ordinal lies in `[first_doc(i), first_doc(i+1))`, so
//!    concatenating per-part posting lists in part order yields a
//!    globally document-ordered list — the scatter-gather merge is a
//!    plain concatenation, never a k-way merge.
//! 2. **Root ownership.** Rows of the corpus root itself (Dewey `0`,
//!    one component) — its element row and any value rows its own
//!    label/text contributes — go to part 0 exactly once, so no
//!    posting is duplicated or lost across parts.
//! 3. **Shared label table.** Every part carries the *full* label
//!    dictionary of the source corpus, so label ids embedded in
//!    element rows mean the same string in every part (fragments
//!    assembled from different shards render identically).
//!
//! The split is deterministic: the same corpus and part count always
//! produce the same partition.

use crate::tables::ShreddedDoc;

/// One part of a partitioned corpus: the contiguous document range it
/// owns plus its own fully-indexed [`ShreddedDoc`].
#[derive(Debug, Clone)]
pub struct CorpusPart {
    /// First top-level document ordinal this part owns. Part 0 always
    /// starts at 0 (and additionally owns the corpus root's rows).
    pub first_doc: u32,
    /// Number of top-level documents in the part.
    pub doc_count: u64,
    /// The part's tables (full label dictionary, its slice of the
    /// element/value rows, derived indexes rebuilt).
    pub doc: ShreddedDoc,
}

/// The top-level document ordinal of a dotted Dewey string, `None` for
/// the root (or an empty code).
fn top_ordinal(dewey: &str) -> Option<u32> {
    let rest = &dewey[dewey.find('.')? + 1..];
    let second = rest.split('.').next().unwrap_or(rest);
    second.parse().ok()
}

/// Splits `doc` into at most `parts` document-contiguous parts balanced
/// by element-row count (see the module docs for the invariants).
///
/// `parts` is clamped to `[1, document count]` — a corpus with fewer
/// top-level documents than requested parts yields one part per
/// document, and a root-only corpus yields a single part. The returned
/// parts are in document order and non-empty.
#[must_use]
pub fn partition(doc: &ShreddedDoc, parts: usize) -> Vec<CorpusPart> {
    // Count element rows per top-level document, in document order
    // (element rows are stored pre-order, so ordinals appear grouped
    // and ascending).
    let mut docs: Vec<(u32, usize)> = Vec::new();
    for row in &doc.elements {
        // Root rows (no top ordinal) always land in part 0; only
        // document rows drive the balance.
        if let Some(ordinal) = top_ordinal(&row.dewey) {
            match docs.last_mut() {
                Some((last, count)) if *last == ordinal => *count += 1,
                _ => docs.push((ordinal, 1)),
            }
        }
    }

    let parts = parts.clamp(1, docs.len().max(1));

    // Greedy approximately-balanced split: after each document, compare
    // the accumulated rows against the average of what the remaining
    // parts must absorb, and cut on whichever side of that target is
    // nearer (so one huge document can't swallow every boundary).
    // A cut is forced when exactly one document per remaining part is
    // left, so no part ever comes out empty.
    let mut boundaries: Vec<u32> = vec![0]; // first_doc per part
    if parts > 1 {
        let mut rest: usize = docs.iter().map(|&(_, n)| n).sum();
        let mut remaining_parts = parts;
        let mut acc = 0usize;
        for (i, &(_, rows)) in docs.iter().enumerate() {
            acc += rows;
            rest -= rows;
            let docs_left = docs.len() - i - 1;
            if remaining_parts <= 1 || docs_left == 0 {
                continue;
            }
            let target = (acc + rest).div_ceil(remaining_parts);
            let must_cut = docs_left == remaining_parts - 1;
            let next_rows = docs[i + 1].1;
            let overshoots_nearer = acc + next_rows > target
                && target.saturating_sub(acc) <= (acc + next_rows).saturating_sub(target);
            if must_cut || acc >= target || overshoots_nearer {
                boundaries.push(docs[i + 1].0);
                remaining_parts -= 1;
                acc = 0;
            }
        }
    }

    // Route every row to its part. Rows are in document order, so a
    // forward scan with a moving part index suffices.
    let route = |dewey: &str| -> usize {
        match top_ordinal(dewey) {
            None => 0,
            Some(ordinal) => boundaries.partition_point(|&b| b <= ordinal) - 1,
        }
    };
    let mut elements: Vec<Vec<crate::tables::ElementRow>> = vec![Vec::new(); boundaries.len()];
    for row in &doc.elements {
        elements[route(&row.dewey)].push(row.clone());
    }
    let mut values: Vec<Vec<crate::tables::ValueRow>> = vec![Vec::new(); boundaries.len()];
    for row in &doc.values {
        values[route(&row.dewey)].push(row.clone());
    }

    boundaries
        .iter()
        .enumerate()
        .map(|(i, &first_doc)| {
            let next = boundaries.get(i + 1).copied();
            let doc_count = docs
                .iter()
                .filter(|&&(o, _)| o >= first_doc && next.is_none_or(|n| o < n))
                .count() as u64;
            let mut part = ShreddedDoc::from_tables(
                doc.labels.clone(),
                std::mem::take(&mut elements[i]),
                std::mem::take(&mut values[i]),
            );
            part.rebuild_indexes();
            CorpusPart {
                first_doc,
                doc_count,
                doc: part,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shred;
    use xks_xmltree::fixtures::publications;

    #[test]
    fn partition_preserves_every_row_exactly_once() {
        let doc = shred(&publications());
        for parts in [1, 2, 3, 8] {
            let split = partition(&doc, parts);
            let elements: usize = split.iter().map(|p| p.doc.elements.len()).sum();
            let values: usize = split.iter().map(|p| p.doc.values.len()).sum();
            assert_eq!(elements, doc.elements.len(), "{parts} parts");
            assert_eq!(values, doc.values.len(), "{parts} parts");
            for part in &split {
                assert_eq!(part.doc.labels, doc.labels, "label table replicated");
                assert!(!part.doc.elements.is_empty());
            }
        }
    }

    #[test]
    fn root_rows_live_in_part_zero_only() {
        let doc = shred(&publications());
        let split = partition(&doc, 3);
        assert!(split[0].doc.elements.iter().any(|r| r.dewey == "0"));
        for part in &split[1..] {
            assert!(part.doc.elements.iter().all(|r| r.dewey != "0"));
            assert!(part.doc.values.iter().all(|r| r.dewey != "0"));
        }
    }

    #[test]
    fn boundaries_are_contiguous_and_ordered() {
        let doc = shred(&publications());
        let split = partition(&doc, 2);
        assert_eq!(split[0].first_doc, 0);
        assert!(split.windows(2).all(|w| w[0].first_doc < w[1].first_doc));
        let total_docs: u64 = split.iter().map(|p| p.doc_count).sum();
        let roots = doc
            .elements
            .iter()
            .filter(|r| r.dewey.matches('.').count() == 1)
            .count() as u64;
        assert_eq!(total_docs, roots);
    }

    #[test]
    fn more_parts_than_documents_clamps() {
        let doc = shred(&xks_xmltree::parse("<r><a>x</a><b>y</b></r>").unwrap());
        let split = partition(&doc, 16);
        assert_eq!(split.len(), 2, "one part per document");
        let one = partition(&doc, 0);
        assert_eq!(one.len(), 1, "zero parts clamps to one");
    }

    #[test]
    fn concatenated_postings_stay_document_ordered() {
        let doc = shred(&publications());
        let split = partition(&doc, 3);
        for (kw, _) in doc.keyword_stats() {
            let mut gathered = Vec::new();
            for part in &split {
                gathered.extend(part.doc.keyword_deweys(kw));
            }
            assert_eq!(gathered, doc.keyword_deweys(kw), "{kw}");
        }
    }
}
