//! Minimal JSON reader/writer for snapshots.
//!
//! The build environment has no crates.io access, so snapshots are
//! (de)serialized through this small hand-rolled JSON module instead of
//! `serde_json`. It supports what [`crate::snapshot`] needs — objects,
//! arrays, strings (with `\uXXXX` escapes), unsigned integers, `null`,
//! and booleans — plus finite floats for the CLI's `--format json`
//! search output (rank scores, fractional timings).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (snapshots only use unsigned integers).
    Num(u64),
    /// A floating-point number (CLI scores/timings; never NaN or
    /// infinite — non-finite floats serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order is not preserved; snapshots don't care).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting (matches serde_json's default); deeper
/// input gets a `JsonError` instead of a stack overflow.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'0'..=b'9' | b'-') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let mut float = false;
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        if self.peek() == Some(b'-') {
            float = true;
            self.pos += 1;
        }
        if !digits(self) {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("malformed number"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'-' | b'+')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("malformed number"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        if float {
            return match text.parse::<f64>() {
                Ok(f) if f.is_finite() => Ok(Value::Float(f)),
                _ => Err(self.err("malformed number")),
            };
        }
        text.parse()
            .map(Value::Num)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(char::from(b));
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one multi-byte UTF-8 char (at most 4 bytes
                    // — never re-validate the whole remaining input).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    let c = valid.chars().next().expect("non-empty valid prefix");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.ascend();
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.ascend();
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.ascend();
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.ascend();
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Serializes a value compactly (no insignificant whitespace).
pub fn write(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            use fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            use fmt::Write as _;
            if f.is_finite() {
                // Rust's Debug float rendering is shortest-round-trip
                // and valid JSON (always a '.' or exponent).
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a value to a fresh `String`.
#[must_use]
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write(value, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true,"e":false}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::Str("quote\" slash\\ tab\t nl\n unicode → €".to_owned());
        let text = to_string(&original);
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape_parsing() {
        // A = 'A', é = 'é', 😀 = 😀 (surrogate pair).
        assert_eq!(parse(r#""Aé😀""#).unwrap(), Value::Str("Aé😀".to_owned()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "1.",
            "-",
            "1e",
            "[1] x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
        // 128 levels (the serde_json default) still parse.
        let ok = "[".repeat(128) + &"]".repeat(128);
        assert!(parse(&ok).is_ok());
        let too_deep = "[".repeat(129) + &"]".repeat(129);
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn floats_round_trip() {
        for (text, want) in [
            ("1.5", 1.5),
            ("-3", -3.0),
            ("0.8333333333333334", 0.833_333_333_333_333_4),
            ("2e3", 2000.0),
            ("-2.5e-2", -0.025),
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.as_f64(), Some(want), "{text}");
            assert_eq!(parse(&to_string(&v)).unwrap(), v, "{text}");
        }
        // Integers stay integers (snapshots depend on as_u64).
        assert_eq!(parse("7").unwrap(), Value::Num(7));
        // Non-finite floats degrade to null on write.
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
