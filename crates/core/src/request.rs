//! The request/response search API.
//!
//! [`SearchRequest`] is the one description of a search — query text in
//! the operator grammar (phrases, exclusions, label filters; see
//! [`xks_index::grammar`]), the algorithm, and the result-shaping knobs
//! (`top_k`, ranking weights, `max_fragments`). It is executed by the
//! single pair of entry points
//! [`SearchEngine::execute`](crate::engine::SearchEngine::execute) /
//! [`execute_with`](crate::engine::SearchEngine::execute_with), which
//! return a [`SearchResponse`]: scored [`Hit`]s, per-stage timings, and
//! the [`SearchStats`] observability block. Failures are typed
//! [`SearchError`]s — parse errors from the grammar, backend I/O or
//! corruption from the storage layer — so no query path panics.
//!
//! ```
//! use validrtf::{AlgorithmKind, SearchEngine, SearchRequest};
//!
//! let tree = xks_xmltree::parse(
//!     "<pubs><paper><title>xml keyword search</title></paper>\
//!      <paper><title>skyline queries</title></paper></pubs>",
//! )
//! .unwrap();
//! let engine = SearchEngine::new(tree);
//! let request = SearchRequest::parse("xml keyword")?
//!     .algorithm(AlgorithmKind::ValidRtf)
//!     .top_k(10);
//! let response = engine.execute(&request)?;
//! assert_eq!(response.hits.len(), 1);
//! assert!(response.hits[0].score.is_some()); // top_k implies ranking
//! # Ok::<(), validrtf::SearchError>(())
//! ```

use std::fmt;
use std::time::{Duration, Instant};

use xks_index::{ParseError, Query, QueryError, QuerySpec};

use crate::algorithms::StageTimings;
use crate::engine::AlgorithmKind;
use crate::fragment::Fragment;
use crate::rank::RankWeights;
use crate::source::SourceError;

/// Everything that can go wrong executing a search — the one error
/// type of the read path.
#[derive(Debug)]
pub enum SearchError {
    /// The query text failed the operator grammar (also absorbs the
    /// legacy [`QueryError`]).
    Parse(ParseError),
    /// The storage backend failed: I/O, index corruption, a poisoned
    /// resource — anything [`SourceError`] wraps.
    Backend(SourceError),
    /// A corpus mutation failed (bad document XML, unknown ordinal) —
    /// surfaced here so read/write services share one error type.
    Mutation(crate::mutable::MutationError),
    /// The request's deadline expired before the pipeline finished.
    /// Boxed because the partial stats it carries are bigger than every
    /// other variant; see [`SearchTimeout`].
    Timeout(Box<SearchTimeout>),
}

/// The evidence behind a [`SearchError::Timeout`]: where the pipeline
/// was cut, how long it had run, and the [`SearchStats`] accumulated so
/// far — enough for a server to answer `503` with a partial-stats body
/// instead of a bare error string.
#[derive(Debug, Clone)]
pub struct SearchTimeout {
    /// The pipeline stage the deadline check fired **before** (the
    /// stages themselves always run to completion): `"resolve"`,
    /// `"anchor"`, `"construct"`, or `"post_process"`.
    pub stage: &'static str,
    /// Wall time spent in the pipeline when the check fired.
    pub elapsed: Duration,
    /// The stats accumulated up to the cut — plan strategy and postings
    /// totals are valid once the `"anchor"` check is reached.
    pub stats: SearchStats,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Parse(e) => write!(f, "bad query: {e}"),
            SearchError::Backend(e) => write!(f, "{e}"),
            SearchError::Mutation(e) => write!(f, "mutation failed: {e}"),
            SearchError::Timeout(t) => write!(
                f,
                "deadline exceeded after {:?} (before the {} stage)",
                t.elapsed, t.stage
            ),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Parse(e) => Some(e),
            SearchError::Backend(e) => Some(e),
            SearchError::Mutation(e) => Some(e),
            SearchError::Timeout(_) => None,
        }
    }
}

impl From<crate::mutable::MutationError> for SearchError {
    fn from(e: crate::mutable::MutationError) -> Self {
        SearchError::Mutation(e)
    }
}

impl From<ParseError> for SearchError {
    fn from(e: ParseError) -> Self {
        SearchError::Parse(e)
    }
}

impl From<QueryError> for SearchError {
    fn from(e: QueryError) -> Self {
        SearchError::Parse(e.into())
    }
}

impl From<SourceError> for SearchError {
    fn from(e: SourceError) -> Self {
        SearchError::Backend(e)
    }
}

/// A fully-described search: parsed query plus execution knobs.
///
/// Build one with [`SearchRequest::parse`] (operator grammar) or
/// [`SearchRequest::from_query`] / [`SearchRequest::from_spec`], then
/// chain the builder methods:
///
/// ```
/// use validrtf::{AlgorithmKind, RankWeights, SearchRequest};
///
/// let request = SearchRequest::parse("title:xml \"keyword search\" -skyline")?
///     .algorithm(AlgorithmKind::ValidRtf)
///     .weights(RankWeights::default())
///     .top_k(10)
///     .max_fragments(1000);
/// assert_eq!(request.query().keywords(), ["xml", "keyword", "search"]);
/// # Ok::<(), validrtf::SearchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SearchRequest {
    spec: QuerySpec,
    algorithm: AlgorithmKind,
    top_k: Option<usize>,
    weights: Option<RankWeights>,
    max_fragments: Option<usize>,
    trace: bool,
    parse_ns: u64,
    deadline: Option<Instant>,
}

// Manual: two requests are the same search if every knob matches;
// `parse_ns` is telemetry riding along and `deadline` is a property of
// one particular execution, not part of request identity.
impl PartialEq for SearchRequest {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.algorithm == other.algorithm
            && self.top_k == other.top_k
            && self.weights == other.weights
            && self.max_fragments == other.max_fragments
            && self.trace == other.trace
    }
}

impl SearchRequest {
    /// Parses query text in the operator grammar and wraps it in a
    /// request with default knobs ([`AlgorithmKind::ValidRtf`], no
    /// ranking, no truncation).
    pub fn parse(text: &str) -> Result<Self, SearchError> {
        let started = std::time::Instant::now();
        let spec = QuerySpec::parse(text)?;
        let parse_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut request = Self::from_spec(spec);
        request.parse_ns = parse_ns;
        Ok(request)
    }

    /// A request over an already-parsed operator-grammar spec.
    #[must_use]
    pub fn from_spec(spec: QuerySpec) -> Self {
        SearchRequest {
            spec,
            algorithm: AlgorithmKind::ValidRtf,
            top_k: None,
            weights: None,
            max_fragments: None,
            trace: false,
            parse_ns: 0,
            deadline: None,
        }
    }

    /// A request over a plain lowered [`Query`] (no operators).
    #[must_use]
    pub fn from_query(query: Query) -> Self {
        Self::from_spec(QuerySpec::from_query(query))
    }

    /// Selects the algorithm (default [`AlgorithmKind::ValidRtf`]).
    #[must_use]
    pub fn algorithm(mut self, kind: AlgorithmKind) -> Self {
        self.algorithm = kind;
        self
    }

    /// Keeps only the `k` best hits. Setting `top_k` implies ranking:
    /// the response's hits come back best-first and scored (with
    /// [`SearchRequest::weights`] or the default weights), and
    /// truncation happens **before** any hit is materialized.
    #[must_use]
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Ranks hits best-first with these weights (without `top_k`, all
    /// hits come back, ranked).
    #[must_use]
    pub fn weights(mut self, weights: RankWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Caps how many fragments the response may carry **in document
    /// order, before ranking** — a response-size guard for queries that
    /// explode. A hit dropped here is reported via
    /// [`SearchStats::truncated`], never silently.
    #[must_use]
    pub fn max_fragments(mut self, cap: usize) -> Self {
        self.max_fragments = Some(cap);
        self
    }

    /// Enables per-query stage tracing: the response's
    /// [`SearchResponse::trace`] carries a span per pipeline stage
    /// (parse, per-keyword postings decode, merge/anchor, construct,
    /// prune, rank). Tracing never changes results and stays on the
    /// zero-allocation warm path; overhead is a few `Instant` reads
    /// per query.
    #[must_use]
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Whether this request asks for a stage trace.
    #[must_use]
    pub fn traced(&self) -> bool {
        self.trace
    }

    /// Gives this execution a wall-clock budget: the deadline is `now +
    /// budget`, and [`SearchEngine::execute_with`] checks it **between**
    /// pipeline stages (a stage that has started runs to completion, so
    /// the overshoot is bounded by one stage). An expired deadline
    /// surfaces as [`SearchError::Timeout`] carrying the partial stats.
    ///
    /// [`SearchEngine::execute_with`]: crate::engine::SearchEngine::execute_with
    #[must_use]
    pub fn timeout(self, budget: Duration) -> Self {
        self.deadline_at(Instant::now() + budget)
    }

    /// Sets the absolute deadline directly (what a server computes once
    /// at admission, so queueing time counts against the budget too).
    #[must_use]
    pub fn deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The execution deadline, if one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Nanoseconds [`SearchRequest::parse`] spent in the grammar
    /// (zero for requests built from a pre-parsed spec or query).
    #[must_use]
    pub fn parse_time_ns(&self) -> u64 {
        self.parse_ns
    }

    /// The parsed operator-grammar spec.
    #[must_use]
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// The lowered flat query.
    #[must_use]
    pub fn query(&self) -> &Query {
        self.spec.query()
    }

    /// The selected algorithm.
    #[must_use]
    pub fn kind(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// The `top_k` limit, if set.
    #[must_use]
    pub fn top_k_limit(&self) -> Option<usize> {
        self.top_k
    }

    /// The `max_fragments` cap, if set.
    #[must_use]
    pub fn max_fragments_cap(&self) -> Option<usize> {
        self.max_fragments
    }

    /// The explicit ranking weights, if set.
    #[must_use]
    pub fn rank_weights(&self) -> Option<&RankWeights> {
        self.weights.as_ref()
    }

    /// Whether execution ranks the hits (an explicit `weights` call or
    /// any `top_k`).
    #[must_use]
    pub fn is_ranked(&self) -> bool {
        self.weights.is_some() || self.top_k.is_some()
    }

    /// The weights execution will rank with (`None` when unranked).
    #[must_use]
    pub fn effective_weights(&self) -> Option<RankWeights> {
        if self.is_ranked() {
            Some(self.weights.unwrap_or_default())
        } else {
            None
        }
    }
}

/// One search hit: the fragment plus its ranking evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The meaningful fragment.
    pub fragment: Fragment,
    /// Combined rank score in `[0, 1]` (set when the request ranked).
    pub score: Option<f64>,
    /// The individual rank signals (specificity, compactness, density)
    /// behind [`Hit::score`], for explainability.
    pub signals: Option<[f64; 3]>,
}

/// The observability block of a [`SearchResponse`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// True when `top_k` / `max_fragments` cut hits away.
    pub truncated: bool,
    /// Meaningful fragments that survived the post-filter stage,
    /// before any truncation.
    pub total_before_top_k: usize,
    /// Fragments removed by the operator post-filters (phrase,
    /// exclusion, label).
    pub filtered_out: usize,
    /// Query terms the parser dropped as duplicates (raw, as typed).
    pub dropped_terms: Vec<String>,
    /// Query terms the parser rewrote, as `(raw, normalized)` pairs.
    pub normalized_terms: Vec<(String, String)>,
    /// How the anchor pass ran: legacy full merge or rarest-first
    /// gallop (see [`crate::plan`]). The full term order is available
    /// via `SearchEngine::explain`.
    pub plan_strategy: crate::plan::PlanStrategy,
    /// Query-order index of the rarest keyword (the gallop driver;
    /// 0 when the plan fell back to the full merge).
    pub plan_driver: u32,
    /// Total resolved postings across the query's keyword lists.
    pub plan_postings: u64,
    /// `(keyword × shard)` postings lookups skipped because a shard's
    /// keyword filter proved the term absent (0 on unsharded backends).
    pub shards_skipped: u32,
    /// RTFs whose fragment was never built because its score upper
    /// bound provably misses the requested `top_k`.
    pub rtfs_skipped_topk: u32,
}

/// What a search returns: scored hits, per-stage timings, stats.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// The hits — best-first when the request ranked, document order
    /// otherwise.
    pub hits: Vec<Hit>,
    /// Wall-clock per pipeline stage.
    pub timings: StageTimings,
    /// Truncation / filtering / parse observability.
    pub stats: SearchStats,
    /// The structured stage trace — `Some` exactly when the request
    /// set [`SearchRequest::trace`]. Where [`SearchResponse::timings`]
    /// is the coarse always-on summary, this is the fine-grained form:
    /// ordered wall-time spans (including per-keyword postings
    /// decodes) serializable to Chrome trace-event JSON.
    pub trace: Option<xks_obs::QueryTrace>,
}

impl SearchResponse {
    /// An empty response (some query keyword matched nothing).
    pub(crate) fn empty(timings: StageTimings, stats: SearchStats) -> Self {
        SearchResponse {
            hits: Vec::new(),
            timings,
            stats,
            trace: None,
        }
    }

    /// The hit fragments, in response order.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> {
        self.hits.iter().map(|h| &h.fragment)
    }

    /// Consumes the response into its fragments, in response order.
    #[must_use]
    pub fn into_fragments(self) -> Vec<Fragment> {
        self.hits.into_iter().map(|h| h.fragment).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let r = SearchRequest::parse("xml keyword")
            .unwrap()
            .algorithm(AlgorithmKind::MaxMatchRtf)
            .top_k(5)
            .max_fragments(100);
        assert_eq!(r.kind(), AlgorithmKind::MaxMatchRtf);
        assert_eq!(r.top_k_limit(), Some(5));
        assert_eq!(r.max_fragments_cap(), Some(100));
        assert!(r.is_ranked(), "top_k implies ranking");
        assert_eq!(r.effective_weights(), Some(RankWeights::default()));
        assert_eq!(r.query().keywords(), ["xml", "keyword"]);
    }

    #[test]
    fn defaults_are_unranked_valid_rtf() {
        let r = SearchRequest::parse("xml").unwrap();
        assert_eq!(r.kind(), AlgorithmKind::ValidRtf);
        assert!(!r.is_ranked());
        assert_eq!(r.effective_weights(), None);
        assert_eq!(r.top_k_limit(), None);
    }

    #[test]
    fn parse_errors_are_typed() {
        let err = SearchRequest::parse("\"unclosed").unwrap_err();
        assert!(matches!(
            err,
            SearchError::Parse(ParseError::UnclosedPhrase)
        ));
        assert!(err.to_string().contains("unclosed"));
    }

    #[test]
    fn query_error_absorbed() {
        let e: SearchError = QueryError::Empty.into();
        assert!(matches!(e, SearchError::Parse(ParseError::Empty)));
    }

    #[test]
    fn backend_error_chains_source() {
        use std::error::Error as _;
        let e = SearchError::Backend(SourceError::new("disk on fire"));
        assert!(e.to_string().contains("disk on fire"));
        assert!(e.source().is_some());
    }
}
