//! **ValidRTF** — meaningful Relaxed Tightest Fragments for XML keyword
//! search.
//!
//! This crate implements the primary contribution of *"Retrieving
//! Meaningful Relaxed Tightest Fragments for XML Keyword Search"*
//! (Kong, Gilleron, Lemay — EDBT 2009):
//!
//! * the **RTF** result model — one fragment per *interesting LCA*
//!   (ELCA) anchor, holding exactly the related keyword nodes
//!   ([`rtf`], [`fragment`]), formally specified by Definitions 1–2
//!   ([`spec`]);
//! * the **valid contributor** filter (Definition 4) that prunes RTFs
//!   without MaxMatch's false-positive and redundancy problems
//!   ([`mod@prune`]);
//! * the **ValidRTF** algorithm (Algorithm 1) and the revised/original
//!   **MaxMatch** baselines ([`algorithms`], [`engine`]);
//! * the §5.1 effectiveness metrics CFR / APR / APR′ / Max APR
//!   ([`metrics`]) and the four axiomatic XKS property checkers
//!   ([`axioms`]);
//! * RTF **ranking** ([`mod@rank`]) — the future-work stage §7 calls for.
//!
//! # Quickstart
//!
//! ```
//! use validrtf::engine::{AlgorithmKind, SearchEngine};
//! use xks_index::Query;
//! use xks_xmltree::parse;
//!
//! let tree = parse(
//!     "<pubs><paper><title>xml keyword search</title></paper>\
//!      <paper><title>skyline queries</title></paper></pubs>",
//! )
//! .unwrap();
//! let engine = SearchEngine::new(tree);
//! let query = Query::parse("xml keyword").unwrap();
//! let result = engine.search(&query, AlgorithmKind::ValidRtf);
//! assert_eq!(result.fragments.len(), 1);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod algorithms;
pub mod axioms;
pub mod engine;
pub mod executor;
pub mod fragment;
pub mod keyset;
pub mod metrics;
pub mod prune;
pub mod rank;
pub mod rtf;
pub mod scratch;
pub mod source;
pub mod spec;

pub use algorithms::{max_match_rtf, max_match_slca, valid_rtf};
pub use engine::{AlgorithmKind, SearchEngine};
pub use executor::{run_batch, run_batch_stats, BatchStats};
pub use fragment::Fragment;
pub use keyset::KeySet;
pub use metrics::{effectiveness, Effectiveness};
pub use prune::{prune, prune_owned, Policy};
pub use rank::{rank, RankWeights, RankedFragment};
pub use rtf::{get_rtf, get_rtf_from_merged, get_rtf_unchecked, Rtf};
pub use scratch::{QueryContext, QueryScratch};
pub use source::{CorpusSource, MemoryCorpus, SourceElement};
