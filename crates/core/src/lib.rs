//! **ValidRTF** — meaningful Relaxed Tightest Fragments for XML keyword
//! search.
//!
//! This crate implements the primary contribution of *"Retrieving
//! Meaningful Relaxed Tightest Fragments for XML Keyword Search"*
//! (Kong, Gilleron, Lemay — EDBT 2009):
//!
//! * the **RTF** result model — one fragment per *interesting LCA*
//!   (ELCA) anchor, holding exactly the related keyword nodes
//!   ([`rtf`], [`fragment`]), formally specified by Definitions 1–2
//!   ([`spec`]);
//! * the **valid contributor** filter (Definition 4) that prunes RTFs
//!   without MaxMatch's false-positive and redundancy problems
//!   ([`mod@prune`]);
//! * the **ValidRTF** algorithm (Algorithm 1) and the revised/original
//!   **MaxMatch** baselines ([`algorithms`], [`engine`]);
//! * the §5.1 effectiveness metrics CFR / APR / APR′ / Max APR
//!   ([`metrics`]) and the four axiomatic XKS property checkers
//!   ([`axioms`]);
//! * RTF **ranking** ([`mod@rank`]) — the future-work stage §7 calls for.
//!
//! # Quickstart
//!
//! Searches are described by a [`SearchRequest`] (query text in the
//! operator grammar plus execution knobs) and executed by
//! [`SearchEngine::execute`], which returns a [`SearchResponse`] of
//! scored hits or a typed [`SearchError`]:
//!
//! ```
//! use validrtf::{AlgorithmKind, SearchEngine, SearchRequest};
//! use xks_xmltree::parse;
//!
//! let tree = parse(
//!     "<pubs><paper><title>xml keyword search</title></paper>\
//!      <paper><title>skyline queries</title></paper></pubs>",
//! )
//! .unwrap();
//! let engine = SearchEngine::new(tree);
//! let request = SearchRequest::parse("xml keyword")?
//!     .algorithm(AlgorithmKind::ValidRtf)
//!     .top_k(10);
//! let response = engine.execute(&request)?;
//! assert_eq!(response.hits.len(), 1);
//! # Ok::<(), validrtf::SearchError>(())
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod algorithms;
pub mod axioms;
pub mod engine;
pub mod executor;
pub mod fragment;
pub mod keyset;
pub mod metrics;
pub mod mutable;
pub mod plan;
pub mod prune;
pub mod quality;
pub mod rank;
pub mod request;
pub mod rtf;
pub mod scratch;
pub mod shards;
pub mod source;
pub mod spec;
pub mod wire;

pub use algorithms::{max_match_rtf, max_match_slca, valid_rtf};
pub use engine::{AlgorithmKind, SearchEngine};
pub use executor::{run_batch, run_batch_stats, BatchResult, BatchStats};
pub use fragment::Fragment;
pub use keyset::KeySet;
pub use metrics::{effectiveness, Effectiveness};
pub use mutable::{MutableSource, MutationError};
pub use plan::{
    choose_driver, choose_strategy, KeywordFilter, KeywordStats, PlanReport, PlanStrategy, TermPlan,
};
pub use prune::{prune, prune_owned, Policy};
pub use quality::{assess, assess_all, AxiomCounts, QualityConfig, QualityReport};
pub use rank::{rank, score_fragment, RankWeights, RankedFragment};
pub use request::{Hit, SearchError, SearchRequest, SearchResponse, SearchStats, SearchTimeout};
pub use rtf::{get_rtf, get_rtf_from_merged, get_rtf_unchecked, Rtf};
pub use scratch::{QueryContext, QueryScratch};
pub use shards::ShardSet;
pub use source::{CorpusSource, MemoryCorpus, SourceElement, SourceError};
