//! Cost-based query planning: selectivity statistics, rarest-first
//! term ordering, and the gallop-vs-merge strategy choice.
//!
//! The anchor pass historically merged *every* posting of *every*
//! keyword (`xks_lca::merge_postings_into`), so one stop-word-ish term
//! dominated latency regardless of how selective the others were. The
//! planner instead:
//!
//! 1. reads per-keyword statistics ([`KeywordStats`]) that sealed
//!    backends store in the `.xks` keyword dict (format v2) or derive
//!    from the postings (v1);
//! 2. orders terms rarest-first and, when the skew pays for it
//!    ([`choose_strategy`]), drives the anchor pass by **galloping**
//!    from the rarest list (`xks_lca::gallop_elca`) instead of merging
//!    everything;
//! 3. lets the sharded backend *skip* `(keyword, shard)` probes via a
//!    per-shard [`KeywordFilter`] stored in the `.xksm` manifest;
//! 4. when `top_k` is set, bounds each RTF's best possible score so
//!    fragments that provably cannot enter the top k are never built
//!    (see `engine`).
//!
//! The chosen plan is surfaced per query as scalars in
//! [`crate::SearchStats`], as a `plan` trace stage, and in full via
//! [`PlanReport`] (the `xks explain` subcommand).

use xks_index::Query;
use xks_xmltree::Dewey;

use crate::source::CorpusSource;

/// Number of distinct documents a sorted posting run touches.
/// Documents are the second Dewey component (children of the corpus
/// root — the shard partition unit); sorted input makes distinct
/// ordinals consecutive, so one pass suffices. The root itself (a code
/// with no second component) counts as its own bucket.
#[must_use]
pub fn doc_frequency(deweys: &[Dewey]) -> u64 {
    let mut df = 0u64;
    let mut last: Option<Option<u32>> = None;
    for d in deweys {
        let doc = d.components().get(1).copied();
        if last != Some(doc) {
            df += 1;
            last = Some(doc);
        }
    }
    df
}

/// Sealed per-keyword selectivity statistics.
///
/// `None` from [`CorpusSource::keyword_stats`] means *unknown* — the
/// backend has no sealed statistics for the keyword (e.g. a mutable
/// delta touched it); the planner then falls back to the full merge.
/// `Some` with zero counts means the keyword is known absent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeywordStats {
    /// Total posting (keyword-node) count.
    pub postings: u64,
    /// Distinct documents containing the keyword (document frequency).
    pub docs: u64,
}

/// How the anchor pass executes the query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Legacy full k-way merge of all posting lists.
    #[default]
    FullMerge,
    /// Galloping intersection driven by the rarest list.
    Gallop,
}

impl PlanStrategy {
    /// Lowercase display name (`full-merge` / `gallop`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PlanStrategy::FullMerge => "full-merge",
            PlanStrategy::Gallop => "gallop",
        }
    }
}

/// Minimum ratio of total postings to the rarest list's length before
/// galloping pays for its per-candidate binary-search probes. Below
/// this the lists are near-uniform and the linear merge's cache
/// behavior wins.
pub const GALLOP_MIN_RATIO: u64 = 8;

/// Picks the anchor-pass strategy from the resolved list lengths.
/// Galloping requires at least two terms, sealed statistics for every
/// term (`all_sealed` — mutable deltas fall back to the merge), and
/// enough skew that the rarest list is [`GALLOP_MIN_RATIO`]× smaller
/// than the total.
#[must_use]
pub fn choose_strategy(lens: &[usize], all_sealed: bool) -> PlanStrategy {
    if !all_sealed || lens.len() < 2 {
        return PlanStrategy::FullMerge;
    }
    let total: u64 = lens.iter().map(|&l| l as u64).sum();
    let min = lens.iter().copied().min().unwrap_or(0) as u64;
    if total >= min.saturating_mul(GALLOP_MIN_RATIO) {
        PlanStrategy::Gallop
    } else {
        PlanStrategy::FullMerge
    }
}

/// Index of the rarest (shortest) list — the gallop driver. Ties break
/// toward the first list. Returns 0 for empty input.
#[must_use]
pub fn choose_driver(lens: &[usize]) -> usize {
    lens.iter()
        .enumerate()
        .min_by_key(|(_, &l)| l)
        .map_or(0, |(i, _)| i)
}

// ---------------------------------------------------------------------
// Per-shard keyword filter (manifest v2)

/// Smallest filter size in bits.
const FILTER_MIN_BITS: usize = 1024;
/// Largest filter size in bits (8 KiB per shard at the cap).
const FILTER_MAX_BITS: usize = 65536;
/// Hash probes per key.
const FILTER_PROBES: u32 = 2;

/// A small double-hashed Bloom filter over a shard's keyword
/// vocabulary, stored in the `.xksm` manifest so scatter-gather can
/// skip `(keyword, shard)` probes for shards that provably miss the
/// keyword. No false negatives: `may_contain` returning `false` is
/// proof of absence; `true` may be a false positive (~3% at the sized
/// 8 bits/key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordFilter {
    words: Vec<u64>,
}

impl KeywordFilter {
    /// Builds a filter sized for `keywords.len()` keys (~8 bits/key,
    /// clamped to `[1024, 65536]` bits, power-of-two).
    pub fn from_keywords<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let keys: Vec<_> = keywords.into_iter().collect();
        let bits = (keys.len().max(1).saturating_mul(8))
            .next_power_of_two()
            .clamp(FILTER_MIN_BITS, FILTER_MAX_BITS);
        let mut filter = KeywordFilter {
            words: vec![0u64; bits / 64],
        };
        for key in &keys {
            filter.insert(key.as_ref());
        }
        filter
    }

    /// Reconstructs a filter from its stored words. `None` unless the
    /// length is a power of two within the sizing bounds (corrupt or
    /// foreign manifests).
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> Option<Self> {
        let bits = words.len().checked_mul(64)?;
        if !(FILTER_MIN_BITS..=FILTER_MAX_BITS).contains(&bits) || !bits.is_power_of_two() {
            return None;
        }
        Some(KeywordFilter { words })
    }

    /// The backing words (for manifest serialization).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn insert(&mut self, keyword: &str) {
        let (h1, h2) = Self::probes(keyword);
        let mask = (self.words.len() as u64 * 64) - 1;
        for j in 0..FILTER_PROBES {
            let bit = (h1.wrapping_add(u64::from(j).wrapping_mul(h2))) & mask;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// `false` proves the shard has no postings for `keyword`.
    #[must_use]
    pub fn may_contain(&self, keyword: &str) -> bool {
        let (h1, h2) = Self::probes(keyword);
        let mask = (self.words.len() as u64 * 64) - 1;
        (0..FILTER_PROBES).all(|j| {
            let bit = (h1.wrapping_add(u64::from(j).wrapping_mul(h2))) & mask;
            self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// FNV-1a 64 split into two probe hashes (`h2` forced odd so the
    /// double-hash walk covers the power-of-two bit space).
    fn probes(keyword: &str) -> (u64, u64) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in keyword.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h & 0xffff_ffff, (h >> 32) | 1)
    }
}

// ---------------------------------------------------------------------
// Explain report

/// One term of an explained plan, in execution (rarest-first) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermPlan {
    /// The keyword.
    pub keyword: String,
    /// Resolved posting count.
    pub postings: u64,
    /// Sealed document frequency, `None` when the backend has no
    /// sealed statistics for this term.
    pub doc_freq: Option<u64>,
    /// Whether sealed statistics exist for this term.
    pub sealed: bool,
    /// Shards whose keyword filter proves this term absent (0 on
    /// unsharded backends).
    pub shards_skipped: u32,
}

/// The full plan for one query — what `xks explain` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// Terms in the planner's execution order (rarest first).
    pub terms: Vec<TermPlan>,
    /// Chosen anchor-pass strategy.
    pub strategy: PlanStrategy,
    /// Shard count of the backend (0 when unsharded).
    pub shards: u32,
}

impl PlanReport {
    /// Builds a report against one source: resolves each keyword's
    /// postings for exact lengths, reads sealed stats where available,
    /// and orders terms rarest-first. `shard_skips(keyword)` supplies
    /// the per-term filter-skip count (always 0 for unsharded
    /// backends).
    pub fn build(
        source: &dyn CorpusSource,
        query: &Query,
        shards: u32,
        mut shard_skips: impl FnMut(&str) -> u32,
    ) -> Result<Self, crate::source::SourceError> {
        let mut terms = Vec::with_capacity(query.len());
        let mut lens = Vec::with_capacity(query.len());
        for kw in query.keywords() {
            let postings = source.try_keyword_deweys(kw)?.len() as u64;
            let stats = source.keyword_stats(kw);
            lens.push(postings as usize);
            terms.push(TermPlan {
                keyword: kw.to_owned(),
                postings,
                doc_freq: stats.map(|s| s.docs),
                sealed: stats.is_some(),
                shards_skipped: shard_skips(kw),
            });
        }
        let all_sealed = terms.iter().all(|t| t.sealed);
        let strategy = choose_strategy(&lens, all_sealed);
        terms.sort_by(|a, b| a.postings.cmp(&b.postings).then(a.keyword.cmp(&b.keyword)));
        Ok(PlanReport {
            terms,
            strategy,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_requires_skew_and_sealed_stats() {
        // Uniform lists: merge.
        assert_eq!(choose_strategy(&[10, 12, 9], true), PlanStrategy::FullMerge);
        // Skewed: gallop.
        assert_eq!(choose_strategy(&[5, 1000], true), PlanStrategy::Gallop);
        // Same skew, unsealed stats: merge.
        assert_eq!(choose_strategy(&[5, 1000], false), PlanStrategy::FullMerge);
        // Single term: merge.
        assert_eq!(choose_strategy(&[1000], true), PlanStrategy::FullMerge);
        assert_eq!(choose_strategy(&[], true), PlanStrategy::FullMerge);
        // Boundary: total == min * ratio gallops.
        assert_eq!(choose_strategy(&[10, 70], true), PlanStrategy::Gallop);
        assert_eq!(choose_strategy(&[10, 60], true), PlanStrategy::FullMerge);
    }

    #[test]
    fn driver_is_rarest_first_tie() {
        assert_eq!(choose_driver(&[30, 4, 4, 99]), 1);
        assert_eq!(choose_driver(&[7]), 0);
        assert_eq!(choose_driver(&[]), 0);
    }

    #[test]
    fn filter_has_no_false_negatives() {
        let keys: Vec<String> = (0..500).map(|i| format!("kw{i}")).collect();
        let filter = KeywordFilter::from_keywords(keys.iter());
        for k in &keys {
            assert!(filter.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn filter_rejects_most_foreign_keys() {
        let keys: Vec<String> = (0..500).map(|i| format!("kw{i}")).collect();
        let filter = KeywordFilter::from_keywords(keys.iter());
        let false_positives = (0..1000)
            .filter(|i| filter.may_contain(&format!("other{i}")))
            .count();
        // ~8 bits/key, 2 probes => a few percent; 20% is a loose cap.
        assert!(false_positives < 200, "{false_positives} false positives");
    }

    #[test]
    fn filter_sizes_clamp_and_round_trip() {
        let tiny = KeywordFilter::from_keywords(["a"]);
        assert_eq!(tiny.words().len() * 64, 1024);
        let big = KeywordFilter::from_keywords((0..100_000).map(|i| format!("k{i}")));
        assert_eq!(big.words().len() * 64, 65536);
        let rebuilt = KeywordFilter::from_words(tiny.words().to_vec()).unwrap();
        assert_eq!(rebuilt, tiny);
        assert!(KeywordFilter::from_words(vec![0; 3]).is_none());
        assert!(KeywordFilter::from_words(Vec::new()).is_none());
        assert!(KeywordFilter::from_words(vec![0; 4096]).is_none());
    }
}
