//! Executable specification of Definitions 1 and 2.
//!
//! Definition 1 enumerates `ECT_Q` — all ways of choosing a non-empty
//! subset from every keyword-node list and uniting them. Definition 2
//! filters `ECT_Q` down to the Relaxed Tightest Fragments through three
//! conditions (uniqueness + completeness). This module implements them
//! with exponential enumeration as a ground-truth oracle — conditions 1
//! and 3 literally, condition 2 as *maximality among the condition-1∧3
//! survivors*: the literal text contradicts the paper's own Example 4
//! (see the inline comment at the condition-2 pass and `EXPERIMENTS.md`
//! "Findings" #1). Purpose:
//! the paper's analysis claim (1) — *"after getting all the interesting
//! LCA nodes, the getRTF procedure can retrieve all the basic RTFs"* —
//! is verified by differential tests between this oracle and the
//! `getLCA → getRTF` pipeline (see `tests/rtf_spec_oracle.rs`).
//!
//! Inputs must be tiny (the enumeration is `∏(2^|D_i|−1)`); the entry
//! point refuses anything above a hard bound instead of hanging.

use std::collections::BTreeSet;

use xks_xmltree::Dewey;

/// A partition in keyword-node form: the anchor and the sorted keyword
/// node set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpecRtf {
    /// `LCA(ECT_Q,j)`.
    pub anchor: Dewey,
    /// The keyword nodes of the partition.
    pub nodes: BTreeSet<Dewey>,
}

/// Upper bound on `∏(2^|D_i|−1)` before [`spec_rtfs`] refuses to run.
pub const MAX_ENUMERATION: u128 = 200_000;

/// Enumerates `ECT_Q` (Definition 1) as deduplicated unions, each with
/// its per-keyword decomposition implicit (recoverable as `E ∩ D_i`).
///
/// Returns `None` when the enumeration would exceed [`MAX_ENUMERATION`].
#[must_use]
pub fn enumerate_ect(sets: &[Vec<Dewey>]) -> Option<BTreeSet<BTreeSet<Dewey>>> {
    if sets.is_empty() || sets.iter().any(Vec::is_empty) {
        return Some(BTreeSet::new());
    }
    let mut size: u128 = 1;
    for s in sets {
        if s.len() > 16 {
            return None;
        }
        size = size.checked_mul((1u128 << s.len()) - 1)?;
        if size > MAX_ENUMERATION {
            return None;
        }
    }

    let mut out: BTreeSet<BTreeSet<Dewey>> = BTreeSet::new();
    let mut stack: Vec<BTreeSet<Dewey>> = vec![BTreeSet::new()];
    for list in sets {
        let mut next = Vec::new();
        for base in &stack {
            for subset_mask in 1u32..(1 << list.len()) {
                let mut e = base.clone();
                for (i, d) in list.iter().enumerate() {
                    if (subset_mask >> i) & 1 == 1 {
                        e.insert(d.clone());
                    }
                }
                next.push(e);
            }
        }
        stack = next;
    }
    out.extend(stack);
    Some(out)
}

fn lca_of(nodes: &BTreeSet<Dewey>) -> Dewey {
    let v: Vec<Dewey> = nodes.iter().cloned().collect();
    Dewey::lca_of_all(&v).expect("non-empty node set")
}

/// Non-empty subsets of a small slice, as vectors of references.
fn non_empty_subsets(items: &[Dewey]) -> Vec<BTreeSet<Dewey>> {
    let mut out = Vec::with_capacity((1 << items.len()) - 1);
    for mask in 1u32..(1 << items.len()) {
        let mut s = BTreeSet::new();
        for (i, d) in items.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                s.insert(d.clone());
            }
        }
        out.push(s);
    }
    out
}

/// Applies Definition 2's three conditions to the enumeration, returning
/// the RTF set. `None` when inputs are too large to enumerate.
#[must_use]
pub fn spec_rtfs(sets: &[Vec<Dewey>]) -> Option<Vec<SpecRtf>> {
    let ect = enumerate_ect(sets)?;
    let k = sets.len();
    let mut rtfs: Vec<SpecRtf> = Vec::new();

    'candidates: for e in &ect {
        let anchor = lca_of(e);
        // Decompose: E|i = E ∩ D_i, with every element of E in some D_i
        // by construction.
        let decomp: Vec<Vec<Dewey>> = sets
            .iter()
            .map(|di| {
                di.iter()
                    .filter(|d| e.contains(*d))
                    .cloned()
                    .collect::<Vec<Dewey>>()
            })
            .collect();
        if decomp.iter().any(Vec::is_empty) {
            continue; // not a covering combination (can't happen for ECT)
        }

        // Condition 1: every choice of non-empty subsets S_i ⊆ E|i has
        // the same LCA as E.
        {
            let subset_lists: Vec<Vec<BTreeSet<Dewey>>> =
                decomp.iter().map(|l| non_empty_subsets(l)).collect();
            let mut idx = vec![0usize; k];
            loop {
                let mut union: BTreeSet<Dewey> = BTreeSet::new();
                for (i, lists) in subset_lists.iter().enumerate() {
                    union.extend(lists[idx[i]].iter().cloned());
                }
                if lca_of(&union) != anchor {
                    continue 'candidates;
                }
                // advance mixed-radix counter
                let mut pos = 0;
                loop {
                    if pos == k {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < subset_lists[pos].len() {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == k {
                    break;
                }
            }
        }

        // Condition 3: no keyword node of E can participate in a
        // combination whose LCA is a proper descendant of the anchor.
        // Shrinking sets only deepens LCAs, so singleton probes decide.
        for ei in &decomp {
            for v in ei {
                let choices: Vec<&Vec<Dewey>> = sets.iter().collect();
                if exists_descendant_combination(&anchor, v, &choices) {
                    continue 'candidates;
                }
            }
        }

        rtfs.push(SpecRtf {
            anchor,
            nodes: e.clone(),
        });
    }

    // Condition 2 — maximality. The literal text ("no strict superset
    // of E|i within D_i preserves the LCA") contradicts the paper's own
    // Example 4: {n,t,a} is declared an RTF although adding r preserves
    // the LCA — because {n,t,r,a} is itself invalid (r violates rule 3).
    // The consistent reading, which also matches the getRTF dispatch, is
    // maximality *among the candidates that survive rules 1 and 3*: a
    // survivor is an RTF iff no strict superset with the same anchor
    // also survives.
    let survivors = rtfs;
    let mut out: Vec<SpecRtf> = survivors
        .iter()
        .filter(|e| {
            !survivors.iter().any(|bigger| {
                bigger.anchor == e.anchor
                    && bigger.nodes.len() > e.nodes.len()
                    && e.nodes.is_subset(&bigger.nodes)
            })
        })
        .cloned()
        .collect();
    out.sort();
    Some(out)
}

/// Is there a choice of one node per list such that
/// `LCA(v, picks…)` is a proper descendant of `anchor`?
///
/// Every candidate LCA is a prefix of `v`, so the deepest achievable
/// combination LCA has length `min(len(v), min over lists of the deepest
/// per-list `lca(v, ·)`)` — per-list choices are independent. The
/// combination is a proper descendant of `anchor` (an ancestor-or-self
/// of `v`) iff that length exceeds `anchor`'s.
fn exists_descendant_combination(anchor: &Dewey, v: &Dewey, lists: &[&Vec<Dewey>]) -> bool {
    debug_assert!(anchor.is_ancestor_or_self(v));
    let mut best_len = v.len();
    for list in lists {
        let deepest = list
            .iter()
            .map(|d| v.lca(d).len())
            .max()
            .expect("non-empty list");
        best_len = best_len.min(deepest);
    }
    best_len > anchor.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn list(items: &[&str]) -> Vec<Dewey> {
        items.iter().map(|s| d(s)).collect()
    }

    #[test]
    fn example_3_and_4_reproduced() {
        // Q = "Liu keyword" on Figure 1(a):
        // D1 = {n, r}, D2 = {t, r, a}; exactly two RTFs: {r} and {n,t,a}.
        let sets = vec![
            list(&["0.2.0.0.0.0", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.3.0", "0.2.0.2"]),
        ];
        // Example 3: |ECT_Q| = 11, not 21, because r occurs in both lists.
        let ect = enumerate_ect(&sets).unwrap();
        assert_eq!(ect.len(), 11);

        let rtfs = spec_rtfs(&sets).unwrap();
        assert_eq!(rtfs.len(), 2);
        assert_eq!(rtfs[0].anchor, d("0.2.0"));
        let nodes: Vec<String> = rtfs[0].nodes.iter().map(ToString::to_string).collect();
        assert_eq!(nodes, ["0.2.0.0.0.0", "0.2.0.1", "0.2.0.2"]);
        assert_eq!(rtfs[1].anchor, d("0.2.0.3.0"));
        assert_eq!(rtfs[1].nodes.len(), 1);
    }

    #[test]
    fn q3_spec_single_rtf_at_root() {
        let sets = vec![
            list(&["0.0"]),
            list(&["0.0", "0.2.0.1", "0.2.1.1"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
            list(&["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]),
        ];
        let rtfs = spec_rtfs(&sets).unwrap();
        assert_eq!(rtfs.len(), 1);
        assert_eq!(rtfs[0].anchor, d("0"));
        // All keyword nodes belong to the single partition.
        assert_eq!(rtfs[0].nodes.len(), 5);
    }

    #[test]
    fn refuses_oversized_inputs() {
        let big: Vec<Dewey> = (0..17).map(|i| Dewey::root().child(i)).collect();
        assert!(enumerate_ect(&[big.clone(), big]).is_none());
    }

    #[test]
    fn empty_sets_give_empty_spec() {
        assert_eq!(spec_rtfs(&[]), Some(vec![]));
        let sets = vec![list(&["0.1"]), vec![]];
        assert_eq!(spec_rtfs(&sets), Some(vec![]));
    }

    #[test]
    fn disjoint_keywords_single_rtf() {
        let sets = vec![list(&["0.0"]), list(&["0.1"])];
        let rtfs = spec_rtfs(&sets).unwrap();
        assert_eq!(rtfs.len(), 1);
        assert_eq!(rtfs[0].anchor, d("0"));
        assert_eq!(rtfs[0].nodes.len(), 2);
    }
}
