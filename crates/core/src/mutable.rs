//! The mutable read path: an immutable base corpus plus an in-memory
//! delta and a tombstone set.
//!
//! [`MutableSource`] is the `validrtf`-side half of the mutable-corpus
//! subsystem (`xks-persist`'s `MutableCorpus` owns the WAL and the
//! compactor; this type owns query semantics). It layers three pieces
//! under one [`CorpusSource`]:
//!
//! * an optional **base** — any immutable backend (sealed `.xks`
//!   shards, a `MemoryCorpus`, …) holding documents `0..next` at the
//!   time it was sealed;
//! * a **delta** — rows of documents inserted since, shredded by
//!   [`xks_store::shred_document`] into the base's label dictionary
//!   and addressed as `0.<ordinal>` subtrees;
//! * a **tombstone set** of deleted document ordinals, consulted at
//!   the anchor pass: [`MutableSource::keyword_deweys`] (the feed of
//!   `getKeywordNodes`) drops every posting inside a tombstoned
//!   document, so a deleted document can never anchor or join a
//!   result fragment.
//!
//! Document ordinals are assigned monotonically and **never reused** —
//! deletion leaves a hole. That makes the merge in the anchor pass a
//! plain concatenation (every delta posting sorts after every base
//! posting) and keeps replayed WALs unambiguous.
//!
//! Two deliberate staleness windows, both proven harmless by the query
//! engine's structure (and pinned by the differential tests):
//! the corpus root's stored *subtree* feature is not refreshed on
//! insert (fragment construction derives interior features by folding
//! keyword-node own-features, never reading stored subtree features
//! above keyword nodes), and [`MutableSource::node_count`] is an upper
//! bound that still counts tombstoned base documents (node counts feed
//! stats, never result sets).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, RwLock};

use xks_store::{shred, shred_document, ElementRow, ValueRow};
use xks_xmltree::{Dewey, ParseError, XmlTree};

use crate::source::{CorpusSource, SourceElement, SourceError};

/// Everything that can go wrong mutating a corpus.
#[derive(Debug)]
pub enum MutationError {
    /// The inserted document is not well-formed XML.
    Xml(ParseError),
    /// A delete (or replayed operation) named a document that does not
    /// exist or was already deleted.
    UnknownDocument(u32),
    /// A replayed insert carried an ordinal below the high-water mark —
    /// the log and the corpus disagree about history.
    OrdinalRegression {
        /// The ordinal the operation carried.
        ordinal: u32,
        /// The corpus's next unassigned ordinal.
        next: u32,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::Xml(e) => write!(f, "bad document: {e}"),
            MutationError::UnknownDocument(ord) => {
                write!(f, "document {ord} does not exist (or is already deleted)")
            }
            MutationError::OrdinalRegression { ordinal, next } => write!(
                f,
                "replayed ordinal {ordinal} regresses below the corpus high-water mark {next}"
            ),
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for MutationError {
    fn from(e: ParseError) -> Self {
        MutationError::Xml(e)
    }
}

/// The rows of one delta document, kept for compaction export.
#[derive(Debug, Clone)]
pub struct DeltaDoc {
    /// The document's top-level ordinal.
    pub ordinal: u32,
    /// Its `element`-table rows (deweys under `0.<ordinal>`).
    pub elements: Vec<ElementRow>,
    /// Its `value`-table rows.
    pub values: Vec<ValueRow>,
}

#[derive(Debug)]
struct State {
    base: Option<Arc<dyn CorpusSource>>,
    /// Shared label dictionary: the base's labels as a prefix, extended
    /// by names first seen in delta documents.
    labels: Vec<String>,
    root_label: u32,
    delta_postings: HashMap<String, Vec<Dewey>>,
    delta_elements: HashMap<Dewey, SourceElement>,
    delta_docs: Vec<DeltaDoc>,
    /// Root rows of a corpus created empty (no base holds them yet);
    /// exported to compaction so the sealed shards gain a root.
    root_rows: Option<(Vec<ElementRow>, Vec<ValueRow>)>,
    tombstones: BTreeSet<u32>,
    next_doc: u32,
}

impl State {
    /// True when `dewey` lies inside a tombstoned document.
    fn tombstoned(&self, dewey: &Dewey) -> bool {
        if self.tombstones.is_empty() {
            return false;
        }
        let comps = dewey.components();
        comps.len() >= 2 && self.tombstones.contains(&comps[1])
    }

    /// Folds one document's rows into the delta lookup structures
    /// (mirrors what `MemoryCorpus::new` derives for a whole corpus).
    fn fold_rows(&mut self, elements: &[ElementRow], values: &[ValueRow]) {
        let mut own: HashMap<&str, (String, String)> = HashMap::new();
        for row in values {
            match own.get_mut(row.dewey.as_str()) {
                None => {
                    own.insert(&row.dewey, (row.keyword.clone(), row.keyword.clone()));
                }
                Some((min, max)) => {
                    if row.keyword < *min {
                        min.clone_from(&row.keyword);
                    }
                    if row.keyword > *max {
                        max.clone_from(&row.keyword);
                    }
                }
            }
        }
        for row in elements {
            let dewey: Dewey = row.dewey.parse().expect("shredded dewey is valid");
            self.delta_elements.insert(
                dewey,
                SourceElement {
                    label: row.label,
                    level: row.level,
                    keyword_cid: own.get(row.dewey.as_str()).cloned(),
                    subtree_cid: row.content_feature.clone(),
                },
            );
        }
        // Per-keyword sorted+deduped deweys of this document; appending
        // them keeps the whole list sorted because every dewey of a
        // later document sorts after every dewey of an earlier one.
        let mut per_keyword: HashMap<&str, BTreeSet<Dewey>> = HashMap::new();
        for row in values {
            per_keyword
                .entry(&row.keyword)
                .or_default()
                .insert(row.dewey.parse().expect("shredded dewey is valid"));
        }
        for (keyword, deweys) in per_keyword {
            self.delta_postings
                .entry(keyword.to_owned())
                .or_default()
                .extend(deweys);
        }
    }
}

/// A corpus that accepts inserts and deletes while staying a valid
/// [`CorpusSource`] — see the module docs for the layering.
///
/// All mutation goes through `&self` (the engine shares sources behind
/// `Arc`); a single `RwLock` serializes writers against the read path.
#[derive(Debug)]
pub struct MutableSource {
    state: RwLock<State>,
}

impl MutableSource {
    /// Creates an empty corpus whose root element is `<root_label/>` —
    /// exactly what shredding the zero-document corpus produces, so an
    /// empty mutable corpus and an empty rebuilt corpus are
    /// indistinguishable.
    pub fn create(root_label: &str) -> Result<Self, MutationError> {
        let tree = xks_xmltree::parse(&format!("<{root_label}/>"))?;
        let doc = shred(&tree);
        let mut state = State {
            base: None,
            labels: doc.labels.clone(),
            root_label: doc.elements[0].label,
            delta_postings: HashMap::new(),
            delta_elements: HashMap::new(),
            delta_docs: Vec::new(),
            root_rows: Some((doc.elements.clone(), doc.values.clone())),
            tombstones: BTreeSet::new(),
            next_doc: 0,
        };
        state.fold_rows(&doc.elements, &doc.values);
        Ok(MutableSource {
            state: RwLock::new(state),
        })
    }

    /// Wraps a sealed base corpus holding documents `0..next_doc`.
    /// `labels` must be the base's own dictionary (delta documents
    /// extend it); the base must contain the corpus root `0`.
    #[must_use]
    pub fn from_base(base: Arc<dyn CorpusSource>, labels: Vec<String>, next_doc: u32) -> Self {
        let root_label = base
            .element_label(&Dewey::from_components(vec![0]))
            .expect("base corpus has a root element");
        MutableSource {
            state: RwLock::new(State {
                base: Some(base),
                labels,
                root_label,
                delta_postings: HashMap::new(),
                delta_elements: HashMap::new(),
                delta_docs: Vec::new(),
                root_rows: None,
                tombstones: BTreeSet::new(),
                next_doc,
            }),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, State> {
        self.state.read().unwrap_or_else(|e| {
            xks_obs::count_poison_recovery();
            e.into_inner()
        })
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, State> {
        self.state.write().unwrap_or_else(|e| {
            xks_obs::count_poison_recovery();
            e.into_inner()
        })
    }

    /// The ordinal the next insert will be assigned — what the WAL
    /// layer logs *before* applying the insert.
    #[must_use]
    pub fn next_ordinal(&self) -> u32 {
        self.read().next_doc
    }

    /// True when document `ordinal` exists and is not deleted.
    #[must_use]
    pub fn exists(&self, ordinal: u32) -> bool {
        let state = self.read();
        if state.tombstones.contains(&ordinal) || ordinal >= state.next_doc {
            return false;
        }
        let dewey = Dewey::from_components(vec![0, ordinal]);
        if state.delta_elements.contains_key(&dewey) {
            return true;
        }
        // Compaction never renumbers, so a base may have ordinal holes
        // from deletes sealed before it was built.
        state
            .base
            .as_ref()
            .is_some_and(|b| b.element_label(&dewey).is_some())
    }

    /// Inserts a document from XML text, returning its ordinal.
    pub fn insert_xml(&self, xml: &str) -> Result<u32, MutationError> {
        let tree = xks_xmltree::parse(xml)?;
        self.insert_tree(&tree)
    }

    /// Inserts an already-parsed document, returning its ordinal.
    pub fn insert_tree(&self, tree: &XmlTree) -> Result<u32, MutationError> {
        let ordinal = self.read().next_doc;
        self.apply_insert_tree(ordinal, tree)?;
        Ok(ordinal)
    }

    /// Applies an insert at an explicit ordinal — the WAL replay path.
    /// Ordinals must never regress; gaps are allowed (they are deletes
    /// whose tombstones compaction already sealed away).
    pub fn apply_insert(&self, ordinal: u32, xml: &str) -> Result<(), MutationError> {
        let tree = xks_xmltree::parse(xml)?;
        self.apply_insert_tree(ordinal, &tree)
    }

    fn apply_insert_tree(&self, ordinal: u32, tree: &XmlTree) -> Result<(), MutationError> {
        let mut state = self.write();
        if ordinal < state.next_doc {
            return Err(MutationError::OrdinalRegression {
                ordinal,
                next: state.next_doc,
            });
        }
        let root_label = state.root_label;
        let (elements, values) = shred_document(tree, ordinal, root_label, &mut state.labels);
        state.fold_rows(&elements, &values);
        state.delta_docs.push(DeltaDoc {
            ordinal,
            elements,
            values,
        });
        state.next_doc = ordinal + 1;
        Ok(())
    }

    /// Tombstones document `ordinal`; every posting and element inside
    /// it disappears from the read path immediately.
    pub fn delete(&self, ordinal: u32) -> Result<(), MutationError> {
        if !self.exists(ordinal) {
            return Err(MutationError::UnknownDocument(ordinal));
        }
        self.write().tombstones.insert(ordinal);
        Ok(())
    }

    /// Number of documents inserted since the base was sealed
    /// (tombstoned ones included — they still occupy delta memory).
    #[must_use]
    pub fn delta_doc_count(&self) -> usize {
        self.read().delta_docs.len()
    }

    /// Number of tombstoned documents.
    #[must_use]
    pub fn tombstone_count(&self) -> usize {
        self.read().tombstones.len()
    }

    /// Snapshot of the tombstoned ordinals, ascending.
    #[must_use]
    pub fn tombstones(&self) -> Vec<u32> {
        self.read().tombstones.iter().copied().collect()
    }

    /// Snapshot of the shared label dictionary.
    #[must_use]
    pub fn labels_snapshot(&self) -> Vec<String> {
        self.read().labels.clone()
    }

    /// True when a sealed base backs this source.
    #[must_use]
    pub fn has_base(&self) -> bool {
        self.read().base.is_some()
    }

    /// Exports every **live** row the base does not hold, in document
    /// order — compaction's input. Root rows lead when the corpus was
    /// created empty; tombstoned delta documents are dropped (their
    /// deletion is thereby sealed).
    #[must_use]
    pub fn export_delta_rows(&self) -> (Vec<ElementRow>, Vec<ValueRow>) {
        let state = self.read();
        let mut elements = Vec::new();
        let mut values = Vec::new();
        if let Some((e, v)) = &state.root_rows {
            elements.extend(e.iter().cloned());
            values.extend(v.iter().cloned());
        }
        for doc in &state.delta_docs {
            if state.tombstones.contains(&doc.ordinal) {
                continue;
            }
            elements.extend(doc.elements.iter().cloned());
            values.extend(doc.values.iter().cloned());
        }
        (elements, values)
    }

    /// Replaces the layering after compaction: the freshly sealed base
    /// takes over, the delta and tombstones reset. The ordinal
    /// high-water mark is preserved (sealed holes stay holes).
    pub fn swap_base(&self, base: Arc<dyn CorpusSource>, labels: Vec<String>) {
        let mut state = self.write();
        state.root_label = base
            .element_label(&Dewey::from_components(vec![0]))
            .expect("sealed base has a root element");
        state.base = Some(base);
        state.labels = labels;
        state.delta_postings.clear();
        state.delta_elements.clear();
        state.delta_docs.clear();
        state.root_rows = None;
        state.tombstones.clear();
    }
}

impl CorpusSource for MutableSource {
    fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
        let state = self.read();
        let mut out = match &state.base {
            Some(base) => base.keyword_deweys(keyword),
            None => Vec::new(),
        };
        if !state.tombstones.is_empty() {
            out.retain(|d| !state.tombstoned(d));
        }
        if let Some(delta) = state.delta_postings.get(keyword) {
            out.extend(delta.iter().filter(|d| !state.tombstoned(d)).cloned());
        }
        out
    }

    fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
        let state = self.read();
        if state.tombstoned(dewey) {
            return None;
        }
        if let Some(found) = state.delta_elements.get(dewey) {
            return Some(found.clone());
        }
        state.base.as_ref().and_then(|b| b.element(dewey))
    }

    fn keyword_stats(&self, keyword: &str) -> Option<crate::plan::KeywordStats> {
        // Sealed statistics exist only where the live overlay cannot
        // have changed them: any tombstone may have removed base
        // postings for any keyword, and a delta insert adds postings
        // the base never counted. Either case returns `None` (unknown)
        // so the planner falls back to the full merge — the mutable
        // differential test pins that fallback's equivalence.
        let state = self.read();
        if !state.tombstones.is_empty() || state.delta_postings.contains_key(keyword) {
            return None;
        }
        state.base.as_ref()?.keyword_stats(keyword)
    }

    fn element_label(&self, dewey: &Dewey) -> Option<u32> {
        let state = self.read();
        if state.tombstoned(dewey) {
            return None;
        }
        if let Some(found) = state.delta_elements.get(dewey) {
            return Some(found.label);
        }
        state.base.as_ref().and_then(|b| b.element_label(dewey))
    }

    fn label_name(&self, label: u32) -> Option<String> {
        self.read().labels.get(label as usize).cloned()
    }

    /// Upper bound: live delta elements plus the whole base, including
    /// any base documents tombstoned since (counting their nodes would
    /// mean scanning the base). Node counts feed stats and sanity
    /// checks, never result sets.
    fn node_count(&self) -> usize {
        let state = self.read();
        let base = state.base.as_ref().map_or(0, |b| b.node_count());
        let delta = state
            .delta_elements
            .keys()
            .filter(|d| !state.tombstoned(d))
            .count();
        base + delta
    }

    fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
        let state = self.read();
        let mut out = match &state.base {
            Some(base) => base.try_keyword_deweys(keyword)?,
            None => Vec::new(),
        };
        if !state.tombstones.is_empty() {
            out.retain(|d| !state.tombstoned(d));
        }
        if let Some(delta) = state.delta_postings.get(keyword) {
            out.extend(delta.iter().filter(|d| !state.tombstoned(d)).cloned());
        }
        Ok(out)
    }

    fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
        let state = self.read();
        if state.tombstoned(dewey) {
            return Ok(None);
        }
        if let Some(found) = state.delta_elements.get(dewey) {
            return Ok(Some(found.clone()));
        }
        match &state.base {
            Some(base) => base.try_element(dewey),
            None => Ok(None),
        }
    }

    fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
        let state = self.read();
        if state.tombstoned(dewey) {
            return Ok(None);
        }
        if let Some(found) = state.delta_elements.get(dewey) {
            return Ok(Some(found.label));
        }
        match &state.base {
            Some(base) => base.try_element_label(dewey),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AlgorithmKind, SearchEngine};
    use crate::request::SearchRequest;
    use crate::source::MemoryCorpus;

    fn render_all(engine: &SearchEngine, query: &str) -> Vec<String> {
        let request = SearchRequest::parse(query)
            .unwrap()
            .algorithm(AlgorithmKind::ValidRtf);
        let response = engine.execute(&request).unwrap();
        let source = engine.corpus().expect("source-backed engine");
        response
            .hits
            .iter()
            .map(|h| h.fragment.render_source(source))
            .collect()
    }

    /// Sealed statistics go *unknown* — never stale — the moment the
    /// live overlay could have changed them, so the planner falls back
    /// to the full-merge path for delta-touched keywords.
    #[test]
    fn keyword_stats_unknown_once_overlay_touches_them() {
        use crate::source::CorpusSource as _;
        let base = MemoryCorpus::new(shred(
            &xks_xmltree::parse("<pubs><paper><title>xml keyword search</title></paper></pubs>")
                .unwrap(),
        ));
        let labels = (0..)
            .map_while(|i| base.label_name(i))
            .collect::<Vec<String>>();
        assert!(base.keyword_stats("xml").is_some());
        let src = MutableSource::from_base(std::sync::Arc::new(base), labels, 1);
        // Untouched keywords delegate to the sealed base.
        assert!(src.keyword_stats("xml").is_some());
        assert_eq!(
            src.keyword_stats("xml").unwrap().postings,
            1,
            "delegated base stats"
        );
        // A delta insert makes exactly the touched keywords unknown.
        src.insert_xml("<paper><title>skyline xml</title></paper>")
            .unwrap();
        assert_eq!(src.keyword_stats("xml"), None, "delta-touched");
        assert_eq!(src.keyword_stats("skyline"), None, "delta-touched");
        assert!(src.keyword_stats("keyword").is_some(), "untouched");
        // Any tombstone invalidates everything.
        src.delete(0).unwrap();
        assert_eq!(src.keyword_stats("keyword"), None);
        // And the planner honors the fallback end-to-end.
        let engine = SearchEngine::from_owned_source(src);
        let r = engine
            .execute(&SearchRequest::parse("skyline xml").unwrap())
            .unwrap();
        assert_eq!(
            r.stats.plan_strategy,
            crate::plan::PlanStrategy::FullMerge,
            "unsealed stats force the merge path"
        );
    }

    /// Insert-only interleaving: the mutable source must answer
    /// identically to shredding the equivalent whole corpus.
    #[test]
    fn inserts_match_rebuild_from_scratch() {
        let src = MutableSource::create("pubs").unwrap();
        src.insert_xml("<paper><title>xml keyword search</title></paper>")
            .unwrap();
        src.insert_xml("<paper><title>skyline keyword queries</title></paper>")
            .unwrap();

        let oracle = MemoryCorpus::new(shred(
            &xks_xmltree::parse(
                "<pubs><paper><title>xml keyword search</title></paper>\
                 <paper><title>skyline keyword queries</title></paper></pubs>",
            )
            .unwrap(),
        ));
        let mutable_engine = SearchEngine::from_owned_source(src);
        let oracle_engine = SearchEngine::from_owned_source(oracle);
        for q in ["xml keyword", "skyline", "keyword", "title search"] {
            assert_eq!(
                render_all(&mutable_engine, q),
                render_all(&oracle_engine, q),
                "query {q:?}"
            );
        }
    }

    /// Deleting a document removes it from the anchor pass immediately.
    #[test]
    fn delete_tombstones_the_anchor_pass() {
        let src = MutableSource::create("pubs").unwrap();
        let keep = src
            .insert_xml("<paper><title>xml keyword</title></paper>")
            .unwrap();
        let drop = src
            .insert_xml("<paper><title>xml skyline</title></paper>")
            .unwrap();
        assert_eq!(src.keyword_deweys("xml").len(), 2);
        src.delete(drop).unwrap();
        assert!(src.exists(keep));
        assert!(!src.exists(drop));
        let xml_nodes = src.keyword_deweys("xml");
        assert_eq!(xml_nodes.len(), 1);
        assert_eq!(xml_nodes[0].components()[1], keep);
        assert!(src.keyword_deweys("skyline").is_empty());
        assert!(src
            .element(&Dewey::from_components(vec![0, drop]))
            .is_none());
        // Deleting again (or a never-assigned ordinal) is typed.
        assert!(matches!(
            src.delete(drop),
            Err(MutationError::UnknownDocument(_))
        ));
        assert!(matches!(
            src.delete(99),
            Err(MutationError::UnknownDocument(99))
        ));
    }

    /// Ordinals are never reused after a delete, so replay stays
    /// unambiguous.
    #[test]
    fn ordinals_are_never_reused() {
        let src = MutableSource::create("pubs").unwrap();
        let a = src.insert_xml("<a><t>alpha</t></a>").unwrap();
        src.delete(a).unwrap();
        let b = src.insert_xml("<b><t>beta</t></b>").unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(matches!(
            src.apply_insert(0, "<c/>"),
            Err(MutationError::OrdinalRegression {
                ordinal: 0,
                next: 2
            })
        ));
    }

    /// New labels from delta documents extend the dictionary without
    /// renumbering existing labels.
    #[test]
    fn delta_labels_extend_the_dictionary() {
        let src = MutableSource::create("pubs").unwrap();
        let before = src.labels_snapshot();
        src.insert_xml("<paper><venue>edbt</venue></paper>")
            .unwrap();
        let after = src.labels_snapshot();
        assert_eq!(&after[..before.len()], &before[..]);
        assert!(after.iter().any(|l| l == "venue"));
        let venue_nodes = src.keyword_deweys("venue");
        assert_eq!(venue_nodes.len(), 1);
        let label = src.element_label(&venue_nodes[0]).unwrap();
        assert_eq!(src.label_name(label).as_deref(), Some("venue"));
    }

    /// Malformed XML is rejected before any state changes.
    #[test]
    fn bad_xml_is_rejected_atomically() {
        let src = MutableSource::create("pubs").unwrap();
        assert!(matches!(
            src.insert_xml("<broken><unclosed>"),
            Err(MutationError::Xml(_))
        ));
        assert_eq!(src.next_ordinal(), 0);
        assert_eq!(src.delta_doc_count(), 0);
    }
}
