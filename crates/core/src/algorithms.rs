//! End-to-end algorithms: ValidRTF (Algorithm 1) and the MaxMatch
//! baselines.
//!
//! All three share the staged shape of Algorithm 1 —
//! `getKeywordNodes → getLCA → getRTF → pruneRTF` — and differ in the
//! anchor semantics and the pruning policy:
//!
//! | algorithm           | anchors (`getLCA`)          | pruning            |
//! |---------------------|-----------------------------|--------------------|
//! | [`valid_rtf`]       | all interesting LCAs (ELCA) | valid contributor  |
//! | [`max_match_rtf`]   | all interesting LCAs (ELCA) | contributor        |
//! | [`max_match_slca`]  | SLCA only                   | contributor        |
//!
//! `max_match_rtf` is the paper's "revised MaxMatch" used in every
//! comparison (§4.3 footnote 10); `max_match_slca` is Liu & Chen's
//! original algorithm, kept for the SLCA-vs-LCA illustrations of
//! Example 1.

use std::time::{Duration, Instant};

use xks_index::{InvertedIndex, KeywordNodeSets, Query};
use xks_lca::{elca_into_context, slca_into_context};
use xks_xmltree::XmlTree;

use crate::fragment::Fragment;
use crate::prune::{prune, Policy};
use crate::rtf::{get_rtf_from_merged, Rtf};
use crate::scratch::QueryContext;
use crate::source::CorpusSource;

/// Which anchor semantics stage 2 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorSemantics {
    /// All interesting LCA nodes (ELCA) — the paper's `getLCA`.
    AllLca,
    /// Smallest LCAs only — original MaxMatch.
    SlcaOnly,
}

/// Per-stage wall-clock timings of one run (for the Figure 5 harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// `getKeywordNodes` (index resolution).
    pub get_keyword_nodes: Duration,
    /// `getLCA`.
    pub get_lca: Duration,
    /// `getRTF`.
    pub get_rtf: Duration,
    /// `pruneRTF` (construction + pruning).
    pub prune_rtf: Duration,
    /// Everything after the paper's pipeline: the operator post-filter
    /// stage (including its exclusion-posting lookups), ranking, and
    /// hit materialization. Zero on the legacy four-stage entry points.
    pub post_process: Duration,
}

impl StageTimings {
    /// Total elapsed time over all stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.get_keyword_nodes + self.get_lca + self.get_rtf + self.prune_rtf + self.post_process
    }

    /// Elapsed time excluding keyword-node retrieval and response
    /// post-processing — the paper's measurement boundary ("we record
    /// the elapsed time after retrieving the Dewey codes of the
    /// keyword nodes", §5.3, over its four-stage pipeline).
    #[must_use]
    pub fn algorithm_time(&self) -> Duration {
        self.get_lca + self.get_rtf + self.prune_rtf
    }
}

/// Result of a full run: the meaningful fragments plus instrumentation.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The pruned (meaningful) fragments, in anchor document order.
    pub fragments: Vec<Fragment>,
    /// The raw (unpruned) fragments, same order.
    pub raw: Vec<Fragment>,
    /// The keyword-node partitions.
    pub rtfs: Vec<Rtf>,
    /// Per-stage timings.
    pub timings: StageTimings,
}

/// Runs the staged pipeline with explicit anchor semantics and pruning
/// policy. Returns `None` when some query keyword has no match.
#[must_use]
pub fn run(
    tree: &XmlTree,
    index: &InvertedIndex,
    query: &Query,
    anchors: AnchorSemantics,
    policy: Policy,
) -> Option<RunOutput> {
    let mut timings = StageTimings::default();

    let t0 = Instant::now();
    let sets = index.resolve(query)?;
    timings.get_keyword_nodes = t0.elapsed();

    Some(run_from_sets(tree, &sets, anchors, policy, timings))
}

/// Like [`run`] but starting from already-resolved keyword-node sets —
/// the timing boundary the paper uses ("we record the elapsed time
/// *after retrieving the Dewey codes* of the keyword nodes", §5.3).
#[must_use]
pub fn run_from_sets(
    tree: &XmlTree,
    sets: &KeywordNodeSets,
    anchors: AnchorSemantics,
    policy: Policy,
    timings: StageTimings,
) -> RunOutput {
    let mut ctx = QueryContext::default();
    run_from_sets_with_context(tree, sets, anchors, policy, timings, &mut ctx)
}

/// How [`anchor_stages`] computes anchors and the dispatch stream: the
/// legacy full k-way merge, or the planner's rarest-first gallop
/// (anchors via `xks_lca::gallop_elca`, dispatch stream via anchored
/// extraction — proven anchor- and RTF-identical to the merge by the
/// lca crate's differential tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AnchorExec {
    /// Merge every posting list, then the stack pass (legacy path).
    Merge,
    /// Gallop from the rarest list (its index in query order).
    Gallop {
        /// Index of the driving (rarest) keyword list.
        driver: usize,
    },
}

/// `getLCA` + `getRTF` with shared buffers: merge the posting stream
/// **once** into the context, compute anchors from it, dispatch keyword
/// nodes over it. Returns the RTFs; anchors stay in `ctx.anchors`.
/// (Crate-visible: `SearchEngine::execute_with` drives the same stages.)
pub(crate) fn anchor_stages(
    sets: &KeywordNodeSets,
    anchors: AnchorSemantics,
    exec: AnchorExec,
    timings: &mut StageTimings,
    ctx: &mut QueryContext,
) -> Vec<Rtf> {
    let t = Instant::now();
    match (anchors, exec) {
        (AnchorSemantics::AllLca, AnchorExec::Merge) => elca_into_context(sets.sets(), ctx),
        (AnchorSemantics::SlcaOnly, AnchorExec::Merge) => slca_into_context(sets.sets(), ctx),
        (AnchorSemantics::AllLca, AnchorExec::Gallop { driver }) => {
            xks_lca::planned_elca_into_context(sets.sets(), driver, ctx);
        }
        (AnchorSemantics::SlcaOnly, AnchorExec::Gallop { .. }) => {
            xks_lca::planned_slca_into_context(sets.sets(), ctx);
        }
    }
    timings.get_lca = t.elapsed();
    ctx.trace.record_since(xks_obs::Stage::MergeAnchor, t);

    let t = Instant::now();
    let rtfs = get_rtf_from_merged(&ctx.anchors, &ctx.merged, sets);
    timings.get_rtf = t.elapsed();
    ctx.trace.record_since(xks_obs::Stage::RtfDispatch, t);
    rtfs
}

/// Like [`run_from_sets`] but reusing a caller-owned per-thread
/// [`QueryContext`] — the warm-engine entry point
/// [`crate::engine::SearchEngine`] and the [`crate::executor`] use.
#[must_use]
pub fn run_from_sets_with_context(
    tree: &XmlTree,
    sets: &KeywordNodeSets,
    anchors: AnchorSemantics,
    policy: Policy,
    mut timings: StageTimings,
    ctx: &mut QueryContext,
) -> RunOutput {
    let rtfs = anchor_stages(sets, anchors, AnchorExec::Merge, &mut timings, ctx);

    let t = Instant::now();
    let raw: Vec<Fragment> = rtfs.iter().map(|r| Fragment::construct(tree, r)).collect();
    let fragments: Vec<Fragment> = raw.iter().map(|f| prune(f, policy)).collect();
    timings.prune_rtf = t.elapsed();

    RunOutput {
        fragments,
        raw,
        rtfs,
        timings,
    }
}

/// Like [`run`] but over a [`CorpusSource`] (shredded tables or an
/// opened on-disk index) instead of a parsed tree + in-memory index.
/// The staged pipeline is identical; only where node facts come from
/// differs, so results are byte-identical across backends storing the
/// same shredded corpus.
#[must_use]
pub fn run_source(
    source: &dyn CorpusSource,
    query: &Query,
    anchors: AnchorSemantics,
    policy: Policy,
) -> Option<RunOutput> {
    let mut timings = StageTimings::default();

    let t0 = Instant::now();
    let sets = source.resolve(query)?;
    timings.get_keyword_nodes = t0.elapsed();

    Some(run_from_sets_source(
        source, &sets, anchors, policy, timings,
    ))
}

/// Like [`run_from_sets`] but over a [`CorpusSource`].
#[must_use]
pub fn run_from_sets_source(
    source: &dyn CorpusSource,
    sets: &KeywordNodeSets,
    anchors: AnchorSemantics,
    policy: Policy,
    timings: StageTimings,
) -> RunOutput {
    let mut ctx = QueryContext::default();
    run_from_sets_source_with_context(source, sets, anchors, policy, timings, &mut ctx)
}

/// Like [`run_from_sets_source`] but reusing a caller-owned per-thread
/// [`QueryContext`].
#[must_use]
pub fn run_from_sets_source_with_context(
    source: &dyn CorpusSource,
    sets: &KeywordNodeSets,
    anchors: AnchorSemantics,
    policy: Policy,
    mut timings: StageTimings,
    ctx: &mut QueryContext,
) -> RunOutput {
    let rtfs = anchor_stages(sets, anchors, AnchorExec::Merge, &mut timings, ctx);

    let t = Instant::now();
    let raw: Vec<Fragment> = rtfs
        .iter()
        .map(|r| Fragment::construct_from_source(source, r))
        .collect();
    let fragments: Vec<Fragment> = raw.iter().map(|f| prune(f, policy)).collect();
    timings.prune_rtf = t.elapsed();

    RunOutput {
        fragments,
        raw,
        rtfs,
        timings,
    }
}

/// ValidRTF (Algorithm 1): meaningful RTFs at all interesting LCA nodes,
/// valid-contributor pruning.
#[must_use]
pub fn valid_rtf(tree: &XmlTree, index: &InvertedIndex, query: &Query) -> Vec<Fragment> {
    run(
        tree,
        index,
        query,
        AnchorSemantics::AllLca,
        Policy::ValidContributor,
    )
    .map(|o| o.fragments)
    .unwrap_or_default()
}

/// Revised MaxMatch: same RTFs, contributor pruning.
#[must_use]
pub fn max_match_rtf(tree: &XmlTree, index: &InvertedIndex, query: &Query) -> Vec<Fragment> {
    run(
        tree,
        index,
        query,
        AnchorSemantics::AllLca,
        Policy::Contributor,
    )
    .map(|o| o.fragments)
    .unwrap_or_default()
}

/// Original MaxMatch: SLCA anchors, contributor pruning.
#[must_use]
pub fn max_match_slca(tree: &XmlTree, index: &InvertedIndex, query: &Query) -> Vec<Fragment> {
    run(
        tree,
        index,
        query,
        AnchorSemantics::SlcaOnly,
        Policy::Contributor,
    )
    .map(|o| o.fragments)
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::fixtures::{publications, team, PAPER_QUERIES};
    use xks_xmltree::Dewey;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn q2_slca_vs_all_lca_anchor_counts() {
        // Example 1: SLCA semantics sees only the ref fragment; the
        // all-LCA semantics also returns the article fragment.
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        let slca = max_match_slca(&tree, &index, &q(PAPER_QUERIES[1]));
        assert_eq!(slca.len(), 1);
        assert_eq!(slca[0].anchor, d("0.2.0.3.0"));
        let all = valid_rtf(&tree, &index, &q(PAPER_QUERIES[1]));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].anchor, d("0.2.0"));
        assert_eq!(all[1].anchor, d("0.2.0.3.0"));
    }

    #[test]
    fn unmatched_keyword_returns_empty() {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        assert!(valid_rtf(&tree, &index, &q("liu unobtainium")).is_empty());
        assert!(max_match_rtf(&tree, &index, &q("liu unobtainium")).is_empty());
    }

    #[test]
    fn run_reports_all_artifacts() {
        let tree = team();
        let index = InvertedIndex::build(&tree);
        let out = run(
            &tree,
            &index,
            &q("grizzlies position"),
            AnchorSemantics::AllLca,
            Policy::ValidContributor,
        )
        .unwrap();
        assert_eq!(out.fragments.len(), 1);
        assert_eq!(out.raw.len(), 1);
        assert_eq!(out.rtfs.len(), 1);
        assert!(out.raw[0].len() >= out.fragments[0].len());
        assert!(out.timings.total() > Duration::ZERO);
    }

    #[test]
    fn stage_timings_arithmetic() {
        let t = StageTimings {
            get_keyword_nodes: Duration::from_millis(5),
            get_lca: Duration::from_millis(2),
            get_rtf: Duration::from_millis(3),
            prune_rtf: Duration::from_millis(4),
            post_process: Duration::from_millis(1),
        };
        assert_eq!(t.total(), Duration::from_millis(15));
        // The paper's measurement boundary excludes keyword retrieval
        // and the response post-processing outside its pipeline.
        assert_eq!(t.algorithm_time(), Duration::from_millis(9));
    }

    #[test]
    fn run_from_sets_matches_run() {
        // Feeding pre-resolved keyword-node sets must produce the same
        // fragments as the end-to-end entry point.
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        let query = q("liu keyword");
        let via_run = run(
            &tree,
            &index,
            &query,
            AnchorSemantics::AllLca,
            Policy::ValidContributor,
        )
        .unwrap();
        let sets = index.resolve(&query).unwrap();
        let via_sets = run_from_sets(
            &tree,
            &sets,
            AnchorSemantics::AllLca,
            Policy::ValidContributor,
            StageTimings::default(),
        );
        assert_eq!(via_run.fragments, via_sets.fragments);
        assert_eq!(via_run.rtfs, via_sets.rtfs);
    }

    #[test]
    fn valid_rtf_and_maxmatch_share_anchors() {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        for query in PAPER_QUERIES.iter().take(3) {
            let v = valid_rtf(&tree, &index, &q(query));
            let x = max_match_rtf(&tree, &index, &q(query));
            let va: Vec<&Dewey> = v.iter().map(|f| &f.anchor).collect();
            let xa: Vec<&Dewey> = x.iter().map(|f| &f.anchor).collect();
            assert_eq!(va, xa, "anchor sets differ for {query}");
        }
    }

    #[test]
    fn fragments_ordered_by_anchor() {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        let frags = valid_rtf(&tree, &index, &q("skyline query"));
        let anchors: Vec<&Dewey> = frags.iter().map(|f| &f.anchor).collect();
        let mut sorted = anchors.clone();
        sorted.sort();
        assert_eq!(anchors, sorted);
    }
}
