//! Ranking of meaningful RTFs — the paper's stated future work.
//!
//! §7: *"the ranking of the retrieved meaningful RTFs is still needed
//! for carrying out the keyword search over XML data, and this is also
//! a part of our future work."* This module supplies that missing
//! stage with a transparent, configurable scoring scheme built from
//! three signals the XKS literature converges on:
//!
//! * **specificity** — deeper anchors answer the query more precisely
//!   than shallow ones (the intuition behind preferring SLCAs; XRank's
//!   decay has the same effect);
//! * **compactness** — among fragments covering the query, fewer glue
//!   nodes per keyword node means a tighter answer (the proximity
//!   intuition of GDMCT/MIU);
//! * **keyword density** — fragments whose keyword nodes each match
//!   many query keywords beat fragments assembling one keyword per
//!   node.
//!
//! Scores are normalized to `[0, 1]` per signal and combined by
//! configurable weights, so rankings are comparable across queries.

use crate::fragment::Fragment;

/// Weights of the three ranking signals. They need not sum to 1; the
/// combined score is normalized by the weight sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankWeights {
    /// Weight of anchor specificity (depth).
    pub specificity: f64,
    /// Weight of fragment compactness.
    pub compactness: f64,
    /// Weight of keyword density.
    pub density: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        RankWeights {
            specificity: 1.0,
            compactness: 1.0,
            density: 0.5,
        }
    }
}

/// A scored fragment.
#[derive(Debug, Clone)]
pub struct RankedFragment {
    /// Index into the input fragment list.
    pub index: usize,
    /// Combined score in `[0, 1]`, higher is better.
    pub score: f64,
    /// The individual signals (same order: specificity, compactness,
    /// density), for explainability.
    pub signals: [f64; 3],
}

/// Scores one fragment against a **global** depth normalizer — the
/// maximum anchor level over the whole candidate set, `.max(1)`, as a
/// float. Factored out of [`rank`] so the engine's top-k bound path
/// scores fragments one at a time with bit-identical arithmetic;
/// passing a `max_depth` computed over a *subset* of the candidates
/// changes scores and breaks that equivalence.
#[must_use]
pub fn score_fragment(
    f: &Fragment,
    k: usize,
    weights: &RankWeights,
    max_depth: f64,
) -> (f64, [f64; 3]) {
    let specificity = f.anchor.level() as f64 / max_depth;

    let keyword_nodes = f.iter().filter(|n| n.is_keyword).count().max(1);
    // 1.0 when every node is a keyword node; decays with glue.
    let compactness = keyword_nodes as f64 / f.len() as f64;

    // Average share of the query each keyword node matches.
    let density = f
        .iter()
        .filter(|n| n.is_keyword)
        .map(|n| n.kset.len() as f64 / k.max(1) as f64)
        .sum::<f64>()
        / keyword_nodes as f64;

    let signals = [specificity, compactness, density];
    let wsum = weights.specificity + weights.compactness + weights.density;
    let score = if wsum > 0.0 {
        (weights.specificity * specificity
            + weights.compactness * compactness
            + weights.density * density)
            / wsum
    } else {
        0.0
    };
    (score, signals)
}

/// Scores and sorts fragments, best first. `k` is the query keyword
/// count. Ties break toward the earlier (document-order) fragment, so
/// ranking is deterministic.
#[must_use]
pub fn rank(fragments: &[Fragment], k: usize, weights: &RankWeights) -> Vec<RankedFragment> {
    let max_depth = fragments
        .iter()
        .map(|f| f.anchor.level())
        .max()
        .unwrap_or(0)
        .max(1) as f64;

    let mut ranked: Vec<RankedFragment> = fragments
        .iter()
        .enumerate()
        .map(|(index, f)| {
            let (score, signals) = score_fragment(f, k, weights, max_depth);
            RankedFragment {
                index,
                score,
                signals,
            }
        })
        .collect();

    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::valid_rtf;
    use xks_index::{InvertedIndex, Query};
    use xks_xmltree::fixtures::publications;

    fn fragments(query: &str) -> (Vec<Fragment>, usize) {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        let q = Query::parse(query).unwrap();
        let k = q.len();
        (valid_rtf(&tree, &index, &q), k)
    }

    #[test]
    fn deeper_tighter_fragment_ranks_first() {
        // Q2 = "liu keyword": the single-node ref fragment (deep,
        // maximally compact, both keywords in one node) must beat the
        // article fragment.
        let (frags, k) = fragments("liu keyword");
        assert_eq!(frags.len(), 2);
        let ranked = rank(&frags, k, &RankWeights::default());
        assert_eq!(frags[ranked[0].index].anchor.to_string(), "0.2.0.3.0");
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn scores_are_normalized() {
        let (frags, k) = fragments("liu keyword");
        for r in rank(&frags, k, &RankWeights::default()) {
            assert!((0.0..=1.0).contains(&r.score), "score {}", r.score);
            for s in r.signals {
                assert!((0.0..=1.0).contains(&s), "signal {s}");
            }
        }
    }

    #[test]
    fn weights_steer_the_order() {
        let (frags, k) = fragments("liu keyword");
        // Zero out everything but compactness: ref (1 node, 1 keyword
        // node) still wins with compactness 1.0.
        let w = RankWeights {
            specificity: 0.0,
            compactness: 1.0,
            density: 0.0,
        };
        let ranked = rank(&frags, k, &w);
        assert_eq!(frags[ranked[0].index].anchor.to_string(), "0.2.0.3.0");
        assert!((ranked[0].signals[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_degenerate_gracefully() {
        let (frags, k) = fragments("liu keyword");
        let w = RankWeights {
            specificity: 0.0,
            compactness: 0.0,
            density: 0.0,
        };
        let ranked = rank(&frags, k, &w);
        assert!(ranked.iter().all(|r| r.score == 0.0));
        // Deterministic tie-break by document order.
        assert_eq!(ranked[0].index, 0);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(rank(&[], 2, &RankWeights::default()).is_empty());
    }
}
