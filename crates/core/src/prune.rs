//! The *pruning step* of `pruneRTF` — and the MaxMatch baseline filter.
//!
//! Both filters walk the fragment top-down from the anchor and decide,
//! per parent, which children survive; a discarded child takes its whole
//! subtree with it. They differ in the predicate:
//!
//! * [`Policy::ValidContributor`] — Definition 4 / Algorithm 1 lines
//!   16–26. Children are grouped by label. A unique-label child always
//!   survives (rule 1 — fixes MaxMatch's *false positive problem*).
//!   Within a same-label group, a child is discarded when its keyword
//!   set is a strict subset of a sibling's (rule 2(a), inherited from
//!   the contributor), and when its keyword set ties a kept sibling, it
//!   survives only if its content (cID) differs (rule 2(b) — fixes the
//!   *redundancy problem*).
//! * [`Policy::Contributor`] — MaxMatch's filter: a child survives iff
//!   **no sibling whatsoever** (any label) has a strictly larger keyword
//!   set.

use std::collections::HashSet;

use xks_xmltree::Dewey;

use crate::fragment::{Cid, FragNode, Fragment};

/// Which filtering mechanism to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's valid-contributor filter (ValidRTF).
    ValidContributor,
    /// MaxMatch's contributor filter (the baseline).
    Contributor,
}

/// The decision phase shared by both prune entry points: walks the
/// fragment from the anchor and returns the sorted Dewey set of
/// surviving nodes (Algorithm 1 line 16).
fn surviving_deweys(fragment: &Fragment, policy: Policy) -> Vec<Dewey> {
    let mut kept: Vec<Dewey> = vec![fragment.anchor.clone()];
    let mut queue: Vec<Dewey> = vec![fragment.anchor.clone()];
    while let Some(parent) = queue.pop() {
        let survivors = match policy {
            Policy::ValidContributor => valid_contributors(fragment, &parent),
            Policy::Contributor => contributors(fragment, &parent),
        };
        for child in survivors {
            kept.push(child.clone());
            queue.push(child);
        }
    }
    kept.sort_unstable();
    kept
}

/// Prunes a fragment under the chosen policy, returning the meaningful
/// fragment (a sub-fragment containing the anchor).
#[must_use]
pub fn prune(fragment: &Fragment, policy: Policy) -> Fragment {
    let kept = surviving_deweys(fragment, policy);
    let nodes: Vec<FragNode> = kept
        .iter()
        .map(|d| {
            let mut node = fragment.node(d).expect("kept node in fragment").clone();
            node.children.retain(|c| kept.binary_search(c).is_ok());
            node
        })
        .collect();
    Fragment::with_nodes(fragment.anchor.clone(), nodes)
}

/// Like [`prune`] but consuming the raw fragment: discarded nodes are
/// dropped and surviving ones **moved**, so the hot engine path never
/// deep-clones node payloads (children vectors, content-feature
/// strings) just to filter them.
#[must_use]
pub fn prune_owned(fragment: Fragment, policy: Policy) -> Fragment {
    let kept = surviving_deweys(&fragment, policy);
    let anchor = fragment.anchor.clone();
    let mut nodes = fragment.into_nodes();
    nodes.retain(|n| kept.binary_search(&n.dewey).is_ok());
    for node in &mut nodes {
        node.children.retain(|c| kept.binary_search(c).is_ok());
    }
    Fragment::with_nodes(anchor, nodes)
}

/// Definition 4: the children of `parent` that are valid contributors.
fn valid_contributors(fragment: &Fragment, parent: &Dewey) -> Vec<Dewey> {
    let mut out = Vec::new();
    for group in fragment.label_groups(parent) {
        if group.counter() == 1 {
            // Rule 1: unique label among siblings — always kept.
            out.push(group.children[0].dewey.clone());
            continue;
        }
        let mut used_ksets: HashSet<u64> = HashSet::new();
        let mut used_cids: HashSet<CidKey<'_>> = HashSet::new();
        for ch in &group.children {
            let knum = ch.kset.0;
            if used_ksets.contains(&knum) {
                // Rule 2(b): keyword set ties a kept sibling — keep only
                // novel content.
                if used_cids.insert(cid_key(&ch.cid)) {
                    out.push(ch.dewey.clone());
                }
            } else if group
                .children
                .iter()
                .any(|other| ch.kset.is_strict_subset(other.kset))
            {
                // Rule 2(a): a same-label sibling strictly covers it.
            } else {
                out.push(ch.dewey.clone());
                used_ksets.insert(knum);
                used_cids.insert(cid_key(&ch.cid));
            }
        }
    }
    // Groups are in first-appearance order; restore document order.
    out.sort_unstable();
    out
}

/// MaxMatch's contributor filter over all children of `parent`.
fn contributors(fragment: &Fragment, parent: &Dewey) -> Vec<Dewey> {
    let Some(node) = fragment.node(parent) else {
        return Vec::new();
    };
    let children: Vec<&FragNode> = node
        .children
        .iter()
        .map(|c| fragment.node(c).expect("child in fragment"))
        .collect();
    children
        .iter()
        .filter(|ch| {
            !children
                .iter()
                .any(|other| ch.kset.is_strict_subset(other.kset))
        })
        .map(|ch| ch.dewey.clone())
        .collect()
}

/// Hashable stand-in for a `cID` — borrowed, so rule 2(b) bookkeeping
/// never clones the feature strings (`None` compares distinct from
/// every concrete pair only via the empty sentinel).
type CidKey<'a> = (&'a str, &'a str);

fn cid_key(cid: &Cid) -> CidKey<'_> {
    cid.as_ref()
        .map_or(("", ""), |(min, max)| (min.as_str(), max.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::rtf::get_rtf;
    use xks_index::{InvertedIndex, Query};
    use xks_lca::elca_stack;
    use xks_xmltree::fixtures::{publications, team, PAPER_QUERIES};
    use xks_xmltree::XmlTree;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn fragments(tree: &XmlTree, query: &str) -> Vec<Fragment> {
        let index = InvertedIndex::build(tree);
        let sets = index.resolve(&Query::parse(query).unwrap()).unwrap();
        let anchors = elca_stack(sets.sets());
        get_rtf(&anchors, &sets)
            .iter()
            .map(|r| Fragment::construct(tree, r))
            .collect()
    }

    fn deweys(frag: &Fragment) -> Vec<String> {
        frag.deweys().iter().map(ToString::to_string).collect()
    }

    #[test]
    fn q3_valid_contributor_yields_figure_2d() {
        // Example 5 (closing) + Example 7: ValidRTF prunes article 0.2.1
        // (keyword set {title} ⊂ {title,xml,keyword,search} of the
        // same-label sibling 0.2.0) but keeps everything else.
        let tree = publications();
        let frags = fragments(&tree, PAPER_QUERIES[2]);
        assert_eq!(frags.len(), 1);
        let pruned = prune(&frags[0], Policy::ValidContributor);
        assert_eq!(
            deweys(&pruned),
            [
                "0",
                "0.0",
                "0.2",
                "0.2.0",
                "0.2.0.1",
                "0.2.0.2",
                "0.2.0.3",
                "0.2.0.3.0"
            ]
        );
    }

    #[test]
    fn q1_false_positive_fixed_by_valid_contributor() {
        // Example 2/5: MaxMatch discards title 0.2.1.1 (subset of the
        // abstract's keyword set); ValidRTF keeps it because its label
        // is unique among its siblings (rule 1).
        let tree = publications();
        let frags = fragments(&tree, PAPER_QUERIES[0]);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].anchor, d("0.2.1"));

        let valid = prune(&frags[0], Policy::ValidContributor);
        assert!(valid.contains(&d("0.2.1.1")), "title kept by ValidRTF");
        // Figure 3(b): the whole SLCA fragment survives.
        assert_eq!(deweys(&valid), deweys(&frags[0]));

        let mm = prune(&frags[0], Policy::Contributor);
        assert!(!mm.contains(&d("0.2.1.1")), "title dropped by MaxMatch");
        // Figure 3(c): everything else survives.
        assert_eq!(
            deweys(&mm),
            [
                "0.2.1",
                "0.2.1.0",
                "0.2.1.0.0",
                "0.2.1.0.0.0",
                "0.2.1.0.1",
                "0.2.1.0.1.0",
                "0.2.1.2"
            ]
        );
    }

    #[test]
    fn q4_redundancy_fixed_by_valid_contributor() {
        // Example 2/5 on the team segment: Q4 = "grizzlies position".
        // MaxMatch keeps all three players (equal keyword sets);
        // ValidRTF drops the duplicate {position, forward} player.
        let tree = team();
        let frags = fragments(&tree, PAPER_QUERIES[3]);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].anchor, d("0"));

        let mm = prune(&frags[0], Policy::Contributor);
        // Figure 3(d): all three position paths survive.
        for p in ["0.1.0", "0.1.1", "0.1.2"] {
            assert!(mm.contains(&d(p)), "MaxMatch keeps player {p}");
        }

        let valid = prune(&frags[0], Policy::ValidContributor);
        assert!(valid.contains(&d("0.1.0")), "first forward kept");
        assert!(valid.contains(&d("0.1.1")), "guard kept");
        assert!(
            !valid.contains(&d("0.1.2")),
            "duplicate forward discarded by rule 2(b)"
        );
        // The distinct position values both survive.
        assert!(valid.contains(&d("0.1.0.1")));
        assert!(valid.contains(&d("0.1.1.1")));
    }

    #[test]
    fn q5_positive_example_matches_maxmatch() {
        // Example 5 (covering the positive example): Q5 keeps only the
        // Gassol player under both filters — Figure 3(a).
        let tree = team();
        let frags = fragments(&tree, PAPER_QUERIES[4]);
        assert_eq!(frags.len(), 1);
        let valid = prune(&frags[0], Policy::ValidContributor);
        let mm = prune(&frags[0], Policy::Contributor);
        assert_eq!(deweys(&valid), deweys(&mm));
        assert!(valid.contains(&d("0.1.0")));
        assert!(!valid.contains(&d("0.1.1")));
        assert!(!valid.contains(&d("0.1.2")));
        assert!(valid.contains(&d("0.0")), "team name kept");
    }

    #[test]
    fn q2_both_rtfs_survive_unchanged() {
        // Q2 = "liu keyword": the ref RTF is a single node; the article
        // RTF has all-distinct labels below each parent → nothing to
        // prune under either policy.
        let tree = publications();
        let frags = fragments(&tree, PAPER_QUERIES[1]);
        assert_eq!(frags.len(), 2);
        for f in &frags {
            let v = prune(f, Policy::ValidContributor);
            assert_eq!(deweys(&v), deweys(f));
        }
    }

    #[test]
    fn pruned_fragment_children_links_consistent() {
        let tree = team();
        let frags = fragments(&tree, "grizzlies position");
        let valid = prune(&frags[0], Policy::ValidContributor);
        for n in valid.iter() {
            for c in &n.children {
                assert!(valid.contains(c), "dangling child {c}");
                assert_eq!(c.parent().as_ref(), Some(&n.dewey));
            }
        }
    }

    #[test]
    fn discarded_subtree_fully_removed() {
        let tree = publications();
        let frags = fragments(&tree, PAPER_QUERIES[2]);
        let valid = prune(&frags[0], Policy::ValidContributor);
        // 0.2.1 discarded → its descendant 0.2.1.1 gone too.
        assert!(!valid.contains(&d("0.2.1")));
        assert!(!valid.contains(&d("0.2.1.1")));
    }

    #[test]
    fn anchor_always_survives() {
        let tree = team();
        for q in ["grizzlies position", "gassol position", "position"] {
            for f in fragments(&tree, q) {
                for policy in [Policy::ValidContributor, Policy::Contributor] {
                    let p = prune(&f, policy);
                    assert!(p.contains(&f.anchor));
                }
            }
        }
    }
}
