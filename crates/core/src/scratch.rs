//! Reusable per-engine working memory for the query hot path.
//!
//! Every stage of Algorithm 1 needs transient buffers: the merged
//! document-ordered posting stream (shared by `getLCA` *and* `getRTF`,
//! which previously re-merged it), the anchor list, and the ELCA mask
//! stack. A [`QueryScratch`] owns all of them so a warm engine answers
//! queries without re-allocating any of it — combined with inline
//! [`Dewey`] codes this makes the anchor pipeline
//! allocation-free (asserted by the workspace's counting-allocator
//! test).

use xks_lca::ElcaScratch;
use xks_xmltree::Dewey;

/// Working buffers reused across queries by one engine (or one thread).
///
/// [`crate::engine::SearchEngine`] holds one behind a `RefCell`;
/// standalone callers of
/// [`crate::algorithms::run_from_sets_with_scratch`] can manage their
/// own.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Merged `(dewey, keyword-bitmask)` posting stream in document
    /// order — computed once per query, consumed by both `getLCA` and
    /// `getRTF`.
    pub(crate) merged: Vec<(Dewey, u64)>,
    /// The anchor nodes of the current query (ELCA or SLCA set).
    pub(crate) anchors: Vec<Dewey>,
    /// The ELCA stack's mask/path buffers.
    pub(crate) elca: ElcaScratch,
}

impl QueryScratch {
    /// A fresh scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the buffered capacity (e.g. after an unusually large
    /// query, to return memory to the allocator).
    pub fn shrink(&mut self) {
        *self = Self::default();
    }
}
