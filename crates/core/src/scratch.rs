//! Per-thread query working memory — re-exported from `xks-lca`.
//!
//! PR 2 introduced a per-engine `QueryScratch` holding the merged
//! posting stream, anchor list, and ELCA buffers. The concurrency
//! refactor generalized it into [`xks_lca::QueryContext`] — the
//! *mutable per-thread half* of the read path, owned one-per-thread by
//! the [`crate::executor`] and checked in/out of a pool by
//! [`crate::engine::SearchEngine::search`] — and moved it down into
//! `xks-lca` so the scratch-taking LCA entry points
//! ([`xks_lca::elca_into_context`], [`xks_lca::slca_into_context`])
//! accept it directly.

pub use xks_lca::QueryContext;

/// The pre-concurrency name of [`QueryContext`]. The scratch-taking
/// entry points themselves were renamed (`run_from_sets_with_scratch`
/// → [`crate::algorithms::run_from_sets_with_context`], and likewise
/// for the source form), so this alias only preserves the *type* name
/// for code that constructed a `QueryScratch` directly.
pub type QueryScratch = QueryContext;
