//! Materialized RTF fragments — the §4.1 node data structure and the
//! *constructing step* of `pruneRTF`.
//!
//! A [`Fragment`] is the tree induced by an RTF: the anchor, its keyword
//! nodes, and every node on the paths between them. Each node carries
//! the "Self Info" of §4.1 — Dewey code, label, `kList` ([`KeySet`]) and
//! `cID` content feature — and its "Children Info" is derivable on
//! demand as per-label groups ([`Fragment::label_groups`]): counter,
//! `chkList` (distinct key numbers) and `chcIDList`.
//!
//! Construction propagates each keyword node's keyword mask and content
//! feature to **all** its ancestors up to the anchor — the paper adds
//! lines 11–12 to `pruneRTF` precisely to guarantee this full
//! propagation; we implement the propagation directly per keyword node,
//! which yields the same summaries.

use xks_xmltree::content::{content_feature, node_content};
use xks_xmltree::{Dewey, LabelId, XmlTree};

use crate::keyset::KeySet;
use crate::rtf::Rtf;
use crate::source::{CorpusSource, SourceError};

/// The `cID` content feature: lexical `(min, max)` of a tree content
/// set (§4.1). `None` when no keyword-node content is below the node.
pub type Cid = Option<(String, String)>;

/// One node of a materialized fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragNode {
    /// Dewey code.
    pub dewey: Dewey,
    /// Interned label (resolve via the source tree's label table).
    pub label: LabelId,
    /// The tree keyword set `TK_v` restricted to this fragment
    /// (= `dMatch(v)` of MaxMatch).
    pub kset: KeySet,
    /// The content feature of the tree content set `TC_v` (Definition 3:
    /// union over the *keyword nodes* of the subtree).
    pub cid: Cid,
    /// `true` when the node is itself a keyword node of the query.
    pub is_keyword: bool,
    /// Children within the fragment, in document order.
    pub children: Vec<Dewey>,
}

/// A materialized RTF: anchor plus all path nodes, stored as one flat
/// vector **sorted by Dewey code** (= document order). Lookups are
/// binary searches; construction is a single stack pass over the
/// document-ordered keyword nodes, so building a fragment performs one
/// allocation for the vector instead of one tree node per entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// The anchor LCA node.
    pub anchor: Dewey,
    nodes: Vec<FragNode>,
}

/// One per-label child group of a node — the §4.1 "label item".
#[derive(Debug, Clone)]
pub struct LabelGroup<'a> {
    /// The shared label of the children in this group.
    pub label: LabelId,
    /// The children, in document order.
    pub children: Vec<&'a FragNode>,
}

impl LabelGroup<'_> {
    /// The group's `counter` field.
    #[must_use]
    pub fn counter(&self) -> usize {
        self.children.len()
    }

    /// The sorted distinct key numbers of the group (`chkList`).
    #[must_use]
    pub fn chk_list(&self, k: usize) -> Vec<u64> {
        let mut nums: Vec<u64> = self.children.iter().map(|c| c.kset.key_number(k)).collect();
        nums.sort_unstable();
        nums.dedup();
        nums
    }
}

/// The single-pass constructor shared by both backends: walks the
/// document-ordered keyword nodes with a stack mirroring the current
/// root-path inside the anchor subtree, emitting nodes **pre-order**
/// (= sorted by Dewey) and folding each popped child's keyword set and
/// content feature into its parent. One visit per fragment node instead
/// of one ancestor walk per keyword node, and no search tree.
fn construct_stream(
    anchor: &Dewey,
    knodes: &[(Dewey, KeySet)],
    mut label_of: impl FnMut(&Dewey) -> LabelId,
    mut keyword_cid_of: impl FnMut(&Dewey) -> Cid,
) -> Fragment {
    let mut nodes: Vec<FragNode> = Vec::new();
    let mut stack: Vec<usize> = Vec::new(); // indices into `nodes`, path order

    let mut open = |nodes: &mut Vec<FragNode>, stack: &mut Vec<usize>, dewey: Dewey| {
        let label = label_of(&dewey);
        if let Some(&parent) = stack.last() {
            nodes[parent].children.push(dewey.clone());
        }
        stack.push(nodes.len());
        nodes.push(FragNode {
            dewey,
            label,
            kset: KeySet::EMPTY,
            cid: None,
            is_keyword: false,
            children: Vec::new(),
        });
    };
    // Fold a popped child's summaries into its parent (§4.1's upward
    // propagation, done once per node instead of once per keyword
    // node × ancestor).
    let pop = |nodes: &mut Vec<FragNode>, stack: &mut Vec<usize>| {
        let child = stack.pop().expect("pop on non-empty stack");
        if let Some(&parent) = stack.last() {
            let (head, tail) = nodes.split_at_mut(child);
            let (parent, child) = (&mut head[parent], &tail[0]);
            parent.kset = parent.kset.union(child.kset);
            parent.cid = merge_cid_ref(parent.cid.take(), child.cid.as_ref());
        }
    };

    open(&mut nodes, &mut stack, anchor.clone());
    for (kd, mask) in knodes {
        debug_assert!(anchor.is_ancestor_or_self(kd), "knode outside anchor");
        let comps = kd.components();
        // Common prefix with the deepest open node bounds how far we
        // pop; the anchor itself always stays open.
        let deepest = &nodes[*stack.last().expect("anchor open")].dewey;
        let common = deepest
            .components()
            .iter()
            .zip(comps.iter())
            .take_while(|(a, b)| a == b)
            .count();
        while stack.len() > 1 && nodes[*stack.last().expect("non-empty")].dewey.len() > common {
            pop(&mut nodes, &mut stack);
        }
        // Open the path down to the keyword node.
        let mut open_len = nodes[*stack.last().expect("non-empty")].dewey.len();
        while open_len < comps.len() {
            open_len += 1;
            open(
                &mut nodes,
                &mut stack,
                Dewey::from_slice(&comps[..open_len]),
            );
        }
        // Mark the keyword node itself.
        let cid = keyword_cid_of(kd);
        let top = &mut nodes[*stack.last().expect("non-empty")];
        debug_assert_eq!(&top.dewey, kd);
        top.is_keyword = true;
        top.kset = top.kset.union(*mask);
        top.cid = merge_cid_ref(top.cid.take(), cid.as_ref());
    }
    while !stack.is_empty() {
        pop(&mut nodes, &mut stack);
    }

    Fragment {
        anchor: anchor.clone(),
        nodes,
    }
}

impl Fragment {
    /// Builds the fragment for one RTF — the constructing step.
    ///
    /// `tree` is the source document (for labels and keyword-node
    /// contents); `rtf` the keyword-node partition from
    /// [`crate::rtf::get_rtf`].
    #[must_use]
    pub fn construct(tree: &XmlTree, rtf: &Rtf) -> Self {
        construct_stream(
            &rtf.anchor,
            &rtf.knodes,
            |d| tree.node(tree_node(tree, d)).label,
            |d| {
                let content = node_content(tree, tree_node(tree, d));
                content_feature(&content)
            },
        )
    }

    /// Builds the fragment for one RTF from a [`CorpusSource`] — the
    /// same constructing step as [`Fragment::construct`], but reading
    /// node facts (label, own-content feature) from the storage
    /// abstraction instead of the parsed tree. Used by the engine when
    /// it runs over shredded tables or an on-disk index.
    ///
    /// Path nodes cost one [`CorpusSource::element_label`] each (no
    /// content strings materialized); only keyword nodes fetch the full
    /// element record for its own-content feature.
    ///
    /// Panics if the RTF references a Dewey code the corpus does not
    /// contain (keyword nodes always come from the same corpus, so this
    /// indicates a corrupted index).
    #[must_use]
    pub fn construct_from_source<S: CorpusSource + ?Sized>(source: &S, rtf: &Rtf) -> Self {
        construct_stream(
            &rtf.anchor,
            &rtf.knodes,
            |d| {
                LabelId(
                    source.element_label(d).unwrap_or_else(|| {
                        panic!("RTF references node {d} missing from the corpus")
                    }),
                )
            },
            |d| source_element(source, d).keyword_cid,
        )
    }

    /// Fallible form of [`Fragment::construct_from_source`]: backend
    /// failures (I/O, corruption, a node the corpus lost) surface as a
    /// typed [`SourceError`] instead of a panic — the constructing step
    /// `SearchEngine::execute` drives.
    pub fn try_construct_from_source<S: CorpusSource + ?Sized>(
        source: &S,
        rtf: &Rtf,
    ) -> Result<Self, SourceError> {
        use std::cell::RefCell;
        // The two lookup closures can't both borrow an error slot
        // mutably, so it rides in a RefCell; construction finishes the
        // walk on dummy facts after a failure and the error wins below.
        let first_error: RefCell<Option<SourceError>> = RefCell::new(None);
        let fail = |e: SourceError| {
            let mut slot = first_error.borrow_mut();
            if slot.is_none() {
                *slot = Some(e);
            }
        };
        let fragment = construct_stream(
            &rtf.anchor,
            &rtf.knodes,
            |d| match source.try_element_label(d) {
                Ok(Some(label)) => LabelId(label),
                Ok(None) => {
                    fail(SourceError::missing_node(d));
                    LabelId(0)
                }
                Err(e) => {
                    fail(e);
                    LabelId(0)
                }
            },
            |d| match source.try_element(d) {
                Ok(Some(element)) => element.keyword_cid,
                Ok(None) => {
                    fail(SourceError::missing_node(d));
                    None
                }
                Err(e) => {
                    fail(e);
                    None
                }
            },
        );
        match first_error.into_inner() {
            Some(e) => Err(e),
            None => Ok(fragment),
        }
    }

    /// A fragment with exactly the given nodes, which must be sorted in
    /// document order (used by the pruning step to emit the filtered
    /// result).
    #[must_use]
    pub(crate) fn with_nodes(anchor: Dewey, nodes: Vec<FragNode>) -> Self {
        debug_assert!(nodes.is_sorted_by(|a, b| a.dewey < b.dewey));
        Fragment { anchor, nodes }
    }

    /// Consumes the fragment into its sorted node vector (the owned
    /// pruning path).
    #[must_use]
    pub(crate) fn into_nodes(self) -> Vec<FragNode> {
        self.nodes
    }

    /// Node lookup (binary search over the sorted vector).
    #[must_use]
    pub fn node(&self, dewey: &Dewey) -> Option<&FragNode> {
        self.nodes
            .binary_search_by(|n| n.dewey.cmp(dewey))
            .ok()
            .map(|i| &self.nodes[i])
    }

    /// `true` when the fragment contains `dewey`.
    #[must_use]
    pub fn contains(&self, dewey: &Dewey) -> bool {
        self.node(dewey).is_some()
    }

    /// All nodes in document order.
    pub fn iter(&self) -> impl Iterator<Item = &FragNode> {
        self.nodes.iter()
    }

    /// All Dewey codes in document order.
    #[must_use]
    pub fn deweys(&self) -> Vec<Dewey> {
        self.nodes.iter().map(|n| n.dewey.clone()).collect()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Fragments are never empty (the anchor is always present).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The children of `dewey` grouped by distinct label, in order of
    /// first appearance — the `chlList` of §4.1.
    #[must_use]
    pub fn label_groups(&self, dewey: &Dewey) -> Vec<LabelGroup<'_>> {
        let Some(node) = self.node(dewey) else {
            return Vec::new();
        };
        let mut groups: Vec<LabelGroup<'_>> = Vec::new();
        for child_d in &node.children {
            let child = self.node(child_d).expect("child in fragment");
            match groups.iter_mut().find(|g| g.label == child.label) {
                Some(g) => g.children.push(child),
                None => groups.push(LabelGroup {
                    label: child.label,
                    children: vec![child],
                }),
            }
        }
        groups
    }

    /// Serializes the fragment as an XML snippet (kept nodes only),
    /// pulling labels, attributes, and keyword-node text from the
    /// source tree. Interior non-keyword nodes are emitted without
    /// text, matching the paper's figures which show only the matched
    /// values.
    #[must_use]
    pub fn to_xml(&self, tree: &XmlTree) -> String {
        fn emit(frag: &Fragment, tree: &XmlTree, d: &Dewey, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let node = frag.node(d).expect("emit called on fragment node");
            let label = tree.labels().name(node.label);
            let indent = "  ".repeat(depth);
            let _ = write!(out, "{indent}<{label}");
            if let Some(id) = tree.node_by_dewey(d) {
                for attr in &tree.node(id).attributes {
                    let _ = write!(
                        out,
                        " {}=\"{}\"",
                        attr.name,
                        xks_xmltree::writer::escape_attr(&attr.value)
                    );
                }
            }
            let text = if node.is_keyword {
                tree.node_by_dewey(d)
                    .and_then(|id| tree.node(id).text.clone())
            } else {
                None
            };
            if node.children.is_empty() && text.is_none() {
                out.push_str("/>\n");
                return;
            }
            out.push('>');
            if let Some(t) = &text {
                out.push_str(&xks_xmltree::writer::escape_text(t));
            }
            if !node.children.is_empty() {
                out.push('\n');
                for c in &node.children {
                    emit(frag, tree, c, depth + 1, out);
                }
                out.push_str(&"  ".repeat(depth));
            }
            let _ = writeln!(out, "</{label}>");
        }
        let mut out = String::new();
        emit(self, tree, &self.anchor, 0, &mut out);
        out
    }

    /// Renders one node's §4.1 data structure the way Figure 4(c)
    /// presents it: the "Self Info" frame (dewey, label, kList, key
    /// number, cID) and one "Children Info" line per label item
    /// (counter, chkList, chcIDList).
    ///
    /// `k` is the query keyword count (needed for the paper's key-number
    /// convention). Returns `None` for nodes outside the fragment.
    #[must_use]
    pub fn render_node_info(&self, tree: &XmlTree, dewey: &Dewey, k: usize) -> Option<String> {
        use std::fmt::Write as _;
        let node = self.node(dewey)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Self Info: dewey={} label={} kList={} knum={} cID={:?}",
            node.dewey,
            tree.labels().name(node.label),
            render_klist(node.kset, k),
            node.kset.key_number(k),
            node.cid,
        );
        for group in self.label_groups(dewey) {
            let cids: Vec<&Cid> = group.children.iter().map(|c| &c.cid).collect();
            let _ = writeln!(
                out,
                "Children Info [{}]: counter={} chkList={:?} chcIDList={:?}",
                tree.labels().name(group.label),
                group.counter(),
                group.chk_list(k),
                cids,
            );
        }
        Some(out)
    }

    /// Renders the fragment as an indented outline resolving labels
    /// through a [`CorpusSource`]. Unlike [`Fragment::render`] no
    /// original text is available (shredded stores keep keywords, not
    /// raw text), so keyword nodes are marked with `*`.
    #[must_use]
    pub fn render_source<S: CorpusSource + ?Sized>(&self, source: &S) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let base = self.anchor.level();
        for n in self.iter() {
            let indent = "  ".repeat(n.dewey.level() - base);
            let label = source
                .label_name(n.label.as_u32())
                .unwrap_or_else(|| n.label.to_string());
            let marker = if n.is_keyword { " *" } else { "" };
            let _ = writeln!(out, "{indent}{label} [{}]{marker}", n.dewey);
        }
        out
    }

    /// Renders the fragment as an indented outline using the source
    /// tree's label table (for examples and debugging).
    #[must_use]
    pub fn render(&self, tree: &XmlTree) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let base = self.anchor.level();
        for n in self.iter() {
            let indent = "  ".repeat(n.dewey.level() - base);
            let label = tree.labels().name(n.label);
            let _ = write!(out, "{indent}{label} [{}]", n.dewey);
            if n.is_keyword {
                if let Some(id) = tree.node_by_dewey(&n.dewey) {
                    if let Some(text) = &tree.node(id).text {
                        let _ = write!(out, " {text:?}");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

fn tree_node(tree: &XmlTree, dewey: &Dewey) -> xks_xmltree::NodeId {
    tree.node_by_dewey(dewey)
        .unwrap_or_else(|| panic!("RTF references node {dewey} missing from the tree"))
}

fn source_element<S: CorpusSource + ?Sized>(
    source: &S,
    dewey: &Dewey,
) -> crate::source::SourceElement {
    source
        .element(dewey)
        .unwrap_or_else(|| panic!("RTF references node {dewey} missing from the corpus"))
}

/// The paper's bit-list rendering of a keyword set: `kList = 0 1 1 1 1`
/// with the first query keyword leftmost.
fn render_klist(kset: KeySet, k: usize) -> String {
    (0..k)
        .map(|i| if kset.contains(i) { "1" } else { "0" })
        .collect::<Vec<&str>>()
        .join(" ")
}

/// Merges a borrowed content feature into an owned one: lexical min of
/// mins, max of maxes. Exact for `(min, max)` of a union of sets; `b`'s
/// strings are cloned only when they win (keyword-node features are
/// merged into every ancestor, so the non-winning — common — case must
/// not clone).
fn merge_cid_ref(a: Cid, b: Option<&(String, String)>) -> Cid {
    match (a, b) {
        (Some((amin, amax)), Some((bmin, bmax))) => Some((
            if *bmin < amin { bmin.clone() } else { amin },
            if *bmax > amax { bmax.clone() } else { amax },
        )),
        (Some(x), None) => Some(x),
        (None, Some(x)) => Some(x.clone()),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_index::{InvertedIndex, Query};
    use xks_lca::elca_stack;
    use xks_xmltree::fixtures::publications;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn q3_fragment() -> (XmlTree, Fragment) {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        let q = Query::parse("vldb title xml keyword search").unwrap();
        let sets = index.resolve(&q).unwrap();
        let anchors = elca_stack(sets.sets());
        let rtfs = crate::rtf::get_rtf(&anchors, &sets);
        assert_eq!(rtfs.len(), 1);
        let frag = Fragment::construct(&tree, &rtfs[0]);
        (tree, frag)
    }

    #[test]
    fn q3_fragment_is_figure_2c() {
        // The raw RTF of Figure 2(c): root, 0.0, the path through 0.2 to
        // all keyword nodes of both articles.
        let (_, frag) = q3_fragment();
        let got: Vec<String> = frag.deweys().iter().map(ToString::to_string).collect();
        assert_eq!(
            got,
            [
                "0",
                "0.0",
                "0.2",
                "0.2.0",
                "0.2.0.1",
                "0.2.0.2",
                "0.2.0.3",
                "0.2.0.3.0",
                "0.2.1",
                "0.2.1.1"
            ]
        );
    }

    #[test]
    fn q3_ksets_match_example_7_key_numbers() {
        // §4.1/Example 7: node 0.2 has kList 0 1 1 1 1 → key number 15;
        // child 0.2.0 → 15; child 0.2.1 → 8 (title only); and for the
        // MaxMatch illustration 0 0 1 1 1 → 7 would be a node with only
        // xml/keyword/search.
        let (_, frag) = q3_fragment();
        let k = 5;
        assert_eq!(frag.node(&d("0.2")).unwrap().kset.key_number(k), 15);
        assert_eq!(frag.node(&d("0.2.0")).unwrap().kset.key_number(k), 15);
        assert_eq!(frag.node(&d("0.2.1")).unwrap().kset.key_number(k), 8);
        assert_eq!(frag.node(&d("0.2.0.2")).unwrap().kset.key_number(k), 7);
        // Root covers everything.
        assert!(frag.node(&d("0")).unwrap().kset.covers_query(k));
    }

    #[test]
    fn q3_cids_aggregate_keyword_content() {
        let (_, frag) = q3_fragment();
        // Leaf keyword node: title 0.2.0.1 spans keyword..xml (§4.1).
        assert_eq!(
            frag.node(&d("0.2.0.1")).unwrap().cid,
            Some(("keyword".into(), "xml".into()))
        );
        // 0.2 absorbs both articles' keyword nodes: min is "abstract"
        // (the abstract node's label word; the paper's worked example
        // said "attribute" because it ignored labels — see
        // fixtures.rs docs), max "xml".
        assert_eq!(
            frag.node(&d("0.2")).unwrap().cid,
            Some(("abstract".into(), "xml".into()))
        );
        // Non-keyword interior node on a single path: inherits the one
        // keyword node's feature below it.
        assert_eq!(
            frag.node(&d("0.2.0.3")).unwrap().cid,
            frag.node(&d("0.2.0.3.0")).unwrap().cid
        );
    }

    #[test]
    fn children_groups_by_label() {
        let (_, frag) = q3_fragment();
        // Node 0.2 has two children with the same label "article": one
        // group, counter 2 (Example 7).
        let groups = frag.label_groups(&d("0.2"));
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].counter(), 2);
        assert_eq!(groups[0].chk_list(5), vec![8, 15]);
        // Root has children 0.0 (title) and 0.2 (Articles): two groups.
        let groups = frag.label_groups(&d("0"));
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.counter() == 1));
    }

    #[test]
    fn keyword_flags() {
        let (_, frag) = q3_fragment();
        assert!(frag.node(&d("0.0")).unwrap().is_keyword);
        assert!(frag.node(&d("0.2.0.1")).unwrap().is_keyword);
        assert!(!frag.node(&d("0.2")).unwrap().is_keyword);
        assert!(!frag.node(&d("0.2.0.3")).unwrap().is_keyword);
    }

    #[test]
    fn anchor_equals_keyword_node_degenerate_fragment() {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        let q = Query::parse("liu keyword").unwrap();
        let sets = index.resolve(&q).unwrap();
        let anchors = elca_stack(sets.sets());
        let rtfs = crate::rtf::get_rtf(&anchors, &sets);
        // Second RTF: the ref node alone.
        let frag = Fragment::construct(&tree, &rtfs[1]);
        assert_eq!(frag.len(), 1);
        let n = frag.node(&d("0.2.0.3.0")).unwrap();
        assert!(n.is_keyword);
        assert!(n.kset.covers_query(2));
    }

    #[test]
    fn render_node_info_matches_figure_4c() {
        // Figure 4(c), top frame: node "0.2 (Articles)" for Q3 —
        // kList 0 1 1 1 1, key number 15, one "article" label item with
        // counter 2 and chkList [8, 15].
        let (tree, frag) = q3_fragment();
        let info = frag
            .render_node_info(&tree, &d("0.2"), 5)
            .expect("0.2 in fragment");
        assert!(info.contains("label=Articles"), "{info}");
        assert!(info.contains("kList=0 1 1 1 1"), "{info}");
        assert!(info.contains("knum=15"), "{info}");
        assert!(
            info.contains("[article]: counter=2 chkList=[8, 15]"),
            "{info}"
        );
        assert!(frag.render_node_info(&tree, &d("0.9"), 5).is_none());
    }

    #[test]
    fn to_xml_emits_kept_subtree() {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        let q = Query::parse("liu keyword").unwrap();
        let sets = index.resolve(&q).unwrap();
        let anchors = elca_stack(sets.sets());
        let rtfs = crate::rtf::get_rtf(&anchors, &sets);
        let frag = Fragment::construct(&tree, &rtfs[0]);
        let xml = frag.to_xml(&tree);
        assert!(xml.starts_with("<article>"));
        assert!(xml.contains("<name>Liu</name>"));
        assert!(xml.contains("</article>"));
        // Interior nodes carry no text.
        assert!(xml.contains("<authors>\n"));
        // Round-trips through the parser.
        let parsed = xks_xmltree::parse(&xml).unwrap();
        assert_eq!(parsed.len(), frag.len());
    }

    #[test]
    fn render_outline_readable() {
        let (tree, frag) = q3_fragment();
        let s = frag.render(&tree);
        assert!(s.starts_with("Publications [0]\n"));
        assert!(s.contains("  Articles [0.2]"));
        assert!(s.contains("\"VLDB\""));
    }
}
