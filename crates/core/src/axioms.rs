//! Checkers for the four axiomatic XKS properties (Liu & Chen, §1 of the
//! paper).
//!
//! The paper claims (§4.3, analysis (2)) that ValidRTF satisfies all
//! four. Each checker runs an algorithm before and after a perturbation
//! (data insertion or query extension) and verifies the property; the
//! property tests in `tests/axiom_properties.rs` exercise them over
//! random documents, queries and perturbations, for ValidRTF *and* the
//! revised MaxMatch.
//!
//! The result-counting unit is the fragment (one result per interesting
//! LCA anchor), matching the paper's "number of query results".

use std::collections::BTreeSet;

use xks_index::{InvertedIndex, Query};
use xks_xmltree::content::node_content;
use xks_xmltree::{Dewey, XmlTree};

use crate::fragment::Fragment;

/// An algorithm under test: document + query → meaningful fragments.
pub type Algorithm = fn(&XmlTree, &InvertedIndex, &Query) -> Vec<Fragment>;

/// Outcome of one axiom check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiomOutcome {
    /// The property holds for this instance.
    Holds,
    /// The property is violated; the message explains how.
    Violated(String),
}

impl AxiomOutcome {
    /// `true` when the property holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, AxiomOutcome::Holds)
    }
}

fn run(algo: Algorithm, tree: &XmlTree, query: &Query) -> Vec<Fragment> {
    let index = InvertedIndex::build(tree);
    algo(tree, &index, query)
}

/// **Data monotonicity**: inserting a node never decreases the number of
/// query results.
#[must_use]
pub fn check_data_monotonicity(
    algo: Algorithm,
    before: &XmlTree,
    after: &XmlTree,
    query: &Query,
) -> AxiomOutcome {
    let nb = run(algo, before, query).len();
    let na = run(algo, after, query).len();
    if na >= nb {
        AxiomOutcome::Holds
    } else {
        AxiomOutcome::Violated(format!(
            "result count dropped from {nb} to {na} after data insertion"
        ))
    }
}

/// **Query monotonicity**: adding a keyword never increases the number
/// of query results.
#[must_use]
pub fn check_query_monotonicity(
    algo: Algorithm,
    tree: &XmlTree,
    query: &Query,
    extended: &Query,
) -> AxiomOutcome {
    let nq = run(algo, tree, query).len();
    let ne = run(algo, tree, extended).len();
    if ne <= nq {
        AxiomOutcome::Holds
    } else {
        AxiomOutcome::Violated(format!(
            "result count grew from {nq} to {ne} after adding a keyword"
        ))
    }
}

/// **Data consistency** (result-level reading): after inserting one
/// node, every fragment appearing at a **new anchor** must contain the
/// inserted node.
///
/// Liu & Chen state the axiom as "each additional subtree which becomes
/// (part of) a query result should contain the newly inserted node".
/// This checker reads "additional subtree" at the granularity of whole
/// results (new anchors); [`check_data_consistency_strict`] reads it at
/// node granularity and is *provably violated* by both contributor and
/// valid-contributor pruning over all-LCA anchors — see its docs.
#[must_use]
pub fn check_data_consistency(
    algo: Algorithm,
    before: &XmlTree,
    after: &XmlTree,
    inserted: &Dewey,
    query: &Query,
) -> AxiomOutcome {
    let fb = run(algo, before, query);
    let fa = run(algo, after, query);

    let anchors_before: BTreeSet<Dewey> = fb.iter().map(|f| f.anchor.clone()).collect();
    for f in &fa {
        if !anchors_before.contains(&f.anchor) && !f.contains(inserted) {
            return AxiomOutcome::Violated(format!(
                "new fragment at {} does not contain the inserted node {}",
                f.anchor, inserted
            ));
        }
    }
    AxiomOutcome::Holds
}

/// **Data consistency, strict node-level reading**: additionally
/// requires that an *existing* anchor's fragment may only gain nodes
/// when it contains the inserted node.
///
/// This stricter reading does **not** hold for RTF-based retrieval —
/// neither for MaxMatch's contributor nor for the valid contributor.
/// The mechanism: inserting a keyword occurrence can turn an interior
/// node into a new (deeper) interesting LCA, which *drains* the keyword
/// nodes of one branch out of an ancestor's partition; with that branch
/// gone, a sibling whose keyword set used to be strictly covered by the
/// branch's is suddenly uncovered and re-qualifies — the ancestor's
/// fragment gains a node that has nothing to do with the insertion.
/// `tests in this module` pin a concrete counterexample; the harness
/// documents the finding in `EXPERIMENTS.md`.
#[must_use]
pub fn check_data_consistency_strict(
    algo: Algorithm,
    before: &XmlTree,
    after: &XmlTree,
    inserted: &Dewey,
    query: &Query,
) -> AxiomOutcome {
    if let AxiomOutcome::Violated(v) = check_data_consistency(algo, before, after, inserted, query)
    {
        return AxiomOutcome::Violated(v);
    }
    let fb = run(algo, before, query);
    let fa = run(algo, after, query);
    for f in &fa {
        let Some(old) = fb.iter().find(|g| g.anchor == f.anchor) else {
            continue;
        };
        let old_nodes: BTreeSet<Dewey> = old.deweys().into_iter().collect();
        let new_nodes: BTreeSet<Dewey> = f.deweys().into_iter().collect();
        let added: Vec<&Dewey> = new_nodes.difference(&old_nodes).collect();
        if !added.is_empty() && !new_nodes.contains(inserted) {
            return AxiomOutcome::Violated(format!(
                "fragment at {} gained nodes {:?} without containing the inserted node {}",
                f.anchor, added, inserted
            ));
        }
    }
    AxiomOutcome::Holds
}

/// **Query consistency**: after adding keyword `w`, every result
/// fragment must contain at least one match to `w`.
#[must_use]
pub fn check_query_consistency(
    algo: Algorithm,
    tree: &XmlTree,
    extended: &Query,
    added_keyword: &str,
) -> AxiomOutcome {
    let fragments = run(algo, tree, extended);
    for f in &fragments {
        let has_match = f.iter().any(|n| {
            tree.node_by_dewey(&n.dewey)
                .is_some_and(|id| node_content(tree, id).contains(added_keyword))
        });
        if !has_match {
            return AxiomOutcome::Violated(format!(
                "fragment at {} has no match for added keyword {added_keyword:?}",
                f.anchor
            ));
        }
    }
    AxiomOutcome::Holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{max_match_rtf, valid_rtf};
    use xks_xmltree::fixtures::publications;

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn data_monotonicity_on_fixture_insertion() {
        let before = publications();
        let mut after = before.clone();
        // A second article about XML keyword search creates a second
        // all-keyword partition for Q = "xml keyword".
        let articles = after.node_by_dewey(&"0.2".parse().unwrap()).unwrap();
        let art = after.insert_subtree(articles, "article", None);
        after.insert_subtree(art, "title", Some("XML keyword search revisited"));
        for algo in [valid_rtf as Algorithm, max_match_rtf as Algorithm] {
            assert!(check_data_monotonicity(algo, &before, &after, &q("xml keyword")).holds());
        }
    }

    #[test]
    fn query_monotonicity_on_fixture() {
        let tree = publications();
        let base = q("keyword");
        let ext = base.with_keyword("liu").unwrap();
        for algo in [valid_rtf as Algorithm, max_match_rtf as Algorithm] {
            assert!(check_query_monotonicity(algo, &tree, &base, &ext).holds());
        }
    }

    #[test]
    fn data_consistency_on_fixture() {
        let before = publications();
        let mut after = before.clone();
        let articles = after.node_by_dewey(&"0.2".parse().unwrap()).unwrap();
        let art = after.insert_subtree(articles, "article", None);
        let title = after.insert_subtree(art, "title", Some("XML keyword search revisited"));
        let inserted = after.dewey(title).clone();
        for algo in [valid_rtf as Algorithm, max_match_rtf as Algorithm] {
            assert!(
                check_data_consistency(algo, &before, &after, &inserted, &q("xml keyword")).holds()
            );
        }
    }

    #[test]
    fn query_consistency_on_fixture() {
        let tree = publications();
        let ext = q("keyword").with_keyword("liu").unwrap();
        for algo in [valid_rtf as Algorithm, max_match_rtf as Algorithm] {
            assert!(check_query_consistency(algo, &tree, &ext, "liu").holds());
        }
    }

    /// The minimal counterexample behind the strict-reading caveat (see
    /// [`check_data_consistency_strict`]): inserting `w2` under `0.0`
    /// turns `0.0` into a new interesting LCA, drains its keyword nodes
    /// out of the root partition, and thereby *un-prunes* the siblings
    /// `0.1`/`0.2` whose keyword sets had been covered by branch `0.0`.
    /// Both pruning policies gain nodes unrelated to the insertion —
    /// the strict reading fails while the result-level axiom holds.
    #[test]
    fn strict_data_consistency_counterexample() {
        use xks_xmltree::TreeBuilder;

        let mut b = TreeBuilder::new("r");
        b.open("a");
        b.leaf("b", "w0 w1");
        b.close();
        b.leaf("a", "w0");
        b.leaf("a", "w1");
        b.leaf("a", "w2");
        let before = b.build();

        let mut after = before.clone();
        let branch = after.node_by_dewey(&"0.0".parse().unwrap()).unwrap();
        let ins = after.insert_subtree(branch, "c", Some("w2"));
        let inserted = after.dewey(ins).clone();
        let query = q("w0 w1 w2");

        for algo in [valid_rtf as Algorithm, max_match_rtf as Algorithm] {
            let strict = check_data_consistency_strict(algo, &before, &after, &inserted, &query);
            assert!(
                matches!(strict, AxiomOutcome::Violated(ref m) if m.contains("gained")),
                "expected strict violation, got {strict:?}"
            );
            assert!(
                check_data_consistency(algo, &before, &after, &inserted, &query).holds(),
                "result-level reading must hold"
            );
        }
    }

    #[test]
    fn violation_is_reported() {
        // A deliberately broken "algorithm" that returns more fragments
        // for longer queries.
        fn broken(tree: &XmlTree, index: &InvertedIndex, query: &Query) -> Vec<Fragment> {
            let frags = valid_rtf(tree, index, query);
            if query.len() > 1 {
                // duplicate everything
                frags.iter().cloned().chain(frags.clone()).collect()
            } else {
                frags
            }
        }
        let tree = publications();
        let base = q("keyword");
        let ext = base.with_keyword("xml").unwrap();
        let out = check_query_monotonicity(broken as Algorithm, &tree, &base, &ext);
        assert!(!out.holds());
        assert!(matches!(out, AxiomOutcome::Violated(msg) if msg.contains("grew")));
    }
}
